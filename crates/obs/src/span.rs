//! Hierarchical wall-clock spans.
//!
//! A span is opened with [`span`] (or the [`span!`](crate::span!)
//! macro) and closed on drop or via [`SpanGuard::finish_ms`].  Open
//! spans on the same thread nest: each guard's full path is its
//! parent's path plus `/name`, so the recorder aggregates timings per
//! *call path*, and [`MetricsSnapshot::render_span_tree`]
//! (crate::MetricsSnapshot::render_span_tree) can print a flame-style
//! tree.
//!
//! Guards always capture a start time, even when recording is
//! disabled, so `finish_ms` reports real elapsed milliseconds in both
//! modes — callers like the discovery lattice use it as their only
//! clock.  Nothing is *recorded* while disabled, and the path string is
//! only built (one allocation) while enabled.

use std::cell::RefCell;
use std::time::Instant;

use crate::recorder::{recorder, Recorder};

thread_local! {
    /// Stack of full paths of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span.  Records `count` and `total_ns` under its full path
/// when dropped or finished, if the recorder was enabled at creation.
#[must_use = "a span measures until dropped; bind it with `let _span = ...`"]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    start: Instant,
    /// Full `parent/child` path; `None` when recording was off at
    /// creation (nothing was pushed on the stack either).
    path: Option<String>,
    finished: bool,
}

/// Opens a span on the process-wide recorder.
#[inline]
pub fn span(name: &str) -> SpanGuard<'static> {
    recorder().span(name)
}

/// Opens a span with an owned (e.g. formatted per-level) name on the
/// process-wide recorder.
#[inline]
pub fn span_owned(name: String) -> SpanGuard<'static> {
    recorder().span_owned(name)
}

impl Recorder {
    /// Opens a span on this recorder.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let path = self.enabled().then(|| push_path(name));
        SpanGuard {
            recorder: self,
            start: Instant::now(),
            path,
            finished: false,
        }
    }

    /// Opens a span with an owned name on this recorder.
    pub fn span_owned(&self, name: String) -> SpanGuard<'_> {
        self.span(&name)
    }
}

fn push_path(name: &str) -> String {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    })
}

impl SpanGuard<'_> {
    /// Closes the span and returns its elapsed wall-clock milliseconds.
    /// The elapsed time is real even when recording is disabled, so
    /// callers can use a span as their only clock.
    pub fn finish_ms(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        self.finished = true;
        let elapsed = self.start.elapsed();
        if let Some(path) = self.path.take() {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                debug_assert_eq!(
                    stack.last(),
                    Some(&path),
                    "spans must close innermost-first"
                );
                stack.pop();
            });
            self.recorder
                .record_span(&path, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        elapsed.as_secs_f64() * 1e3
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    // Needs live recording — compiled out by the `off` feature.
    #[test]
    #[cfg(not(feature = "off"))]
    fn nested_spans_build_slash_paths() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        {
            let _outer = rec.span("outer");
            {
                let _inner = rec.span("inner");
            }
            {
                let _inner = rec.span("inner");
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 2);
        assert!(!snap.spans.contains_key("inner"));
    }

    #[test]
    fn finish_ms_returns_real_elapsed_when_disabled() {
        let rec = Recorder::new();
        let guard = rec.span("off");
        thread::sleep(Duration::from_millis(2));
        let ms = guard.finish_ms();
        assert!(ms >= 1.0, "elapsed {ms} ms should be measured while off");
        assert!(rec.snapshot().spans.is_empty());
    }

    // Needs live recording — compiled out by the `off` feature.
    #[test]
    #[cfg(not(feature = "off"))]
    fn sibling_threads_do_not_share_parents() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        let _outer = rec.span("outer");
        thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = rec.span("worker");
            });
        });
        drop(_outer);
        let snap = rec.snapshot();
        // The worker thread has its own empty stack, so its span is a root.
        assert_eq!(snap.spans["worker"].count, 1);
        assert!(!snap.spans.contains_key("outer/worker"));
    }

    #[test]
    fn spans_opened_while_disabled_never_record_even_if_enabled_later() {
        let rec = Recorder::new();
        let guard = rec.span("late");
        rec.set_enabled(true);
        drop(guard);
        assert!(rec.snapshot().spans.is_empty());
    }
}
