//! `dq-obs` — the workspace's instrumentation layer: hierarchical
//! wall-clock spans, sharded monotonic counters, gauges, power-of-two
//! latency histograms, and JSON-exportable snapshots.
//!
//! # Design
//!
//! * **Zero dependencies.**  Standard library only; safe to sit below
//!   `dq-relation` at the bottom of the crate graph.
//! * **Lock-cheap.**  Counters are sharded across cache lines and
//!   incremented with relaxed atomics; hot paths hold pre-registered
//!   [`Counter`]/[`Gauge`]/[`Histogram`] handles so the striped name
//!   registry is only touched at registration time.
//! * **Toggleable twice over.**  At runtime, [`set_enabled`] flips one
//!   process-wide flag every operation checks first (a relaxed load and
//!   a branch — the recorder starts *disabled*).  At compile time the
//!   `off` cargo feature hard-disables the layer.  Either way,
//!   instrumented code paths produce byte-identical outputs: the layer
//!   only ever observes, never steers.
//! * **Hierarchical spans.**  [`span`]`("detect.cfd")` opens a guard;
//!   guards on one thread nest into `parent/child` paths, aggregated
//!   per path and rendered as a flame-style tree by
//!   [`MetricsSnapshot::render_span_tree`].  A guard always measures —
//!   [`SpanGuard::finish_ms`] returns real elapsed milliseconds even
//!   while recording is off, so callers can use spans as their only
//!   clock (the discovery lattice's per-level timings work this way).
//!
//! # Example
//!
//! ```
//! dq_obs::set_enabled(true);
//! {
//!     let _pass = dq_obs::span("detect.cfd");
//!     dq_obs::inc("pool.hits");
//!     dq_obs::time("index.build_ns", || { /* build */ });
//! }
//! let snap = dq_obs::recorder().snapshot();
//! # #[cfg(not(feature = "off"))]
//! assert_eq!(snap.counters["pool.hits"], 1);
//! println!("{}", snap.render_span_tree());
//! println!("{}", snap.to_json());
//! # dq_obs::set_enabled(false);
//! # dq_obs::recorder().reset();
//! ```

mod recorder;
mod snapshot;
mod span;

pub use recorder::{recorder, Counter, Gauge, Histogram, Recorder, TimerGuard};
pub use snapshot::{HistogramSnapshot, MetricSink, MetricSource, MetricsSnapshot, SpanSnapshot};
pub use span::{span, span_owned, SpanGuard};

/// Is the process-wide recorder live?  Always `false` under the `off`
/// feature.
#[inline]
pub fn enabled() -> bool {
    recorder().enabled()
}

/// Toggles the process-wide recorder.
pub fn set_enabled(on: bool) {
    recorder().set_enabled(on);
}

/// Adds one to the process-wide counter `name`.
#[inline]
pub fn inc(name: &str) {
    recorder().add(name, 1);
}

/// Adds `delta` to the process-wide counter `name`.
#[inline]
pub fn add(name: &str, delta: u64) {
    recorder().add(name, delta);
}

/// Sets the process-wide gauge `name`.
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    recorder().gauge_set(name, value);
}

/// Adjusts the process-wide gauge `name` by `delta`.
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    recorder().gauge_add(name, delta);
}

/// Records one observation into the process-wide histogram `name`.
#[inline]
pub fn record(name: &str, value: u64) {
    recorder().record(name, value);
}

/// Times `f` into the process-wide histogram `name` (nanoseconds).
/// When recording is off, runs `f` with no clock read at all.
#[inline]
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    recorder().time(name, f)
}

/// A guard recording its lifetime into the process-wide histogram
/// `name` on drop.  Inert when recording is off at creation.
#[inline]
pub fn timer(name: &'static str) -> TimerGuard<'static> {
    recorder().timer(name)
}

/// Opens a span, optionally logging `key = value` fields into the
/// bounded event ring when the recorder is in verbose mode.  Fields are
/// formatted with `{}` and never affect the span's path or timing.
///
/// ```
/// let relation = "orders";
/// let _span = dq_obs::span!("detect.cfd", relation = relation, deps = 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let guard = $crate::span($name);
        if $crate::recorder().verbose() {
            $crate::recorder().event(format!(
                concat!("{}", $(" ", stringify!($key), "={}"),+),
                $name, $($value),+
            ));
        }
        guard
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_compiles_with_and_without_fields() {
        let _plain = span!("macro.plain");
        let _fields = span!("macro.fields", n = 3, label = "x");
    }
}
