//! Master (reference) data and matching dirty tuples against it.
//!
//! Master data management (MDM) keeps a single, cleaned collection of the
//! enterprise's core records [30, 62].  Before a dirty tuple can be corrected
//! from the master, the master record describing the same real-world entity
//! has to be found — the object identification problem of Section 3.1, solved
//! here with the relative-key machinery of `dq-match`.

use dq_match::matcher::Matcher;
use dq_match::rck::RelativeKey;
use dq_relation::{RelationInstance, TupleId};
use std::collections::BTreeMap;

/// A cleaned, trusted reference relation.
#[derive(Clone, Debug)]
pub struct MasterData {
    instance: RelationInstance,
}

impl MasterData {
    /// Wraps a relation instance as master data.  The caller vouches for its
    /// cleanliness; [`crate::pipeline::CleaningPipeline`] treats its values
    /// as ground truth when fusing.
    pub fn new(instance: RelationInstance) -> Self {
        MasterData { instance }
    }

    /// The underlying relation.
    pub fn instance(&self) -> &RelationInstance {
        &self.instance
    }

    /// Number of master records.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// Whether the master relation is empty.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }
}

/// A dirty tuple identified with a master record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MasterMatch {
    /// Tuple of the dirty relation.
    pub dirty: TupleId,
    /// The master record it refers to.
    pub master: TupleId,
}

/// Matches the dirty relation against the master using the given relative
/// keys as matching rules (Section 3.3).
///
/// When several master records match the same dirty tuple, the one matched by
/// the earliest rule (and, within a rule, the smallest master tuple id) wins;
/// ambiguity of this kind is reported via the second component of the result.
///
/// Returns the chosen matches and the number of dirty tuples that had more
/// than one master candidate.
pub fn match_against_master(
    dirty: &RelationInstance,
    master: &MasterData,
    rules: &[RelativeKey],
) -> (Vec<MasterMatch>, usize) {
    let matcher = Matcher::new(rules.to_vec());
    let result = matcher.run(dirty, master.instance());
    let mut per_dirty: BTreeMap<TupleId, Vec<TupleId>> = BTreeMap::new();
    for &(dirty_id, master_id) in &result.matches {
        per_dirty.entry(dirty_id).or_default().push(master_id);
    }
    let ambiguous = per_dirty.values().filter(|c| c.len() > 1).count();
    let matches = per_dirty
        .into_iter()
        .map(|(dirty_id, mut candidates)| {
            candidates.sort();
            MasterMatch {
                dirty: dirty_id,
                master: candidates[0],
            }
        })
        .collect();
    (matches, ambiguous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_gen::customer::customer_schema;
    use dq_gen::master::{generate_master_workload, MasterConfig};
    use dq_match::similarity::SimilarityOp;

    /// The matching rules for the master workload: same phone and similar
    /// name, or identical (name, zip).
    fn rules() -> Vec<RelativeKey> {
        let schema = customer_schema();
        vec![RelativeKey::new(
            &schema,
            &schema,
            vec![
                ("phn", "phn", SimilarityOp::Equality),
                ("name", "name", SimilarityOp::edit(12)),
            ],
            &["street", "city", "zip"],
            &["street", "city", "zip"],
        )
        .expect("well-formed relative key")]
    }

    #[test]
    fn matches_every_entity_despite_name_variants() {
        let w = generate_master_workload(&MasterConfig {
            entities: 200,
            error_rate: 0.2,
            name_variation_rate: 0.5,
            seed: 11,
        });
        let master = MasterData::new(w.master.clone());
        let (matches, ambiguous) = match_against_master(&w.dirty, &master, &rules());
        assert_eq!(
            ambiguous, 0,
            "phone numbers are unique, no ambiguity expected"
        );
        assert_eq!(matches.len(), 200, "every dirty record has a master record");
        for m in &matches {
            assert!(
                w.truth.contains(&(m.dirty, m.master)),
                "match {m:?} is not in the ground truth"
            );
        }
    }

    #[test]
    fn empty_master_yields_no_matches() {
        let w = generate_master_workload(&MasterConfig {
            entities: 20,
            ..MasterConfig::default()
        });
        let master = MasterData::new(RelationInstance::new(customer_schema()));
        assert!(master.is_empty());
        let (matches, ambiguous) = match_against_master(&w.dirty, &master, &rules());
        assert!(matches.is_empty());
        assert_eq!(ambiguous, 0);
    }

    #[test]
    fn no_rules_means_no_matches() {
        let w = generate_master_workload(&MasterConfig {
            entities: 20,
            ..MasterConfig::default()
        });
        let master = MasterData::new(w.master.clone());
        let (matches, _) = match_against_master(&w.dirty, &master, &[]);
        assert!(matches.is_empty());
    }
}
