//! # dq-cleaning
//!
//! A unified cleaning pipeline combining the two processes the paper argues
//! "interact with each other and should be combined" (Section 6): data
//! repairing and object identification.
//!
//! The pipeline follows the master-data remark of Section 5.1: when a
//! cleaned reference relation (master data [30, 62]) is available, repairing
//! should draw new values from it rather than invent them; doing so requires
//! object identification first, because the dirty records and the master
//! records that refer to the same real-world entity need not be identical.
//!
//! * [`master`] — master data and matching of dirty tuples against it, driven
//!   by relative (candidate) keys from `dq-match`;
//! * [`fusion`] — correction of matched dirty tuples from their master
//!   counterparts (the certain, evidence-backed fixes);
//! * [`pipeline`] — the end-to-end pipeline: detect → match → fuse →
//!   heuristically repair what is left → verify, with a per-stage report.

pub mod fusion;
pub mod master;
pub mod pipeline;

/// Frequently used items.
pub mod prelude {
    pub use crate::fusion::{fuse_from_master, FusionLog};
    pub use crate::master::{match_against_master, MasterData, MasterMatch};
    pub use crate::pipeline::{CleaningPipeline, CleaningReport, StageSummary};
}

pub use prelude::*;
