//! The end-to-end cleaning pipeline: detect, match, fuse, repair, verify.
//!
//! Stage order matters and encodes the paper's argument for combining the
//! two processes (Section 6): master-data fusion runs *before* heuristic
//! repair, so that every violation that can be fixed with evidence (a master
//! value for the same real-world entity) is fixed that way, and the cost-
//! based heuristic only has to deal with the remainder — tuples the matcher
//! could not identify, or attributes the master is not trusted for.

use crate::fusion::{fuse_from_master, FusionLog};
use crate::master::{match_against_master, MasterData};
use dq_core::analysis::ensure_consistent;
use dq_core::cfd::Cfd;
use dq_core::engine::DetectionEngine;
use dq_match::rck::RelativeKey;
use dq_relation::{DqResult, RelationInstance};
use dq_repair::model::RepairCost;
use dq_repair::urepair::{repair_cfd_violations_with_engine, RepairConfig};

/// What happened in one pipeline stage.
#[derive(Clone, Debug)]
pub struct StageSummary {
    /// Stage name ("detect", "match", "fuse", "repair", "verify").
    pub stage: String,
    /// Number of violations outstanding after the stage (where applicable).
    pub violations: usize,
    /// Number of cell changes the stage made.
    pub changes: usize,
}

/// Configuration and state of the unified cleaning pipeline.
#[derive(Clone, Debug)]
pub struct CleaningPipeline {
    /// The conditional dependencies that define consistency.
    pub cfds: Vec<Cfd>,
    /// Matching rules (relative keys) used to identify dirty tuples with
    /// master records.  Ignored when no master data is supplied.
    pub rules: Vec<RelativeKey>,
    /// The master data, when available.
    pub master: Option<MasterData>,
    /// Attributes the master is trusted for (fusion overwrites these).
    pub fusion_attrs: Vec<usize>,
    /// Cost model of the heuristic repair stage.
    pub cost: RepairCost,
    /// Bounds of the heuristic repair stage.
    pub repair_config: RepairConfig,
}

impl CleaningPipeline {
    /// A pipeline with just CFD repair (no master data): the Section 5.1
    /// baseline.
    pub fn repair_only(cfds: Vec<Cfd>) -> Self {
        CleaningPipeline {
            cfds,
            rules: Vec::new(),
            master: None,
            fusion_attrs: Vec::new(),
            cost: RepairCost::uniform(),
            repair_config: RepairConfig::default(),
        }
    }

    /// A pipeline that matches against `master` with `rules`, fuses
    /// `fusion_attrs` and then repairs the remainder against `cfds`.
    pub fn with_master(
        cfds: Vec<Cfd>,
        master: MasterData,
        rules: Vec<RelativeKey>,
        fusion_attrs: Vec<usize>,
    ) -> Self {
        CleaningPipeline {
            cfds,
            rules,
            master: Some(master),
            fusion_attrs,
            cost: RepairCost::uniform(),
            repair_config: RepairConfig::default(),
        }
    }

    /// Runs the pipeline on a dirty instance with a private engine.
    ///
    /// Detection at every stage goes through one shared
    /// [`DetectionEngine`], so all stages benefit from interned columnar
    /// indexes, LHS groups of the CFD set build each index once, and the
    /// back-to-back detections over an unchanged instance (the post-repair
    /// check and the final verification) are served from the warm pool
    /// instead of rebuilding.
    ///
    /// Refuses an inconsistent CFD set up front with
    /// [`DqError::InconsistentConstraints`](dq_relation::DqError), carrying
    /// the minimal conflicting core — no stage runs against rules no
    /// instance can satisfy.
    pub fn run(&self, dirty: &RelationInstance) -> DqResult<CleaningReport> {
        self.run_with_engine(dirty, &DetectionEngine::new())
    }

    /// [`run`](Self::run) over a caller-supplied engine, so a batch of
    /// pipeline runs (or a pipeline interleaved with detection, repair or
    /// discovery over the same instances) shares one warm index pool
    /// instead of each run building its own.
    pub fn run_with_engine(
        &self,
        dirty: &RelationInstance,
        engine: &DetectionEngine,
    ) -> DqResult<CleaningReport> {
        ensure_consistent(&self.cfds)?;
        let mut stages = Vec::new();
        let initial = engine.detect_cfd_violations(dirty, &self.cfds);
        stages.push(StageSummary {
            stage: "detect".into(),
            violations: initial.total(),
            changes: 0,
        });

        // Stage 2: object identification + fusion from the master.
        let mut current = dirty.clone();
        let mut fusion_log = FusionLog::default();
        let mut master_matches = 0usize;
        let mut ambiguous_matches = 0usize;
        if let Some(master) = &self.master {
            let (matches, ambiguous) = match_against_master(&current, master, &self.rules);
            master_matches = matches.len();
            ambiguous_matches = ambiguous;
            let (fused, log) = fuse_from_master(&current, master, &matches, &self.fusion_attrs);
            current = fused;
            fusion_log = log;
            stages.push(StageSummary {
                stage: "fuse".into(),
                violations: engine.detect_cfd_violations(&current, &self.cfds).total(),
                changes: fusion_log.change_count(),
            });
        }

        // Stage 3: heuristic, cost-based repair of whatever is left.  The
        // repair loop detects through the same engine, so its final
        // consistency check warms the pool the verify stage reads from.
        let outcome = repair_cfd_violations_with_engine(
            &current,
            &self.cfds,
            &self.cost,
            &self.repair_config,
            engine,
        )?;
        let repair_changes = outcome.log.change_count();
        current = outcome.repaired;
        stages.push(StageSummary {
            stage: "repair".into(),
            violations: engine.detect_cfd_violations(&current, &self.cfds).total(),
            changes: repair_changes,
        });

        let final_report = engine.detect_cfd_violations(&current, &self.cfds);
        let remaining_violations = final_report.total();
        stages.push(StageSummary {
            stage: "verify".into(),
            violations: remaining_violations,
            changes: 0,
        });

        Ok(CleaningReport {
            cleaned: current,
            initial_violations: initial.total(),
            remaining_violations,
            master_matches,
            ambiguous_matches,
            fusion_changes: fusion_log.change_count(),
            repair_changes,
            consistent: remaining_violations == 0,
            stages,
        })
    }
}

/// The outcome of a pipeline run.
#[derive(Clone, Debug)]
pub struct CleaningReport {
    /// The cleaned instance.
    pub cleaned: RelationInstance,
    /// CFD violations in the input.
    pub initial_violations: usize,
    /// CFD violations left after all stages.
    pub remaining_violations: usize,
    /// Dirty tuples identified with a master record.
    pub master_matches: usize,
    /// Dirty tuples with more than one master candidate.
    pub ambiguous_matches: usize,
    /// Cells corrected from the master.
    pub fusion_changes: usize,
    /// Cells changed by the heuristic repair.
    pub repair_changes: usize,
    /// Whether the cleaned instance satisfies every CFD.
    pub consistent: bool,
    /// Per-stage summaries, in execution order.
    pub stages: Vec<StageSummary>,
}

impl CleaningReport {
    /// Total number of cell changes across all stages.
    pub fn total_changes(&self) -> usize {
        self.fusion_changes + self.repair_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::MasterData;
    use dq_gen::customer::{customer_schema, paper_cfds};
    use dq_gen::master::{generate_master_workload, MasterConfig};
    use dq_match::similarity::SimilarityOp;
    use dq_repair::quality::score_repair;

    fn rules() -> Vec<RelativeKey> {
        let schema = customer_schema();
        vec![RelativeKey::new(
            &schema,
            &schema,
            vec![
                ("phn", "phn", SimilarityOp::Equality),
                ("name", "name", SimilarityOp::edit(12)),
            ],
            &["street", "city", "zip"],
            &["street", "city", "zip"],
        )
        .expect("well-formed relative key")]
    }

    fn address_attrs() -> Vec<usize> {
        let s = customer_schema();
        vec![s.attr("street"), s.attr("city"), s.attr("zip")]
    }

    fn workload() -> dq_gen::master::MasterWorkload {
        generate_master_workload(&MasterConfig {
            entities: 250,
            error_rate: 0.25,
            name_variation_rate: 0.4,
            seed: 33,
        })
    }

    #[test]
    fn master_pipeline_restores_the_ground_truth() {
        let w = workload();
        let pipeline = CleaningPipeline::with_master(
            paper_cfds(),
            MasterData::new(w.master.clone()),
            rules(),
            address_attrs(),
        );
        let report = pipeline.run(&w.dirty).expect("consistent rule set");
        assert!(
            report.consistent,
            "master-backed cleaning must resolve every violation"
        );
        assert_eq!(report.master_matches, 250);
        let quality = score_repair(&w.clean, &w.dirty, &report.cleaned);
        assert!(
            quality.precision > 0.99 && quality.recall > 0.99,
            "master-backed cleaning should be essentially exact, got {quality:?}"
        );
    }

    #[test]
    fn repair_only_pipeline_fixes_fewer_errors_correctly() {
        let w = workload();
        let with_master = CleaningPipeline::with_master(
            paper_cfds(),
            MasterData::new(w.master.clone()),
            rules(),
            address_attrs(),
        )
        .run(&w.dirty)
        .expect("consistent rule set");
        let repair_only = CleaningPipeline::repair_only(paper_cfds())
            .run(&w.dirty)
            .expect("consistent rule set");
        let q_master = score_repair(&w.clean, &w.dirty, &with_master.cleaned);
        let q_repair = score_repair(&w.clean, &w.dirty, &repair_only.cleaned);
        assert!(
            q_master.recall >= q_repair.recall,
            "master-backed cleaning must not recall fewer errors than blind repair ({:?} vs {:?})",
            q_master,
            q_repair
        );
        assert!(
            q_master.f1 > q_repair.f1,
            "master data should add measurable value"
        );
    }

    #[test]
    fn engine_backed_stages_match_naive_detection_counts() {
        // The pipeline detects through a shared engine; its reported counts
        // must equal what the naive per-dependency detectors find.
        let w = workload();
        let report = CleaningPipeline::repair_only(paper_cfds())
            .run(&w.dirty)
            .expect("consistent rule set");
        let naive = dq_core::detect::detect_cfd_violations(&w.dirty, &paper_cfds());
        assert_eq!(report.initial_violations, naive.total());
        let naive_after = dq_core::detect::detect_cfd_violations(&report.cleaned, &paper_cfds());
        assert_eq!(report.remaining_violations, naive_after.total());
    }

    #[test]
    fn shared_engine_runs_match_private_engine_runs() {
        let w = workload();
        let pipeline = CleaningPipeline::repair_only(paper_cfds());
        let engine = DetectionEngine::new();
        let shared = pipeline
            .run_with_engine(&w.dirty, &engine)
            .expect("consistent rule set");
        let private = pipeline.run(&w.dirty).expect("consistent rule set");
        assert_eq!(shared.initial_violations, private.initial_violations);
        assert_eq!(shared.remaining_violations, private.remaining_violations);
        assert_eq!(shared.repair_changes, private.repair_changes);
        assert!(shared.cleaned.same_tuples_as(&private.cleaned));
        // A second run over the same engine serves the initial detection
        // from the warm pool.
        let misses = engine.pool_stats().misses;
        let again = pipeline
            .run_with_engine(&w.dirty, &engine)
            .expect("consistent rule set");
        assert_eq!(again.initial_violations, shared.initial_violations);
        assert!(
            engine.pool_stats().misses > misses,
            "repair clones still build their own indexes"
        );
    }

    #[test]
    fn clean_input_passes_through_unchanged() {
        let w = generate_master_workload(&MasterConfig {
            entities: 80,
            error_rate: 0.0,
            name_variation_rate: 0.0,
            seed: 2,
        });
        let pipeline = CleaningPipeline::with_master(
            paper_cfds(),
            MasterData::new(w.master.clone()),
            rules(),
            address_attrs(),
        );
        let report = pipeline.run(&w.dirty).expect("consistent rule set");
        assert_eq!(report.initial_violations, 0);
        assert_eq!(report.total_changes(), 0);
        assert!(report.cleaned.same_tuples_as(&w.dirty));
    }

    #[test]
    fn stage_summaries_track_monotone_violation_decrease() {
        let w = workload();
        let pipeline = CleaningPipeline::with_master(
            paper_cfds(),
            MasterData::new(w.master.clone()),
            rules(),
            address_attrs(),
        );
        let report = pipeline.run(&w.dirty).expect("consistent rule set");
        let violations: Vec<usize> = report.stages.iter().map(|s| s.violations).collect();
        assert!(
            violations.windows(2).all(|w| w[1] <= w[0]),
            "violations must not increase across stages: {violations:?}"
        );
        assert_eq!(report.stages.first().unwrap().stage, "detect");
        assert_eq!(report.stages.last().unwrap().stage, "verify");
    }
}
