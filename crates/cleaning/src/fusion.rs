//! Correction of matched dirty tuples from the master data.
//!
//! Once a dirty tuple has been identified with a master record, the
//! attributes the deployment trusts the master for (the *fusion attributes*)
//! can be overwritten with the master's values.  Unlike the heuristic repair
//! of `dq-repair`, these fixes are evidence-backed: the new value comes from
//! a record known to describe the same real-world entity, which is exactly
//! the guidance Section 5.1 says a bare cost model lacks.

use crate::master::{MasterData, MasterMatch};
use dq_relation::instance::CellRef;
use dq_relation::{RelationInstance, TupleId, Value};

/// Log of the cell updates performed by fusion.
#[derive(Clone, Debug, Default)]
pub struct FusionLog {
    /// Cell updates: `(dirty tuple, attribute, old value, new value)`.
    pub changes: Vec<(TupleId, usize, Value, Value)>,
    /// Dirty tuples touched.
    pub tuples_corrected: usize,
}

impl FusionLog {
    /// Number of cells changed.
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }
}

/// Overwrites the `fusion_attrs` of every matched dirty tuple with the
/// corresponding master values.  Cells already agreeing with the master are
/// left untouched (and not logged).
///
/// Returns the corrected instance and the log of changes.
pub fn fuse_from_master(
    dirty: &RelationInstance,
    master: &MasterData,
    matches: &[MasterMatch],
    fusion_attrs: &[usize],
) -> (RelationInstance, FusionLog) {
    let mut out = dirty.clone();
    let mut log = FusionLog::default();
    for m in matches {
        let Some(master_tuple) = master.instance().tuple(m.master) else {
            continue;
        };
        let Some(current) = out.tuple(m.dirty).cloned() else {
            continue;
        };
        let mut touched = false;
        for &attr in fusion_attrs {
            let master_value = master_tuple.get(attr);
            let current_value = current.get(attr);
            if current_value == master_value {
                continue;
            }
            out.update_cell(CellRef::new(m.dirty, attr), master_value.clone())
                .expect("master values satisfy the shared schema");
            log.changes
                .push((m.dirty, attr, current_value.clone(), master_value.clone()));
            touched = true;
        }
        if touched {
            log.tuples_corrected += 1;
        }
    }
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_gen::customer::customer_schema;
    use dq_gen::master::{generate_master_workload, MasterConfig};

    fn workload() -> dq_gen::master::MasterWorkload {
        generate_master_workload(&MasterConfig {
            entities: 150,
            error_rate: 0.3,
            name_variation_rate: 0.4,
            seed: 21,
        })
    }

    fn address_attrs() -> Vec<usize> {
        let s = customer_schema();
        vec![s.attr("street"), s.attr("city"), s.attr("zip")]
    }

    #[test]
    fn fusion_with_perfect_matches_restores_the_clean_instance() {
        let w = workload();
        let master = MasterData::new(w.master.clone());
        let matches: Vec<MasterMatch> = w
            .truth
            .iter()
            .map(|&(d, m)| MasterMatch {
                dirty: d,
                master: m,
            })
            .collect();
        let (fused, log) = fuse_from_master(&w.dirty, &master, &matches, &address_attrs());
        assert!(
            fused.same_tuples_as(&w.clean),
            "fusion from the true matches must equal the ground truth"
        );
        assert_eq!(log.change_count(), w.corrupted_cells.len());
    }

    #[test]
    fn fusion_without_matches_changes_nothing() {
        let w = workload();
        let master = MasterData::new(w.master.clone());
        let (fused, log) = fuse_from_master(&w.dirty, &master, &[], &address_attrs());
        assert!(fused.same_tuples_as(&w.dirty));
        assert_eq!(log.change_count(), 0);
        assert_eq!(log.tuples_corrected, 0);
    }

    #[test]
    fn fusion_only_touches_the_fusion_attributes() {
        let w = workload();
        let master = MasterData::new(w.master.clone());
        let matches: Vec<MasterMatch> = w
            .truth
            .iter()
            .map(|&(d, m)| MasterMatch {
                dirty: d,
                master: m,
            })
            .collect();
        let name_attr = customer_schema().attr("name");
        let (fused, _) = fuse_from_master(&w.dirty, &master, &matches, &address_attrs());
        for (id, tuple) in fused.iter() {
            assert_eq!(
                tuple.get(name_attr),
                w.dirty.tuple(id).unwrap().get(name_attr),
                "names (not a fusion attribute) must keep their dirty-side spelling"
            );
        }
    }

    #[test]
    fn dangling_matches_are_ignored() {
        let w = workload();
        let master = MasterData::new(w.master.clone());
        let bogus = vec![MasterMatch {
            dirty: TupleId(0),
            master: TupleId(999_999),
        }];
        let (fused, log) = fuse_from_master(&w.dirty, &master, &bogus, &address_attrs());
        assert!(fused.same_tuples_as(&w.dirty));
        assert_eq!(log.change_count(), 0);
    }
}
