//! Reasoning about matching dependencies (Section 4.2, Theorem 4.8).
//!
//! The implication problem for MDs — `Σ ⊨_m φ`, for *all* interpretations of
//! the similarity and matching operators satisfying their generic axioms — is
//! solvable in PTIME, via a sound and complete finite inference system [38].
//! This module implements the closure algorithm behind that result: starting
//! from the facts asserted by `φ`'s premise about a hypothetical pair of
//! tuples, saturate under
//!
//! * the operator axioms — equality implies every similarity operator and the
//!   matching operator; a fact for a tighter operator yields the fact for any
//!   containing operator (the known containment of `Θ`, Section 3.3);
//! * MD application — an MD of `Σ` fires when each of its premise conjuncts
//!   is entailed by an already-derived fact, and contributes its conclusion
//!   (decomposed pairwise for `⇋`, per the list axiom of Section 3.2).
//!
//! `Σ ⊨_m φ` holds iff every conjunct of `φ`'s conclusion is derived.

use crate::md::{MatchOp, MatchingDependency};
use crate::similarity::SimilarityOp;
use std::collections::BTreeSet;

/// A derived fact about the hypothetical tuple pair: the attribute pair
/// `(R1 attr, R2 attr)` is related by an operator of the given strength.
#[derive(Clone, Debug, PartialEq)]
pub enum Fact {
    /// The attribute pair is known to hold under plain equality.
    Equal(usize, usize),
    /// The attribute pair is known to hold under the given similarity
    /// operator.
    Similar(usize, usize, SimilarityOp),
    /// The attribute pair is known to match (`⇋`).
    Matches(usize, usize),
}

impl Fact {
    fn pair(&self) -> (usize, usize) {
        match self {
            Fact::Equal(a, b) | Fact::Matches(a, b) => (*a, *b),
            Fact::Similar(a, b, _) => (*a, *b),
        }
    }
}

/// The knowledge base maintained by the closure.
#[derive(Clone, Debug, Default)]
pub struct FactBase {
    facts: Vec<Fact>,
}

impl FactBase {
    /// Starts from the premise facts of an MD.
    pub fn from_premise(md: &MatchingDependency) -> Self {
        let mut base = FactBase::default();
        for p in md.premises() {
            base.add(match &p.op {
                MatchOp::Similarity(SimilarityOp::Equality) => Fact::Equal(p.left, p.right),
                MatchOp::Similarity(op) => Fact::Similar(p.left, p.right, op.clone()),
                MatchOp::Matching => Fact::Matches(p.left, p.right),
            });
        }
        base
    }

    /// Adds a fact if it is not already entailed; returns whether the base
    /// changed.
    pub fn add(&mut self, fact: Fact) -> bool {
        if self.entails(&fact) {
            return false;
        }
        self.facts.push(fact);
        true
    }

    /// All stored facts.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Does the base entail the fact (directly or through the operator
    /// axioms)?
    ///
    /// * equality entails similarity under any operator and entails `⇋`
    ///   (every operator subsumes equality);
    /// * a similarity fact entails the same pair under any *containing*
    ///   operator;
    /// * `⇋` entails only itself (it is not comparable with the data-level
    ///   similarity metrics).
    pub fn entails(&self, goal: &Fact) -> bool {
        self.facts.iter().any(|f| {
            if f.pair() != goal.pair() {
                return false;
            }
            match (f, goal) {
                (Fact::Equal(_, _), Fact::Similar(_, _, _)) => true,
                (Fact::Equal(_, _), Fact::Matches(_, _)) => true,
                (Fact::Equal(_, _), Fact::Equal(_, _)) => true,
                (Fact::Similar(_, _, have), Fact::Similar(_, _, want)) => have.contained_in(want),
                (Fact::Matches(_, _), Fact::Matches(_, _)) => true,
                _ => false,
            }
        })
    }

    /// Does the base entail the premise conjunct `(left, right, op)`?
    /// Equality facts entail everything (every operator subsumes equality).
    fn entails_premise(&self, left: usize, right: usize, op: &MatchOp) -> bool {
        if self.entails(&Fact::Equal(left, right)) {
            return true;
        }
        match op {
            MatchOp::Matching => self.entails(&Fact::Matches(left, right)),
            MatchOp::Similarity(op) => self.entails(&Fact::Similar(left, right, op.clone())),
        }
    }
}

/// Saturates the fact base under the MDs of `sigma` (generic reasoning: the
/// operators are treated axiomatically, never evaluated on data).
pub fn close(base: &mut FactBase, sigma: &[MatchingDependency]) {
    loop {
        let mut changed = false;
        for md in sigma {
            let fires = md
                .premises()
                .iter()
                .all(|p| base.entails_premise(p.left, p.right, &p.op));
            if !fires {
                continue;
            }
            match md.conclusion_op() {
                MatchOp::Matching => {
                    // Pairwise decomposition of the list conclusion (the ⇋
                    // axiom of Section 3.2).
                    for (&a, &b) in md.conclusion_left().iter().zip(md.conclusion_right()) {
                        changed |= base.add(Fact::Matches(a, b));
                    }
                }
                MatchOp::Similarity(op) => {
                    for (&a, &b) in md.conclusion_left().iter().zip(md.conclusion_right()) {
                        changed |= base.add(Fact::Similar(a, b, op.clone()));
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Does `sigma ⊨_m phi` (implication of MDs, Theorem 4.8)?
///
/// PTIME: the closure adds at most one fact per (attribute pair, operator)
/// and each round scans `sigma` once.
pub fn md_implies(sigma: &[MatchingDependency], phi: &MatchingDependency) -> bool {
    let mut base = FactBase::from_premise(phi);
    close(&mut base, sigma);
    match phi.conclusion_op() {
        MatchOp::Matching => phi
            .conclusion_left()
            .iter()
            .zip(phi.conclusion_right())
            .all(|(&a, &b)| base.entails(&Fact::Matches(a, b))),
        MatchOp::Similarity(op) => phi
            .conclusion_left()
            .iter()
            .zip(phi.conclusion_right())
            .all(|(&a, &b)| base.entails(&Fact::Similar(a, b, op.clone()))),
    }
}

/// Removes MDs implied by the remaining ones (a minimal cover for matching
/// rules).  Derived rules are pointless for *detecting* violations but add
/// value as matching rules (Section 1, "static analyses"); conversely,
/// redundant given rules only slow the matcher down.
pub fn md_minimal_cover(sigma: &[MatchingDependency]) -> Vec<MatchingDependency> {
    let mut cover: Vec<MatchingDependency> = sigma.to_vec();
    let mut i = 0;
    while i < cover.len() {
        let candidate = cover[i].clone();
        let mut rest = cover.clone();
        rest.remove(i);
        if md_implies(&rest, &candidate) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover
}

/// The set of attribute pairs for which `⇋` is derivable from `sigma`
/// starting from the given premise facts — used by RCK derivation.
pub fn derivable_matches(
    sigma: &[MatchingDependency],
    premise: &MatchingDependency,
) -> BTreeSet<(usize, usize)> {
    let mut base = FactBase::from_premise(premise);
    close(&mut base, sigma);
    base.facts()
        .iter()
        .filter_map(|f| match f {
            // Equality entails the matching operator, so equal pairs are
            // derivable matches too.
            Fact::Matches(a, b) | Fact::Equal(a, b) => Some((*a, *b)),
            Fact::Similar(_, _, _) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::fixtures::{billing_schema, card_schema, example_3_1};
    use crate::md::MatchOp;

    const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
    const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

    fn rck(premises: Vec<(&str, &str, MatchOp)>) -> MatchingDependency {
        MatchingDependency::new(
            &card_schema(),
            &billing_schema(),
            premises,
            &YC,
            &YB,
            MatchOp::Matching,
        )
        .unwrap()
    }

    /// Example 4.3: Σ1 (φ1–φ4) entails rck1, rck2 and rck3.
    #[test]
    fn example_4_3_all_three_relative_keys_are_implied() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        let rck1 = rck(vec![
            ("email", "email", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
        ]);
        let rck2 = rck(vec![
            ("LN", "SN", MatchOp::eq()),
            ("tel", "phn", MatchOp::eq()),
            ("FN", "FN", MatchOp::edit(3)),
        ]);
        let rck3 = rck(vec![
            ("LN", "SN", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
            ("FN", "FN", MatchOp::edit(3)),
        ]);
        assert!(md_implies(&sigma, &rck1));
        assert!(md_implies(&sigma, &rck2));
        assert!(md_implies(&sigma, &rck3));
    }

    #[test]
    fn insufficient_premises_are_not_implied() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        // Knowing only the last names match is not enough to identify the
        // card holder.
        let weak = rck(vec![("LN", "SN", MatchOp::eq())]);
        assert!(!md_implies(&sigma, &weak));
        // Similar first names alone do not help either.
        let weak2 = rck(vec![("FN", "FN", MatchOp::edit(3))]);
        assert!(!md_implies(&sigma, &weak2));
    }

    #[test]
    fn operator_axioms_equality_entails_similarity_and_matching() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        // φ4 asks for FN ≈d FN; providing FN = FN must also fire it (equality
        // subsumption), hence rck3 with equality everywhere is implied.
        let all_equal = rck(vec![
            ("LN", "SN", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
            ("FN", "FN", MatchOp::eq()),
        ]);
        assert!(md_implies(&sigma, &all_equal));
    }

    #[test]
    fn containment_of_similarity_operators_is_used() {
        let card = card_schema();
        let billing = billing_schema();
        // Rule requires edit distance ≤ 3 on FN; a premise giving edit
        // distance ≤ 1 is stronger and must fire it.
        let sigma = example_3_1(&card, &billing);
        let tight = rck(vec![
            ("LN", "SN", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
            ("FN", "FN", MatchOp::edit(1)),
        ]);
        assert!(md_implies(&sigma, &tight));
        // The other direction (premise looser than the rule needs) must not.
        let loose = rck(vec![
            ("LN", "SN", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
            ("FN", "FN", MatchOp::edit(10)),
        ]);
        assert!(!md_implies(&sigma, &loose));
    }

    #[test]
    fn reflexive_implication_and_minimal_cover() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        for md in &sigma {
            assert!(md_implies(&sigma, md));
        }
        // φ1–φ4 are pairwise non-redundant (φ3's ⇋ premise on FN is not
        // entailed by φ4's ≈d premise or vice versa), but adding a rule whose
        // premise is strictly stronger than φ4's (equality everywhere) is
        // redundant and gets dropped by the cover.
        let redundant = rck(vec![
            ("LN", "SN", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
            ("FN", "FN", MatchOp::eq()),
        ]);
        let mut extended = sigma.clone();
        extended.push(redundant);
        let cover = md_minimal_cover(&extended);
        assert_eq!(cover.len(), 4);
        for md in &extended {
            assert!(md_implies(&cover, md));
        }
    }

    #[test]
    fn derivable_matches_exposes_the_closure() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        let premise = rck(vec![
            ("email", "email", MatchOp::eq()),
            ("addr", "post", MatchOp::eq()),
        ]);
        let matches = derivable_matches(&sigma, &premise);
        // FN⇋FN and LN⇋SN come from φ2; addr⇋post from equality subsumption.
        let fn_pair = (card.attr("FN"), billing.attr("FN"));
        let ln_pair = (card.attr("LN"), billing.attr("SN"));
        let addr_pair = (card.attr("addr"), billing.attr("post"));
        assert!(matches.contains(&fn_pair));
        assert!(matches.contains(&ln_pair));
        assert!(matches.contains(&addr_pair));
    }

    #[test]
    fn fact_base_entailment_rules() {
        let mut base = FactBase::default();
        base.add(Fact::Equal(0, 0));
        assert!(base.entails(&Fact::Similar(0, 0, SimilarityOp::edit(2))));
        // A ⇋ fact does not entail a similarity fact.
        let mut base2 = FactBase::default();
        base2.add(Fact::Matches(1, 1));
        assert!(!base2.entails(&Fact::Similar(1, 1, SimilarityOp::edit(2))));
        assert!(base2.entails(&Fact::Matches(1, 1)));
        // Adding an entailed fact reports no change.
        assert!(!base2.add(Fact::Matches(1, 1)));
    }
}
