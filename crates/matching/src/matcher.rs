//! Object identification driven by matching rules (Sections 3.1, 3.3).
//!
//! Given two instances, a set of *matching rules* (relative keys, either
//! specified by experts or derived from MDs via [`crate::rck::derive_rcks`])
//! decides which tuple pairs refer to the same real-world entity: a pair
//! matches as soon as *some* rule's comparisons all hold on the source data.
//! The engine supports equality blocking (only compare pairs that agree on a
//! rule's equality attributes — the standard way these rules are executed),
//! counts the comparisons it performs (the efficiency metric of Section 4.2),
//! and scores its output against a ground-truth match set
//! (precision / recall / F1 — the quality metric).

use crate::md::MatchOp;
use crate::rck::RelativeKey;
use dq_relation::{HashIndex, RelationInstance, TupleId};
use std::collections::BTreeSet;

/// The outcome of running the matcher.
#[derive(Clone, Debug, Default)]
pub struct MatchResult {
    /// Matched pairs `(R1 tuple, R2 tuple)`.
    pub matches: BTreeSet<(TupleId, TupleId)>,
    /// Number of tuple-pair comparisons performed (after blocking).
    pub comparisons: usize,
    /// Which rule (index) produced each match first.
    pub rule_hits: Vec<usize>,
}

impl MatchResult {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Did the matcher find no pairs?
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Quality of a match result against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchQuality {
    /// Fraction of reported matches that are true matches.
    pub precision: f64,
    /// Fraction of true matches that were reported.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Scores a set of predicted matches against the ground truth.
pub fn score(
    predicted: &BTreeSet<(TupleId, TupleId)>,
    truth: &BTreeSet<(TupleId, TupleId)>,
) -> MatchQuality {
    let tp = predicted.intersection(truth).count() as f64;
    let precision = if predicted.is_empty() {
        1.0
    } else {
        tp / predicted.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    MatchQuality {
        precision,
        recall,
        f1,
    }
}

/// The object-identification engine.
#[derive(Clone, Debug)]
pub struct Matcher {
    rules: Vec<RelativeKey>,
    use_blocking: bool,
}

impl Matcher {
    /// Creates a matcher from matching rules (relative keys).
    pub fn new(rules: Vec<RelativeKey>) -> Self {
        Matcher {
            rules,
            use_blocking: true,
        }
    }

    /// Disables equality blocking (every pair is compared against every
    /// rule); used to measure how much work blocking saves.
    pub fn without_blocking(mut self) -> Self {
        self.use_blocking = false;
        self
    }

    /// The rules the matcher applies.
    pub fn rules(&self) -> &[RelativeKey] {
        &self.rules
    }

    /// Runs the matcher over a pair of instances.
    pub fn run(&self, d1: &RelationInstance, d2: &RelationInstance) -> MatchResult {
        let mut result = MatchResult::default();
        for (rule_idx, rule) in self.rules.iter().enumerate() {
            let md = rule.md();
            // Blocking: group the right-hand instance on the attributes the
            // rule compares with plain equality, and only compare pairs that
            // agree there.
            let eq_pairs: Vec<(usize, usize)> = md
                .premises()
                .iter()
                .filter(|p| {
                    matches!(
                        p.op,
                        MatchOp::Similarity(crate::similarity::SimilarityOp::Equality)
                    )
                })
                .map(|p| (p.left, p.right))
                .collect();
            if self.use_blocking && !eq_pairs.is_empty() {
                let right_attrs: Vec<usize> = eq_pairs.iter().map(|&(_, r)| r).collect();
                let left_attrs: Vec<usize> = eq_pairs.iter().map(|&(l, _)| l).collect();
                let index = HashIndex::build(d2, &right_attrs);
                for (id1, t1) in d1.iter() {
                    let key = t1.project(&left_attrs);
                    for &id2 in index.get(&key) {
                        let t2 = d2.tuple(id2).expect("live tuple");
                        result.comparisons += 1;
                        if md.premise_holds(t1, t2) && result.matches.insert((id1, id2)) {
                            result.rule_hits.push(rule_idx);
                        }
                    }
                }
            } else {
                for (id1, t1) in d1.iter() {
                    for (id2, t2) in d2.iter() {
                        result.comparisons += 1;
                        if md.premise_holds(t1, t2) && result.matches.insert((id1, id2)) {
                            result.rule_hits.push(rule_idx);
                        }
                    }
                }
            }
        }
        result
    }

    /// Runs the matcher and scores the result against ground truth.
    pub fn evaluate(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        truth: &BTreeSet<(TupleId, TupleId)>,
    ) -> (MatchResult, MatchQuality) {
        let result = self.run(d1, d2);
        let quality = score(&result.matches, truth);
        (result, quality)
    }

    /// Runs the matcher through an interned [`MatchingEngine`]: similarity
    /// per distinct value pair, dictionary-level blocking, parallel over
    /// left groups.  `matches` and `rule_hits` are byte-identical to
    /// [`Matcher::run`]; `comparisons` counts the (far fewer) tuple-pair
    /// verifications the engine actually performed.
    pub fn run_with(
        &self,
        engine: &crate::engine::MatchingEngine,
        d1: &RelationInstance,
        d2: &RelationInstance,
    ) -> MatchResult {
        engine.run(&self.rules, self.use_blocking, d1, d2)
    }

    /// [`Matcher::run_with`] plus ground-truth scoring.
    pub fn evaluate_with(
        &self,
        engine: &crate::engine::MatchingEngine,
        d1: &RelationInstance,
        d2: &RelationInstance,
        truth: &BTreeSet<(TupleId, TupleId)>,
    ) -> (MatchResult, MatchQuality) {
        let result = self.run_with(engine, d1, d2);
        let quality = score(&result.matches, truth);
        (result, quality)
    }
}

/// Union–find over tuple identities, used to close the matching operator
/// transitively (the `⇋` transitivity axiom) when clustering records that
/// refer to the same entity across both sources.
#[derive(Clone, Debug)]
pub struct MatchClusters {
    parent: Vec<usize>,
    left_count: usize,
}

impl MatchClusters {
    /// Creates clusters for `left_count` R1 tuples and `right_count` R2
    /// tuples (each initially in its own cluster).
    pub fn new(left_count: usize, right_count: usize) -> Self {
        MatchClusters {
            parent: (0..left_count + right_count).collect(),
            left_count,
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Records a match between an R1 tuple and an R2 tuple.
    pub fn add_match(&mut self, left: TupleId, right: TupleId) {
        let a = left.0;
        let b = self.left_count + right.0;
        self.union(a, b);
    }

    /// Are the two tuples (one from each side) in the same cluster, directly
    /// or through transitivity?
    pub fn same_entity(&mut self, left: TupleId, right: TupleId) -> bool {
        let a = left.0;
        let b = self.left_count + right.0;
        self.find(a) == self.find(b)
    }

    /// Number of clusters containing at least one matched pair... more
    /// precisely, the number of distinct clusters over all elements.
    pub fn cluster_count(&mut self) -> usize {
        let n = self.parent.len();
        let roots: BTreeSet<usize> = (0..n).map(|i| self.find(i)).collect();
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::fixtures::{billing_schema, card_schema};
    use crate::similarity::SimilarityOp;
    use dq_relation::Value;

    const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
    const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

    fn card_row(fn_: &str, ln: &str, addr: &str, tel: &str, email: &str) -> Vec<Value> {
        vec![
            Value::str("c"),
            Value::str("ssn"),
            Value::str(fn_),
            Value::str(ln),
            Value::str(addr),
            Value::str(tel),
            Value::str(email),
            Value::str("visa"),
        ]
    }

    fn billing_row(fn_: &str, sn: &str, post: &str, phn: &str, email: &str) -> Vec<Value> {
        vec![
            Value::str("c"),
            Value::str(fn_),
            Value::str(sn),
            Value::str(post),
            Value::str(phn),
            Value::str(email),
            Value::str("item"),
            Value::real(1.0),
        ]
    }

    fn instances() -> (RelationInstance, RelationInstance) {
        let mut d1 = RelationInstance::new(card_schema());
        let mut d2 = RelationInstance::new(billing_schema());
        // Three card holders.
        for row in [
            card_row("John", "Smith", "10 Main St", "555-1234", "js@x.org"),
            card_row("Mary", "Jones", "5 Oak Ave", "555-2222", "mj@x.org"),
            card_row("Bob", "Lee", "7 Pine Rd", "555-3333", "bl@x.org"),
        ] {
            d1.insert(dq_relation::Tuple::new(row)).unwrap();
        }
        // Billing records: t0 matches card t0 (abbreviated first name), t1
        // matches card t1 (same email/address), t2 matches nobody.
        for row in [
            billing_row("Jon", "Smith", "10 Main St", "555-9999", "other@x.org"),
            billing_row("Mary", "Jones", "5 Oak Ave", "555-2222", "mj@x.org"),
            billing_row("Zoe", "Adams", "1 Elm St", "555-7777", "za@x.org"),
        ] {
            d2.insert(dq_relation::Tuple::new(row)).unwrap();
        }
        (d1, d2)
    }

    fn truth() -> BTreeSet<(TupleId, TupleId)> {
        [(TupleId(0), TupleId(0)), (TupleId(1), TupleId(1))]
            .into_iter()
            .collect()
    }

    fn rck1() -> RelativeKey {
        RelativeKey::new(
            &card_schema(),
            &billing_schema(),
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap()
    }

    fn rck3() -> RelativeKey {
        RelativeKey::new(
            &card_schema(),
            &billing_schema(),
            vec![
                ("LN", "SN", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::edit(3)),
            ],
            &YC,
            &YB,
        )
        .unwrap()
    }

    #[test]
    fn a_single_strict_rule_finds_only_exact_matches() {
        let (d1, d2) = instances();
        let matcher = Matcher::new(vec![rck1()]);
        let (result, quality) = matcher.evaluate(&d1, &d2, &truth());
        // Only the Mary Jones pair agrees on email and address exactly.
        assert_eq!(result.len(), 1);
        assert!(result.matches.contains(&(TupleId(1), TupleId(1))));
        assert_eq!(quality.precision, 1.0);
        assert_eq!(quality.recall, 0.5);
    }

    #[test]
    fn adding_the_derived_edit_distance_rule_improves_recall() {
        let (d1, d2) = instances();
        let strict = Matcher::new(vec![rck1()]);
        let (_, q_strict) = strict.evaluate(&d1, &d2, &truth());
        let both = Matcher::new(vec![rck1(), rck3()]);
        let (result, q_both) = both.evaluate(&d1, &d2, &truth());
        assert!(q_both.recall > q_strict.recall);
        assert_eq!(q_both.recall, 1.0);
        assert_eq!(q_both.precision, 1.0);
        assert_eq!(result.len(), 2);
        // John Smith / Jon Smith is caught by the edit-distance rule.
        assert!(result.matches.contains(&(TupleId(0), TupleId(0))));
    }

    #[test]
    fn blocking_reduces_comparisons_without_changing_the_answer() {
        let (d1, d2) = instances();
        let with = Matcher::new(vec![rck1(), rck3()]);
        let without = Matcher::new(vec![rck1(), rck3()]).without_blocking();
        let r_with = with.run(&d1, &d2);
        let r_without = without.run(&d1, &d2);
        assert_eq!(r_with.matches, r_without.matches);
        assert!(r_with.comparisons < r_without.comparisons);
        // Exhaustive comparison does |D1| * |D2| work per rule.
        assert_eq!(r_without.comparisons, 2 * 9);
    }

    #[test]
    fn scoring_edge_cases() {
        let empty: BTreeSet<(TupleId, TupleId)> = BTreeSet::new();
        let some: BTreeSet<(TupleId, TupleId)> = [(TupleId(0), TupleId(0))].into_iter().collect();
        let q = score(&empty, &empty);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        let q = score(&empty, &some);
        assert_eq!(q.recall, 0.0);
        let q = score(&some, &empty);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn clusters_close_matches_transitively() {
        let mut clusters = MatchClusters::new(3, 3);
        clusters.add_match(TupleId(0), TupleId(1));
        clusters.add_match(TupleId(2), TupleId(1));
        // 0 and 2 now refer to the same entity through billing tuple 1.
        assert!(clusters.same_entity(TupleId(0), TupleId(1)));
        assert!(clusters.same_entity(TupleId(2), TupleId(1)));
        // Billing tuple 2 was never matched, so it stays a cluster of its own.
        assert!(!clusters.same_entity(TupleId(0), TupleId(2)));
        // 6 elements, 3 of them merged into one cluster: 4 clusters remain.
        assert_eq!(clusters.cluster_count(), 4);
    }
}
