//! Dictionary-level similarity artifacts: cached display forms, equality
//! translations between dictionaries, and the lock-striped similarity memo
//! cache.
//!
//! The naive matcher calls `Value::to_string` on both sides of *every*
//! tuple-pair comparison and recomputes the metric even when the same
//! distinct value pair recurs thousands of times.  On the interned columnar
//! store, value-level work belongs on the dictionary instead:
//!
//! * [`DisplayColumn`] renders each dictionary entry's display form once,
//!   indexed by [`ValueId`];
//! * [`EqTranslation`] maps each left-dictionary id to the right-dictionary
//!   id holding the *equal* [`Value`] (if any), turning equality premises —
//!   and the `a == b` fast path of every metric — into one `Vec` lookup;
//! * [`SimilarityCache`] memoizes metric verdicts by
//!   `(context, left id, right id)`, where a context identifies an
//!   (operator, left dictionary, right dictionary) triple.  It is striped
//!   like the discovery crate's `PartitionSource`: 32 `RwLock`ed `FxHashMap`
//!   shards selected by hash, reads take a shared lock, metric evaluation
//!   runs *outside* any lock on a pooled [`SimilarityKernel`], and a
//!   double-checked insert keeps the first writer's verdict (races are
//!   counted, and harmless — verdicts are deterministic).

use crate::similarity::SimilarityKernel;
use dq_core::engine::parallel_map;
use dq_relation::{FxHashMap, FxHasher, ValueId, ValueInterner};
use std::hash::Hasher;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Number of lock stripes in the memo cache.
const STRIPES: usize = 32;

/// Below this many dictionary entries a sharded build costs more in thread
/// hand-off than it saves; build inline.
const PARALLEL_BUILD_MIN: usize = 4096;

/// Contiguous shards of `0..len` for a sharded dictionary build, one-ish
/// per worker (dictionary entries are uniform enough that finer-grained
/// work stealing buys nothing).
fn build_shards(len: usize, threads: usize) -> Vec<Range<usize>> {
    let chunk = len.div_ceil(threads.max(1)).max(1);
    (0..len.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(len))
        .collect()
}

/// Display forms of every entry of one dictionary, computed once and
/// indexed by [`ValueId`].
#[derive(Debug)]
pub struct DisplayColumn {
    strings: Vec<Box<str>>,
    /// Character counts, aligned with `strings` — the edit-family length
    /// filters and threshold searches need them and `chars().count()` is
    /// O(bytes).
    char_lens: Vec<u32>,
}

impl DisplayColumn {
    /// Renders every dictionary entry once.
    pub fn build(interner: &ValueInterner) -> Self {
        Self::build_parallel(interner, 1)
    }

    /// Renders every dictionary entry once, sharding the dictionary across
    /// `threads` workers.  Rendering is per-entry-independent, so the
    /// result is identical at any thread count.
    pub fn build_parallel(interner: &ValueInterner, threads: usize) -> Self {
        let values = interner.values();
        if threads <= 1 || values.len() < PARALLEL_BUILD_MIN {
            let mut strings = Vec::with_capacity(values.len());
            let mut char_lens = Vec::with_capacity(values.len());
            for value in values {
                let s = value.to_string();
                char_lens.push(s.chars().count() as u32);
                strings.push(s.into_boxed_str());
            }
            return DisplayColumn { strings, char_lens };
        }
        let shards = build_shards(values.len(), threads);
        let parts = parallel_map(&shards, threads, |range| {
            let mut strings = Vec::with_capacity(range.len());
            let mut char_lens = Vec::with_capacity(range.len());
            for value in &values[range.clone()] {
                let s = value.to_string();
                char_lens.push(s.chars().count() as u32);
                strings.push(s.into_boxed_str());
            }
            (strings, char_lens)
        });
        let mut strings = Vec::with_capacity(values.len());
        let mut char_lens = Vec::with_capacity(values.len());
        for (s, c) in parts {
            strings.extend(s);
            char_lens.extend(c);
        }
        DisplayColumn { strings, char_lens }
    }

    /// The display form of a dictionary entry.
    #[inline]
    pub fn get(&self, id: ValueId) -> &str {
        &self.strings[id.index()]
    }

    /// The display form's character count.
    #[inline]
    pub fn char_len(&self, id: ValueId) -> usize {
        self.char_lens[id.index()] as usize
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// For each id of a left dictionary, the id of the right dictionary holding
/// the equal [`Value`] (or `None`).  Interners canonicalize, so id equality
/// through the translation is exactly `Value` equality — display-string
/// collisions across distinct values (e.g. `1` vs `"1"`) stay distinct.
#[derive(Debug)]
pub struct EqTranslation {
    map: Vec<Option<ValueId>>,
}

impl EqTranslation {
    /// Looks every left entry up in the right interner.
    pub fn build(left: &ValueInterner, right: &ValueInterner) -> Self {
        Self::build_parallel(left, right, 1)
    }

    /// Looks every left entry up in the right interner, sharding the left
    /// dictionary across `threads` workers.  Lookups are read-only and
    /// per-entry-independent, so the result is identical at any thread
    /// count.
    pub fn build_parallel(left: &ValueInterner, right: &ValueInterner, threads: usize) -> Self {
        let values = left.values();
        if threads <= 1 || values.len() < PARALLEL_BUILD_MIN {
            return EqTranslation {
                map: values.iter().map(|v| right.lookup(v)).collect(),
            };
        }
        let shards = build_shards(values.len(), threads);
        let parts = parallel_map(&shards, threads, |range| {
            values[range.clone()]
                .iter()
                .map(|v| right.lookup(v))
                .collect::<Vec<_>>()
        });
        let mut map = Vec::with_capacity(values.len());
        for part in parts {
            map.extend(part);
        }
        EqTranslation { map }
    }

    /// The right-dictionary id equal to left id `l`, if any.
    #[inline]
    pub fn get(&self, l: ValueId) -> Option<ValueId> {
        self.map[l.index()]
    }

    /// Are the two ids' values equal?
    #[inline]
    pub fn ids_equal(&self, l: ValueId, r: ValueId) -> bool {
        self.map[l.index()] == Some(r)
    }
}

/// Running counters of the memo cache, also emitted as `match.cache.*`
/// dq-obs metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimilarityCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that evaluated the metric.
    pub misses: u64,
    /// Concurrent evaluations of the same pair (losers discard their
    /// verdict; both verdicts are identical, so this is purely a
    /// contention statistic).
    pub races: u64,
    /// Memoized verdicts currently held.
    pub entries: usize,
}

impl dq_obs::MetricSource for SimilarityCacheStats {
    fn emit(&self, prefix: &str, sink: &mut dyn dq_obs::MetricSink) {
        sink.counter(&format!("{prefix}.hits"), self.hits);
        sink.counter(&format!("{prefix}.misses"), self.misses);
        sink.counter(&format!("{prefix}.races"), self.races);
        sink.gauge(
            &format!("{prefix}.entries"),
            i64::try_from(self.entries).unwrap_or(i64::MAX),
        );
    }
}

/// Pre-registered dq-obs handles for the cache hot path.
struct CacheObs {
    hits: dq_obs::Counter,
    misses: dq_obs::Counter,
    races: dq_obs::Counter,
    eval_ns: dq_obs::Histogram,
}

impl CacheObs {
    fn new() -> Self {
        let rec = dq_obs::recorder();
        CacheObs {
            hits: rec.counter("match.cache.hits"),
            misses: rec.counter("match.cache.misses"),
            races: rec.counter("match.cache.races"),
            eval_ns: rec.histogram("match.cache.eval_ns"),
        }
    }
}

type SimKey = (u32, u32, u32);

/// The lock-striped `(context, id, id) -> bool` memo cache with a pool of
/// scratch kernels for the evaluations that miss.
pub struct SimilarityCache {
    stripes: Vec<RwLock<FxHashMap<SimKey, bool>>>,
    kernels: Mutex<Vec<SimilarityKernel>>,
    hits: AtomicU64,
    misses: AtomicU64,
    races: AtomicU64,
    obs: CacheObs,
}

impl std::fmt::Debug for SimilarityCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimilarityCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for SimilarityCache {
    fn default() -> Self {
        SimilarityCache::new()
    }
}

impl SimilarityCache {
    /// An empty cache.
    pub fn new() -> Self {
        SimilarityCache {
            stripes: (0..STRIPES)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            kernels: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            races: AtomicU64::new(0),
            obs: CacheObs::new(),
        }
    }

    #[inline]
    fn stripe(&self, key: &SimKey) -> usize {
        let mut hasher = FxHasher::default();
        hasher.write_u32(key.0);
        hasher.write_u32(key.1);
        hasher.write_u32(key.2);
        (hasher.finish() as usize) % STRIPES
    }

    /// The memoized verdict for `(ctx, l, r)`, evaluating `eval` on a
    /// pooled kernel outside any lock on a miss.
    pub fn related_or_insert(
        &self,
        ctx: u32,
        l: ValueId,
        r: ValueId,
        eval: impl FnOnce(&mut SimilarityKernel) -> bool,
    ) -> bool {
        let key = (ctx, l.index() as u32, r.index() as u32);
        let stripe = &self.stripes[self.stripe(&key)];
        if let Some(&verdict) = stripe.read().expect("cache stripe poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.hits.inc();
            return verdict;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs.misses.inc();
        let mut kernel = self
            .kernels
            .lock()
            .expect("kernel pool poisoned")
            .pop()
            .unwrap_or_default();
        let started = dq_obs::enabled().then(std::time::Instant::now);
        let verdict = eval(&mut kernel);
        if let Some(t) = started {
            self.obs.eval_ns.record(t.elapsed().as_nanos() as u64);
        }
        self.kernels
            .lock()
            .expect("kernel pool poisoned")
            .push(kernel);
        match stripe.write().expect("cache stripe poisoned").entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Another worker evaluated the same pair first; verdicts are
                // deterministic, keep the winner's and count the race.
                self.races.fetch_add(1, Ordering::Relaxed);
                self.obs.races.inc();
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(verdict);
                verdict
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> SimilarityCacheStats {
        SimilarityCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            entries: self
                .stripes
                .iter()
                .map(|s| s.read().expect("cache stripe poisoned").len())
                .sum(),
        }
    }

    /// Drops every memoized verdict (counters are kept — they are
    /// monotonic, like the pool's).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.write().expect("cache stripe poisoned").clear();
        }
    }
}

/// A stable fingerprint of a similarity operator, usable as a hash key
/// (thresholds are compared by bit pattern).
pub(crate) fn op_fingerprint(op: &crate::similarity::SimilarityOp) -> (u8, u64, u64) {
    use crate::similarity::SimilarityOp::*;
    match op {
        Equality => (0, 0, 0),
        EditDistance { max_distance } => (1, *max_distance as u64, 0),
        NormalizedEdit { min_similarity } => (2, min_similarity.to_bits(), 0),
        Jaro { min_similarity } => (3, min_similarity.to_bits(), 0),
        JaroWinkler { min_similarity } => (4, min_similarity.to_bits(), 0),
        QGram { q, min_similarity } => (5, *q as u64, min_similarity.to_bits()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::SimilarityOp;
    use dq_relation::Value;

    fn interner_of(values: &[Value]) -> ValueInterner {
        let mut interner = ValueInterner::new();
        for v in values {
            interner.intern(v);
        }
        interner
    }

    #[test]
    fn display_column_renders_each_entry_once() {
        let interner = interner_of(&[Value::str("John"), Value::int(7), Value::Null]);
        let disp = DisplayColumn::build(&interner);
        assert_eq!(disp.len(), 3);
        assert_eq!(disp.get(ValueId(0)), "John");
        assert_eq!(disp.get(ValueId(1)), "7");
        assert_eq!(disp.get(ValueId(2)), "NULL");
        assert_eq!(disp.char_len(ValueId(0)), 4);
    }

    #[test]
    fn sharded_builds_match_sequential_at_any_thread_count() {
        // Large enough to clear PARALLEL_BUILD_MIN so the sharded path
        // actually runs, with shard boundaries that don't divide evenly.
        let left_vals: Vec<Value> = (0..PARALLEL_BUILD_MIN + 17)
            .map(|i| {
                if i % 3 == 0 {
                    Value::int(i as i64)
                } else {
                    Value::str(format!("v{i}"))
                }
            })
            .collect();
        let right_vals: Vec<Value> = left_vals.iter().step_by(2).cloned().collect();
        let left = interner_of(&left_vals);
        let right = interner_of(&right_vals);
        let seq_disp = DisplayColumn::build(&left);
        let seq_trans = EqTranslation::build(&left, &right);
        for threads in [2, 3, 8] {
            let disp = DisplayColumn::build_parallel(&left, threads);
            assert_eq!(disp.len(), seq_disp.len(), "threads {threads}");
            let trans = EqTranslation::build_parallel(&left, &right, threads);
            for i in 0..left.len() {
                let id = ValueId(i as u32);
                assert_eq!(disp.get(id), seq_disp.get(id), "threads {threads}");
                assert_eq!(
                    disp.char_len(id),
                    seq_disp.char_len(id),
                    "threads {threads}"
                );
                assert_eq!(trans.get(id), seq_trans.get(id), "threads {threads}");
            }
        }
    }

    #[test]
    fn eq_translation_is_value_equality_not_display_equality() {
        let left = interner_of(&[Value::int(1), Value::str("1"), Value::str("x")]);
        let right = interner_of(&[Value::str("1"), Value::int(1)]);
        let trans = EqTranslation::build(&left, &right);
        // Int(1) maps to the right-hand Int(1), not to Str("1") — even
        // though both display as "1".
        assert_eq!(trans.get(ValueId(0)), Some(ValueId(1)));
        assert_eq!(trans.get(ValueId(1)), Some(ValueId(0)));
        assert_eq!(trans.get(ValueId(2)), None);
        assert!(trans.ids_equal(ValueId(0), ValueId(1)));
        assert!(!trans.ids_equal(ValueId(0), ValueId(0)));
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let cache = SimilarityCache::new();
        let op = SimilarityOp::edit(1);
        let mut evals = 0;
        for _ in 0..3 {
            let v = cache.related_or_insert(7, ValueId(0), ValueId(1), |k| {
                evals += 1;
                k.related_display(&op, "Jon", "John")
            });
            assert!(v);
        }
        assert_eq!(evals, 1, "metric evaluated once per distinct pair");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        // A different context is a different memo entry.
        cache.related_or_insert(8, ValueId(0), ValueId(1), |k| {
            evals += 1;
            k.related_display(&op, "Jon", "John")
        });
        assert_eq!(evals, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
