//! Domain-specific similarity operators (Section 3.2).
//!
//! Matching dependencies are defined w.r.t. a fixed set `Θ` of similarity
//! relations.  Every operator `≈ ∈ Θ` is reflexive, symmetric and subsumes
//! equality; the distinguished *matching operator* `⇋` is additionally
//! transitive and decomposes pairwise over value lists.  Apart from `⇋`
//! (which is to be inferred, not computed), the operators compare values of
//! unreliable sources with metrics such as edit distance, q-grams and Jaro —
//! the metrics surveyed in [32] and named in Section 3.3(a).
//!
//! The [`SimilarityOp`] enum implements the concrete metrics with a
//! threshold, the subsumption (containment) relation between operators used
//! by RCK minimality, and the "strength" ordering used by the MD inference
//! closure (equality is the strongest relation: knowing `x = y` entitles us
//! to any `x ≈ y`).

use dq_relation::{levenshtein, levenshtein_within_scratch, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A similarity operator of `Θ` (excluding the matching operator `⇋`, which
/// is represented separately by [`crate::md::MatchOp`]).
#[derive(Clone, Debug, PartialEq, PartialOrd)]
pub enum SimilarityOp {
    /// Plain equality `=` (always a member of `Θ`).
    Equality,
    /// Levenshtein edit distance at most the threshold (on display strings).
    EditDistance {
        /// Maximum allowed edit distance.
        max_distance: usize,
    },
    /// Normalized edit-distance similarity at least the threshold in `[0,1]`.
    NormalizedEdit {
        /// Minimum normalized similarity (1.0 = identical).
        min_similarity: f64,
    },
    /// Jaro similarity at least the threshold in `[0,1]`.
    Jaro {
        /// Minimum Jaro similarity.
        min_similarity: f64,
    },
    /// Jaro–Winkler similarity at least the threshold in `[0,1]`.
    JaroWinkler {
        /// Minimum Jaro–Winkler similarity.
        min_similarity: f64,
    },
    /// q-gram (Jaccard over character q-grams) similarity at least the
    /// threshold in `[0,1]`.
    QGram {
        /// The q-gram length.
        q: usize,
        /// Minimum Jaccard similarity of the q-gram sets.
        min_similarity: f64,
    },
}

impl SimilarityOp {
    /// Edit-distance operator `≈_d` with the given threshold.
    pub fn edit(max_distance: usize) -> Self {
        SimilarityOp::EditDistance { max_distance }
    }

    /// Jaro operator with the given threshold.
    pub fn jaro(min_similarity: f64) -> Self {
        SimilarityOp::Jaro { min_similarity }
    }

    /// Jaro–Winkler operator with the given threshold.
    pub fn jaro_winkler(min_similarity: f64) -> Self {
        SimilarityOp::JaroWinkler { min_similarity }
    }

    /// q-gram operator with the given parameters.
    pub fn qgram(q: usize, min_similarity: f64) -> Self {
        SimilarityOp::QGram { q, min_similarity }
    }

    /// Does the operator relate the two values?
    ///
    /// All operators subsume equality (identical values are always related);
    /// the string metrics compare the display forms of non-string values.
    pub fn related(&self, a: &Value, b: &Value) -> bool {
        if a == b {
            return true;
        }
        let (sa, sb) = (a.to_string(), b.to_string());
        match self {
            SimilarityOp::Equality => false,
            SimilarityOp::EditDistance { max_distance } => levenshtein(&sa, &sb) <= *max_distance,
            SimilarityOp::NormalizedEdit { min_similarity } => {
                normalized_edit_similarity(&sa, &sb) >= *min_similarity
            }
            SimilarityOp::Jaro { min_similarity } => jaro(&sa, &sb) >= *min_similarity,
            SimilarityOp::JaroWinkler { min_similarity } => {
                jaro_winkler(&sa, &sb) >= *min_similarity
            }
            SimilarityOp::QGram { q, min_similarity } => {
                qgram_similarity(&sa, &sb, *q) >= *min_similarity
            }
        }
    }

    /// Containment `self ⊆ other`: every pair related by `self` is related by
    /// `other`.  Equality is contained in every operator; within a family a
    /// looser threshold contains a stricter one.  The relation is partial —
    /// operators of different families are incomparable (conservatively
    /// reported as not contained).
    pub fn contained_in(&self, other: &SimilarityOp) -> bool {
        use SimilarityOp::*;
        match (self, other) {
            (Equality, _) => true,
            (EditDistance { max_distance: a }, EditDistance { max_distance: b }) => a <= b,
            (NormalizedEdit { min_similarity: a }, NormalizedEdit { min_similarity: b }) => a >= b,
            (Jaro { min_similarity: a }, Jaro { min_similarity: b }) => a >= b,
            (JaroWinkler { min_similarity: a }, JaroWinkler { min_similarity: b }) => a >= b,
            (
                QGram {
                    q: qa,
                    min_similarity: a,
                },
                QGram {
                    q: qb,
                    min_similarity: b,
                },
            ) => qa == qb && a >= b,
            _ => false,
        }
    }
}

impl fmt::Display for SimilarityOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimilarityOp::Equality => write!(f, "="),
            SimilarityOp::EditDistance { max_distance } => write!(f, "≈ed({max_distance})"),
            SimilarityOp::NormalizedEdit { min_similarity } => write!(f, "≈ned({min_similarity})"),
            SimilarityOp::Jaro { min_similarity } => write!(f, "≈jaro({min_similarity})"),
            SimilarityOp::JaroWinkler { min_similarity } => write!(f, "≈jw({min_similarity})"),
            SimilarityOp::QGram { q, min_similarity } => write!(f, "≈{q}gram({min_similarity})"),
        }
    }
}

/// Normalized edit similarity: `1 - levenshtein / max(len)` in `[0, 1]`.
pub fn normalized_edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// The Jaro similarity of two strings, in `[0, 1]`.
///
/// Delegates to a thread-local [`SimilarityKernel`] so repeated calls reuse
/// the match/transposition scratch buffers instead of allocating per call.
pub fn jaro(a: &str, b: &str) -> f64 {
    thread_local! {
        static KERNEL: std::cell::RefCell<SimilarityKernel> =
            std::cell::RefCell::new(SimilarityKernel::new());
    }
    KERNEL.with(|k| k.borrow_mut().jaro(a, b))
}

/// A reusable scratch workspace for the string metrics.
///
/// The naive metric functions split both strings into fresh `Vec<char>`s,
/// allocate a `vec![false]` matched mask and two match-character vectors
/// (Jaro), or two DP rows (Levenshtein) on *every* call.  The kernel hoists
/// all of that into one long-lived workspace: a matcher evaluating millions
/// of distinct value pairs touches the allocator only when a buffer needs
/// to grow.  Every method is bit-for-bit equivalent to its allocating
/// counterpart — same algorithm, same arithmetic order.
#[derive(Debug, Default)]
pub struct SimilarityKernel {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    b_matched: Vec<bool>,
    a_match_chars: Vec<char>,
    b_match_chars: Vec<char>,
    lev_prev: Vec<usize>,
    lev_cur: Vec<usize>,
}

impl SimilarityKernel {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SimilarityKernel::default()
    }

    fn split(&mut self, a: &str, b: &str) {
        self.a_chars.clear();
        self.a_chars.extend(a.chars());
        self.b_chars.clear();
        self.b_chars.extend(b.chars());
    }

    /// [`jaro`] with reused scratch.
    pub fn jaro(&mut self, a: &str, b: &str) -> f64 {
        self.split(a, b);
        let (a, b) = (&self.a_chars[..], &self.b_chars[..]);
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let window = (a.len().max(b.len()) / 2).saturating_sub(1);
        self.b_matched.clear();
        self.b_matched.resize(b.len(), false);
        self.a_match_chars.clear();
        let mut matches = 0usize;
        for (i, ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for (j, cb) in b.iter().enumerate().take(hi).skip(lo) {
                if !self.b_matched[j] && *cb == *ca {
                    self.b_matched[j] = true;
                    matches += 1;
                    self.a_match_chars.push(*ca);
                    break;
                }
            }
        }
        if matches == 0 {
            return 0.0;
        }
        // Matched characters of `b` in position order (the mask is scanned
        // left to right, so no sort is needed).
        self.b_match_chars.clear();
        self.b_match_chars.extend(
            b.iter()
                .enumerate()
                .filter(|(j, _)| self.b_matched[*j])
                .map(|(_, c)| *c),
        );
        let transpositions = self
            .a_match_chars
            .iter()
            .zip(&self.b_match_chars)
            .filter(|(ca, cb)| ca != cb)
            .count()
            / 2;
        let m = matches as f64;
        (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
    }

    /// [`jaro_winkler`] with reused scratch.
    pub fn jaro_winkler(&mut self, a: &str, b: &str) -> f64 {
        let j = self.jaro(a, b);
        let prefix = a
            .chars()
            .zip(b.chars())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count();
        j + prefix as f64 * 0.1 * (1.0 - j)
    }

    /// Threshold-bounded Levenshtein with reused DP rows: `Some(d)` iff the
    /// edit distance `d` is at most `k` (see
    /// [`dq_relation::levenshtein_within`]).
    pub fn edit_within(&mut self, a: &str, b: &str, k: usize) -> Option<usize> {
        self.split(a, b);
        levenshtein_within_scratch(
            &self.a_chars,
            &self.b_chars,
            k,
            &mut self.lev_prev,
            &mut self.lev_cur,
        )
    }

    /// Evaluates a similarity operator on two *display strings*, assuming
    /// the caller already ruled out value equality (the `a == b` fast path
    /// of [`SimilarityOp::related`] — which compares [`Value`]s, not display
    /// strings, so it cannot be reproduced from the strings alone).
    ///
    /// Exactly equivalent to the metric arm of [`SimilarityOp::related`]:
    /// the edit family goes through the banded kernel with a threshold
    /// chosen so the accept set is unchanged, Jaro/Jaro–Winkler reuse the
    /// scratch buffers, and `Equality` answers `false` by the caller's
    /// contract.
    pub fn related_display(&mut self, op: &SimilarityOp, sa: &str, sb: &str) -> bool {
        match op {
            // Value equality was already handled by the caller; two display
            // strings being equal does NOT make distinct values equal.
            SimilarityOp::Equality => false,
            SimilarityOp::EditDistance { max_distance } => {
                self.edit_within(sa, sb, *max_distance).is_some()
            }
            SimilarityOp::NormalizedEdit { min_similarity } => {
                // `1 - d/max_len >= t` is downward-closed in `d` (division
                // and subtraction are monotone in IEEE arithmetic), so the
                // largest admissible distance can be found by binary search
                // on the exact float predicate, then checked with the
                // banded kernel.  Accept set identical to
                // `normalized_edit_similarity(sa, sb) >= t`.
                let max_len = sa.chars().count().max(sb.chars().count());
                if max_len == 0 {
                    return 1.0 >= *min_similarity;
                }
                let pred = |d: usize| 1.0 - d as f64 / max_len as f64 >= *min_similarity;
                if !pred(0) {
                    return false;
                }
                let (mut lo, mut hi) = (0usize, max_len);
                while lo < hi {
                    let mid = lo + (hi - lo).div_ceil(2);
                    if pred(mid) {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                self.edit_within(sa, sb, lo).is_some()
            }
            SimilarityOp::Jaro { min_similarity } => self.jaro(sa, sb) >= *min_similarity,
            SimilarityOp::JaroWinkler { min_similarity } => {
                self.jaro_winkler(sa, sb) >= *min_similarity
            }
            SimilarityOp::QGram { q, min_similarity } => {
                qgram_similarity(sa, sb, *q) >= *min_similarity
            }
        }
    }
}

/// The Jaro–Winkler similarity (Jaro with a bonus for common prefixes).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// The q-gram set of a string: all length-`q` character windows, or the
/// whole string when it is shorter than `q`.  Shared by
/// [`qgram_similarity`] and the q-gram inverted index in [`crate::block`],
/// so blocking and verification agree on the gram definition by
/// construction.
pub(crate) fn qgrams(s: &str, q: usize) -> BTreeSet<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return [s.to_string()].into_iter().collect();
    }
    chars
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// Jaccard similarity of the q-gram sets of the two strings.
pub fn qgram_similarity(a: &str, b: &str, q: usize) -> f64 {
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_subsume_equality() {
        let ops = [
            SimilarityOp::Equality,
            SimilarityOp::edit(0),
            SimilarityOp::jaro(0.99),
            SimilarityOp::jaro_winkler(0.99),
            SimilarityOp::qgram(2, 0.99),
        ];
        for op in &ops {
            assert!(
                op.related(&Value::str("John Smith"), &Value::str("John Smith")),
                "{op}"
            );
            assert!(op.related(&Value::int(42), &Value::int(42)));
        }
    }

    #[test]
    fn operators_are_symmetric() {
        let ops = [
            SimilarityOp::edit(2),
            SimilarityOp::jaro(0.8),
            SimilarityOp::jaro_winkler(0.8),
            SimilarityOp::qgram(2, 0.4),
        ];
        let pairs = [("John", "Jon"), ("Smith", "Smyth"), ("a", "b")];
        for op in &ops {
            for (a, b) in &pairs {
                assert_eq!(
                    op.related(&Value::str(*a), &Value::str(*b)),
                    op.related(&Value::str(*b), &Value::str(*a)),
                    "{op} not symmetric on {a}/{b}"
                );
            }
        }
    }

    #[test]
    fn edit_distance_thresholds() {
        let ed1 = SimilarityOp::edit(1);
        assert!(ed1.related(&Value::str("Jon"), &Value::str("John")));
        assert!(!ed1.related(&Value::str("Jon"), &Value::str("Johnny")));
        let ed3 = SimilarityOp::edit(3);
        assert!(ed3.related(&Value::str("Jon"), &Value::str("Johnny")));
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944).abs() < 0.01);
        assert!((jaro("DIXON", "DICKSONX") - 0.767).abs() < 0.01);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefixes() {
        let j = jaro("MARTHA", "MARHTA");
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!(jw > j);
        assert!(jw <= 1.0);
        // No common prefix: no boost.
        assert_eq!(jaro("XABC", "YABC"), jaro_winkler("XABC", "YABC"));
    }

    #[test]
    fn qgram_similarity_behaviour() {
        assert_eq!(qgram_similarity("abcd", "abcd", 2), 1.0);
        let s = qgram_similarity("J. Smith", "John Smith", 2);
        assert!(s > 0.3 && s < 1.0);
        assert_eq!(qgram_similarity("ab", "xy", 2), 0.0);
    }

    #[test]
    fn containment_relation() {
        assert!(SimilarityOp::Equality.contained_in(&SimilarityOp::edit(2)));
        assert!(SimilarityOp::edit(1).contained_in(&SimilarityOp::edit(2)));
        assert!(!SimilarityOp::edit(2).contained_in(&SimilarityOp::edit(1)));
        assert!(SimilarityOp::jaro(0.9).contained_in(&SimilarityOp::jaro(0.8)));
        assert!(!SimilarityOp::jaro(0.8).contained_in(&SimilarityOp::jaro(0.9)));
        // Different families are incomparable.
        assert!(!SimilarityOp::edit(1).contained_in(&SimilarityOp::jaro(0.1)));
        // Containment is consistent with behaviour on a sample.
        let tight = SimilarityOp::edit(1);
        let loose = SimilarityOp::edit(3);
        for (a, b) in [("Jon", "John"), ("Jon", "Johnny"), ("a", "zzz")] {
            if tight.related(&Value::str(a), &Value::str(b)) {
                assert!(loose.related(&Value::str(a), &Value::str(b)));
            }
        }
    }

    /// The pre-kernel Jaro implementation, kept verbatim as the reference
    /// for the scratch-reusing kernel.
    fn jaro_reference(a: &str, b: &str) -> f64 {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let window = (a.len().max(b.len()) / 2).saturating_sub(1);
        let mut b_matched = vec![false; b.len()];
        let mut matches = 0usize;
        let mut a_match_chars = Vec::new();
        for (i, ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for j in lo..hi {
                if !b_matched[j] && b[j] == *ca {
                    b_matched[j] = true;
                    matches += 1;
                    a_match_chars.push((i, j, *ca));
                    break;
                }
            }
        }
        if matches == 0 {
            return 0.0;
        }
        let b_match_chars: Vec<char> = {
            let mut v: Vec<(usize, char)> = b
                .iter()
                .enumerate()
                .filter(|(j, _)| b_matched[*j])
                .map(|(j, c)| (j, *c))
                .collect();
            v.sort_by_key(|(j, _)| *j);
            v.into_iter().map(|(_, c)| c).collect()
        };
        let transpositions = a_match_chars
            .iter()
            .zip(&b_match_chars)
            .filter(|((_, _, ca), cb)| ca != *cb)
            .count()
            / 2;
        let m = matches as f64;
        (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
    }

    fn random_words() -> Vec<String> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let alphabet = ['a', 'b', 'c', 'J', 'o', 'n', ' ', '.', 'é'];
        let mut words = vec![
            String::new(),
            "MARTHA".into(),
            "MARHTA".into(),
            "DIXON".into(),
            "DICKSONX".into(),
            "J. Smith".into(),
            "John Smith".into(),
        ];
        for _ in 0..60 {
            let len = (next() % 14) as usize;
            words.push(
                (0..len)
                    .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
                    .collect(),
            );
        }
        words
    }

    /// Quickcheck: one reused kernel matches the allocating reference
    /// bit-for-bit on every pair of generated strings.
    #[test]
    fn kernel_jaro_is_bit_identical_to_the_reference() {
        let words = random_words();
        let mut kernel = SimilarityKernel::new();
        for a in &words {
            for b in &words {
                let reference = jaro_reference(a, b);
                assert_eq!(
                    kernel.jaro(a, b).to_bits(),
                    reference.to_bits(),
                    "{a:?}/{b:?}"
                );
                // The free function (thread-local kernel) agrees too.
                assert_eq!(jaro(a, b).to_bits(), reference.to_bits(), "{a:?}/{b:?}");
            }
        }
    }

    /// Quickcheck: `related_display` agrees with `related` on string values
    /// (where display form == string content) for every operator family.
    #[test]
    fn kernel_related_display_matches_naive_related() {
        let words = random_words();
        let ops = [
            SimilarityOp::Equality,
            SimilarityOp::edit(0),
            SimilarityOp::edit(1),
            SimilarityOp::edit(3),
            SimilarityOp::NormalizedEdit {
                min_similarity: 0.0,
            },
            SimilarityOp::NormalizedEdit {
                min_similarity: 0.5,
            },
            SimilarityOp::NormalizedEdit {
                min_similarity: 1.0,
            },
            SimilarityOp::NormalizedEdit {
                min_similarity: 1.5,
            },
            SimilarityOp::jaro(0.7),
            SimilarityOp::jaro_winkler(0.8),
            SimilarityOp::qgram(2, 0.4),
            SimilarityOp::qgram(3, 0.2),
        ];
        let mut kernel = SimilarityKernel::new();
        for a in &words {
            for b in &words {
                let (va, vb) = (Value::str(a.as_str()), Value::str(b.as_str()));
                for op in &ops {
                    // Mirror the caller contract: value equality first.
                    let interned = va == vb || kernel.related_display(op, a, b);
                    assert_eq!(interned, op.related(&va, &vb), "{op} on {a:?}/{b:?}");
                }
            }
        }
    }

    #[test]
    fn name_variations_from_the_fraud_example() {
        // "John Smith" vs "J. Smith" (Section 3.1) are similar under q-grams
        // and Jaro-Winkler but not exact-equal.
        let a = Value::str("John Smith");
        let b = Value::str("J. Smith");
        assert!(!SimilarityOp::Equality.related(&a, &b));
        assert!(SimilarityOp::jaro_winkler(0.7).related(&a, &b));
        assert!(SimilarityOp::qgram(2, 0.4).related(&a, &b));
    }
}
