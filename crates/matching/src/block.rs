//! Blocking built directly over the dictionaries.
//!
//! Candidate generation runs at the *dictionary* level: a blocker maps one
//! left-dictionary entry to the right-dictionary ids that could possibly
//! satisfy a similarity premise, and the engine expands surviving id pairs
//! to tuple pairs through the interned indexes' CSR postings.  Two
//! generators are lossless for the operator families they cover — every
//! pair the exhaustive matcher relates is generated:
//!
//! * [`QGramBlocker`] — an inverted index from q-gram tokens to right ids,
//!   using the exact gram definition of
//!   [`qgram_similarity`](crate::similarity::qgram_similarity) (whole
//!   string below length `q`).  Complete for `QGram { q, min_similarity }`
//!   with a positive threshold: Jaccard > 0 requires at least one shared
//!   gram.
//! * [`LengthBlocker`] — right ids bucketed by display length.  Complete
//!   for the edit family: `levenshtein(a, b) >= |len(a) - len(b)|`, so an
//!   `EditDistance { k }` premise only relates lengths within `k`, and a
//!   `NormalizedEdit { t }` premise (t > 0) only relates lengths whose
//!   difference fits the largest distance the threshold admits at those
//!   lengths.
//!
//! [`sorted_neighborhood`] is the classic *approximate* generator — merge
//! both dictionaries in display order and pair entries within a sliding
//! window.  It can miss pairs (recall < 1) and is therefore opt-in, for
//! operators no lossless blocker covers (Jaro/Jaro–Winkler); the default
//! engine configuration falls back to exhaustive dictionary pairs instead,
//! which stays byte-identical to the naive matcher.

use crate::similarity::{qgrams, SimilarityOp};
use dq_relation::{FxHashMap, ValueId};

use crate::simcache::DisplayColumn;

/// Which candidate generator covers an operator losslessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cover {
    /// Shared-q-gram inverted index.
    QGram,
    /// Length-window buckets.
    Length,
    /// No lossless blocker — exhaustive dictionary pairs (or an explicit
    /// approximate pass).
    None,
}

/// The lossless generator for `op`, if any.
///
/// `Equality` premises never reach the metric blockers (the engine joins
/// them through the interned indexes), and non-positive thresholds accept
/// disjoint strings, so nothing short of the full dictionary product is
/// complete for them.
pub fn cover(op: &SimilarityOp) -> Cover {
    match op {
        SimilarityOp::QGram { min_similarity, .. } if *min_similarity > 0.0 => Cover::QGram,
        SimilarityOp::EditDistance { .. } => Cover::Length,
        SimilarityOp::NormalizedEdit { min_similarity } if *min_similarity > 0.0 => Cover::Length,
        _ => Cover::None,
    }
}

/// Epoch-stamped membership scratch: `O(1)` reset between left entries.
pub struct SeenStamp {
    stamps: Vec<u32>,
    epoch: u32,
}

impl SeenStamp {
    /// Scratch sized for a right dictionary of `len` entries.
    pub fn new(len: usize) -> Self {
        SeenStamp {
            stamps: vec![0; len],
            epoch: 0,
        }
    }

    /// Starts a new candidate set.
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `id`; returns `true` the first time in this epoch.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        if self.stamps[id as usize] == self.epoch {
            return false;
        }
        self.stamps[id as usize] = self.epoch;
        true
    }
}

/// Inverted index from q-gram tokens of right-dictionary display forms to
/// the ids that contain them.
pub struct QGramBlocker {
    q: usize,
    postings: FxHashMap<String, Vec<u32>>,
}

impl QGramBlocker {
    /// Indexes the display form of every right id in `ids`.
    pub fn build(q: usize, display: &DisplayColumn, ids: impl Iterator<Item = ValueId>) -> Self {
        let mut postings: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        for id in ids {
            // `qgrams` returns a set, so each id lands at most once per
            // distinct gram.
            for gram in qgrams(display.get(id), q) {
                postings.entry(gram).or_default().push(id.index() as u32);
            }
        }
        QGramBlocker { q, postings }
    }

    /// Right ids sharing at least one q-gram with `s`, deduplicated via
    /// `seen`, appended to `out`.
    pub fn candidates(&self, s: &str, seen: &mut SeenStamp, out: &mut Vec<u32>) {
        seen.reset();
        for gram in qgrams(s, self.q) {
            if let Some(ids) = self.postings.get(&gram) {
                for &id in ids {
                    if seen.insert(id) {
                        out.push(id);
                    }
                }
            }
        }
    }

    /// Number of distinct gram tokens.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }
}

/// Right ids bucketed by display character count, sorted by length.
pub struct LengthBlocker {
    buckets: Vec<(usize, Vec<u32>)>,
}

impl LengthBlocker {
    /// Buckets the display length of every right id in `ids`.
    pub fn build(display: &DisplayColumn, ids: impl Iterator<Item = ValueId>) -> Self {
        let mut by_len: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
        for id in ids {
            by_len
                .entry(display.char_len(id))
                .or_default()
                .push(id.index() as u32);
        }
        LengthBlocker {
            buckets: by_len.into_iter().collect(),
        }
    }

    /// Right ids whose length is admissible for `op` against a left string
    /// of `left_len` characters, appended to `out`.
    pub fn candidates(&self, op: &SimilarityOp, left_len: usize, out: &mut Vec<u32>) {
        for (len, ids) in &self.buckets {
            let admissible = match op {
                SimilarityOp::EditDistance { max_distance } => {
                    left_len.abs_diff(*len) <= *max_distance
                }
                SimilarityOp::NormalizedEdit { min_similarity } => {
                    let max_len = left_len.max(*len);
                    left_len.abs_diff(*len) <= max_admissible_distance(max_len, *min_similarity)
                }
                _ => true,
            };
            if admissible {
                out.extend_from_slice(ids);
            }
        }
    }
}

/// The largest edit distance `d <= max_len` with
/// `1 - d/max_len >= min_similarity` under exact f64 evaluation (`0` when
/// even `d = 0` fails — the caller still verifies through the metric, this
/// only has to never under-approximate the accept set).
pub(crate) fn max_admissible_distance(max_len: usize, min_similarity: f64) -> usize {
    if max_len == 0 {
        return 0;
    }
    let pred = |d: usize| 1.0 - d as f64 / max_len as f64 >= min_similarity;
    if !pred(0) {
        return 0;
    }
    let (mut lo, mut hi) = (0usize, max_len);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if pred(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// The sorted-neighborhood pass over both dictionaries: entries of either
/// side are merged, sorted by display form, and every left/right pair
/// within `window` positions of each other becomes a candidate id pair.
///
/// Approximate by design — similar strings that sort far apart (e.g. a
/// differing first character) are missed, so recall can be below 1.  The
/// engine only uses it when explicitly configured.
pub fn sorted_neighborhood<'a>(
    left: impl Iterator<Item = (ValueId, &'a str)>,
    right: impl Iterator<Item = (ValueId, &'a str)>,
    window: usize,
) -> Vec<(u32, u32)> {
    // (display, side, id): side 0 = left, 1 = right.
    let mut entries: Vec<(&str, u8, u32)> = left
        .map(|(id, s)| (s, 0u8, id.index() as u32))
        .chain(right.map(|(id, s)| (s, 1u8, id.index() as u32)))
        .collect();
    entries.sort_unstable();
    let mut pairs = Vec::new();
    for (i, &(_, side_i, id_i)) in entries.iter().enumerate() {
        for &(_, side_j, id_j) in entries.iter().skip(i + 1).take(window) {
            match (side_i, side_j) {
                (0, 1) => pairs.push((id_i, id_j)),
                (1, 0) => pairs.push((id_j, id_i)),
                _ => {}
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::qgram_similarity;
    use dq_relation::{Value, ValueInterner};

    fn display_of(words: &[&str]) -> DisplayColumn {
        let mut interner = ValueInterner::new();
        for w in words {
            interner.intern(&Value::str(*w));
        }
        DisplayColumn::build(&interner)
    }

    /// Completeness: every pair the metric relates is generated.
    #[test]
    fn qgram_blocker_is_complete_for_positive_thresholds() {
        let words = ["John Smith", "J. Smith", "Jon", "Mary", "ab", "a", ""];
        let display = display_of(&words);
        for q in [2usize, 3] {
            let blocker =
                QGramBlocker::build(q, &display, (0..words.len()).map(|i| ValueId(i as u32)));
            let mut seen = SeenStamp::new(words.len());
            for (li, la) in words.iter().enumerate() {
                let mut cands = Vec::new();
                blocker.candidates(la, &mut seen, &mut cands);
                for (ri, rb) in words.iter().enumerate() {
                    if qgram_similarity(la, rb, q) > 0.0 {
                        assert!(
                            cands.contains(&(ri as u32)),
                            "q={q}: {la:?} ~ {rb:?} missed by blocking (left {li})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn length_blocker_is_complete_for_the_edit_family() {
        let words = ["", "a", "ab", "abc", "abcd", "abcdefgh", "xyz"];
        let display = display_of(&words);
        let blocker = LengthBlocker::build(&display, (0..words.len()).map(|i| ValueId(i as u32)));
        let ops = [
            SimilarityOp::edit(0),
            SimilarityOp::edit(2),
            SimilarityOp::NormalizedEdit {
                min_similarity: 0.5,
            },
            SimilarityOp::NormalizedEdit {
                min_similarity: 0.9,
            },
        ];
        for op in &ops {
            for la in &words {
                let mut cands = Vec::new();
                blocker.candidates(op, la.chars().count(), &mut cands);
                for (ri, rb) in words.iter().enumerate() {
                    if op.related(&Value::str(*la), &Value::str(*rb)) {
                        assert!(
                            cands.contains(&(ri as u32)),
                            "{op}: {la:?} ~ {rb:?} missed by length blocking"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn admissible_distance_matches_the_float_predicate_exactly() {
        for max_len in [1usize, 2, 3, 7, 10, 97] {
            for t in [-0.5, 0.0, 0.3, 0.5, 0.75, 0.999, 1.0, 1.5] {
                let k = max_admissible_distance(max_len, t);
                let feasible = 1.0 >= t;
                for d in 0..=max_len {
                    let pred = 1.0 - d as f64 / max_len as f64 >= t;
                    // Complete: every admissible distance is within k ...
                    assert!(!pred || d <= k, "max_len={max_len} t={t} d={d} k={k}");
                    // ... and exact whenever the threshold is satisfiable.
                    if feasible {
                        assert_eq!(pred, d <= k, "max_len={max_len} t={t} d={d} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn sorted_neighborhood_pairs_nearby_entries() {
        let left = ["Smith", "Smyth", "Jones"];
        let right = ["Smith", "Smithe", "Zable"];
        let pairs = sorted_neighborhood(
            left.iter()
                .enumerate()
                .map(|(i, s)| (ValueId(i as u32), *s)),
            right
                .iter()
                .enumerate()
                .map(|(i, s)| (ValueId(i as u32), *s)),
            2,
        );
        // "Smith"(L0) sorts adjacent to "Smith"(R0) and "Smithe"(R1).
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(0, 1)));
        // Pairs are (left, right) regardless of sort interleaving.
        for &(l, r) in &pairs {
            assert!((l as usize) < left.len() && (r as usize) < right.len());
        }
    }

    #[test]
    fn seen_stamp_survives_epoch_wraparound() {
        let mut seen = SeenStamp::new(2);
        for _ in 0..70_000u32 {
            seen.reset();
            assert!(seen.insert(1));
            assert!(!seen.insert(1));
        }
    }
}
