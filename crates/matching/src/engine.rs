//! The interned matching engine: blocked, parallel rule and MD evaluation
//! over the columnar store.
//!
//! The naive paths ([`Matcher::run`](crate::matcher::Matcher::run),
//! [`MatchingDependency::violations_with`]) re-render and re-compare raw
//! [`Value`]s for every tuple pair.  The engine routes the same semantics
//! through the interned store instead:
//!
//! * **similarity on the dictionary** — each premise is evaluated once per
//!   distinct `(left id, right id)` pair: display forms come from a cached
//!   [`DisplayColumn`], equality (and every metric's `a == b` fast path)
//!   from an [`EqTranslation`], and metric verdicts are memoized in the
//!   engine's [`SimilarityCache`];
//! * **blocking over the dictionaries** — equality premises become an
//!   interned-index join; the first metric premise a lossless generator
//!   covers ([`block::cover`]) prunes candidates by shared q-grams or by
//!   length windows before any metric runs; surviving id pairs expand to
//!   tuple pairs through the indexes' CSR postings;
//! * **parallel matching** — left-dictionary groups fan out in chunks over
//!   [`parallel_map`] and merge in canonical chunk order, so results are
//!   deterministic and *byte-identical* to the naive paths (`matches`,
//!   `rule_hits`, violation vectors) at any thread count.
//!
//! The only intentionally approximate mode is
//! [`MatchingEngine::with_sorted_neighborhood`], which swaps the exhaustive
//! fallback (for operators no lossless blocker covers) for a
//! sorted-neighborhood window; it is off by default.

use crate::block::{self, Cover, LengthBlocker, QGramBlocker, SeenStamp};
use crate::matcher::MatchResult;
use crate::md::{MatchOp, MatchingDependency, MdPremise};
use crate::rck::RelativeKey;
use crate::simcache::{op_fingerprint, DisplayColumn, EqTranslation, SimilarityCache};
use crate::similarity::SimilarityOp;
use dq_core::engine::parallel_map;
use dq_obs::span;
use dq_relation::{
    Column, ColumnarStore, FxHashMap, IndexPool, RelationInstance, TupleId, ValueId,
};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A dictionary's identity: the owning instance, the store version it was
/// snapshotted at, and the attribute.  Columns (and hence interners) are
/// shared per `(instance, version, attr)`, so ids are comparable exactly
/// within one key.
type DictKey = (u64, u64, usize);

/// Memo-context registry key: left dictionary, right dictionary, operator
/// fingerprint.
type CtxKey = (DictKey, DictKey, (u8, u64, u64));

/// One fan-out worker's result: candidate tuple pairs plus its comparison,
/// candidate and pairs-saved tallies.
type PairChunk = (Vec<(TupleId, TupleId)>, usize, u64, u64);

fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    }
}

/// One premise compiled against the stores: columns on both sides, cached
/// display forms, the equality translation and a memo-cache context.
/// Displays exist only for metric premises — a pure-equality premise
/// resolves entirely through the id translation, and materializing one
/// string per dictionary entry for it would dominate the cold path of
/// equality-joined rules.
struct PremiseEval {
    lcol: Arc<Column>,
    rcol: Arc<Column>,
    ldisp: Option<Arc<DisplayColumn>>,
    rdisp: Option<Arc<DisplayColumn>>,
    trans: Arc<EqTranslation>,
    /// `None` for pure-equality premises (`Equality` or a `⇋` premise,
    /// which [`MatchingDependency::premise_holds`] interprets as value
    /// equality).
    op: Option<SimilarityOp>,
    ctx: u32,
}

impl PremiseEval {
    /// Does the premise hold for a distinct value pair?  Value equality
    /// first (the naive `related` fast path — on [`Value`]s, not display
    /// strings), then the memoized metric.
    #[inline]
    fn holds_ids(&self, cache: &SimilarityCache, l: ValueId, r: ValueId) -> bool {
        if self.trans.ids_equal(l, r) {
            return true;
        }
        match &self.op {
            None => false,
            Some(op) => {
                let ldisp = self.ldisp.as_ref().expect("metric premise has displays");
                let rdisp = self.rdisp.as_ref().expect("metric premise has displays");
                cache.related_or_insert(self.ctx, l, r, |kernel| {
                    kernel.related_display(op, ldisp.get(l), rdisp.get(r))
                })
            }
        }
    }

    /// Does the premise hold for a pair of store rows?
    #[inline]
    fn holds_rows(&self, cache: &SimilarityCache, lrow: u32, rrow: u32) -> bool {
        self.holds_ids(
            cache,
            self.lcol.id_at(lrow as usize),
            self.rcol.id_at(rrow as usize),
        )
    }
}

/// Candidate generator compiled for the blocking premise of one rule.
enum Candidates {
    /// Shared-q-gram postings over the right dictionary.
    QGram(QGramBlocker),
    /// Length-window buckets over the right dictionary.
    Length(LengthBlocker),
    /// Every right id — the exhaustive (but still memoized) fallback.
    All(Vec<u32>),
    /// Sorted-neighborhood window: left id -> right ids (approximate).
    Window(FxHashMap<u32, Vec<u32>>),
}

/// Pre-registered dq-obs handles for the engine counters.
struct EngineObs {
    blocks_built: dq_obs::Counter,
    candidates: dq_obs::Counter,
    comparisons: dq_obs::Counter,
    pairs_saved: dq_obs::Counter,
}

impl EngineObs {
    fn new() -> Self {
        let rec = dq_obs::recorder();
        EngineObs {
            blocks_built: rec.counter("match.blocks_built"),
            candidates: rec.counter("match.candidates"),
            comparisons: rec.counter("match.comparisons"),
            pairs_saved: rec.counter("match.pairs_saved"),
        }
    }
}

/// Running engine counters, also emitted as `match.*` dq-obs metrics;
/// includes the similarity memo cache's counters under `.cache`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchingEngineStats {
    /// Blocking structures built (q-gram indexes, length buckets, windows).
    pub blocks_built: u64,
    /// Candidate right ids generated by blocking.
    pub candidates: u64,
    /// Tuple-pair comparisons actually performed.
    pub comparisons: u64,
    /// Tuple pairs blocking skipped without comparing.
    pub pairs_saved: u64,
    /// Similarity memo cache counters.
    pub cache: crate::simcache::SimilarityCacheStats,
}

impl MatchingEngineStats {
    /// Fraction of metric lookups answered from the memo cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }
}

impl dq_obs::MetricSource for MatchingEngineStats {
    fn emit(&self, prefix: &str, sink: &mut dyn dq_obs::MetricSink) {
        sink.counter(&format!("{prefix}.blocks_built"), self.blocks_built);
        sink.counter(&format!("{prefix}.candidates"), self.candidates);
        sink.counter(&format!("{prefix}.comparisons"), self.comparisons);
        sink.counter(&format!("{prefix}.pairs_saved"), self.pairs_saved);
        self.cache.emit(&format!("{prefix}.cache"), sink);
    }
}

/// The interned, blocked, parallel matching engine.
///
/// Holds an [`IndexPool`] (shared with detection/discovery so interned
/// indexes are built once per instance version), the similarity memo cache,
/// and per-dictionary display/translation caches.  One engine can serve
/// many rule sets over many instances; artifacts are keyed by dictionary
/// identity and reused across calls — exactly what the rule-learning loop
/// in `dq-discovery` needs.
pub struct MatchingEngine {
    pool: Arc<IndexPool>,
    threads: usize,
    approx_window: Option<usize>,
    cache: SimilarityCache,
    displays: Mutex<FxHashMap<DictKey, Arc<DisplayColumn>>>,
    translations: Mutex<FxHashMap<(DictKey, DictKey), Arc<EqTranslation>>>,
    ctxs: Mutex<FxHashMap<CtxKey, u32>>,
    blocks_built: AtomicU64,
    candidates: AtomicU64,
    comparisons: AtomicU64,
    pairs_saved: AtomicU64,
    obs: EngineObs,
}

impl std::fmt::Debug for MatchingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchingEngine")
            .field("threads", &self.threads)
            .field("approx_window", &self.approx_window)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl MatchingEngine {
    /// An engine over a (possibly shared) index pool.  Thread count
    /// defaults to the machine's parallelism.
    pub fn new(pool: Arc<IndexPool>) -> Self {
        MatchingEngine {
            pool,
            threads: 0,
            approx_window: None,
            cache: SimilarityCache::new(),
            displays: Mutex::new(FxHashMap::default()),
            translations: Mutex::new(FxHashMap::default()),
            ctxs: Mutex::new(FxHashMap::default()),
            blocks_built: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            comparisons: AtomicU64::new(0),
            pairs_saved: AtomicU64::new(0),
            obs: EngineObs::new(),
        }
    }

    /// Sets the worker count (`0` = machine parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the exhaustive fallback for operators no lossless blocker
    /// covers (Jaro / Jaro–Winkler / non-positive thresholds) with a
    /// sorted-neighborhood pass of the given window.  **Approximate**: the
    /// engine may then miss matches the naive matcher finds; never enabled
    /// by default.
    pub fn with_sorted_neighborhood(mut self, window: usize) -> Self {
        self.approx_window = Some(window);
        self
    }

    /// The engine's index pool.
    pub fn pool(&self) -> &Arc<IndexPool> {
        &self.pool
    }

    /// Point-in-time counters (engine + memo cache).
    pub fn stats(&self) -> MatchingEngineStats {
        MatchingEngineStats {
            blocks_built: self.blocks_built.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            pairs_saved: self.pairs_saved.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// Runs a set of matching rules, mirroring
    /// [`Matcher::run`](crate::matcher::Matcher::run) exactly: same
    /// `matches`, same `rule_hits` (rules processed in order, a hit
    /// recorded per newly matched pair).
    pub fn run(
        &self,
        rules: &[RelativeKey],
        use_blocking: bool,
        d1: &RelationInstance,
        d2: &RelationInstance,
    ) -> MatchResult {
        let mut result = MatchResult::default();
        for (rule_idx, rule) in rules.iter().enumerate() {
            let _span = span!("match.rule", rule = rule_idx, blocking = use_blocking);
            let (pairs, comparisons) = self.premise_pairs(rule.md(), d1, d2, use_blocking);
            result.comparisons += comparisons;
            for pair in pairs {
                if result.matches.insert(pair) {
                    result.rule_hits.push(rule_idx);
                }
            }
        }
        result
    }

    /// Pairs violating an MD under the supplied interpretation of `⇋`,
    /// byte-identical (contents *and* order) to
    /// [`MatchingDependency::violations_with`].
    pub fn md_violations(
        &self,
        md: &MatchingDependency,
        d1: &RelationInstance,
        d2: &RelationInstance,
        matches: &(dyn Fn(TupleId, TupleId) -> bool + Sync),
    ) -> Vec<(TupleId, TupleId)> {
        let _span = span!("match.md_violations", premises = md.length());
        let (pairs, _) = self.premise_pairs(md, d1, d2, true);
        let conclusion: Vec<PremiseEval> = match md.conclusion_op() {
            MatchOp::Matching => Vec::new(),
            MatchOp::Similarity(op) => {
                let (s1, s2) = (d1.columnar(), d2.columnar());
                md.conclusion_left()
                    .iter()
                    .zip(md.conclusion_right())
                    .map(|(&a, &b)| self.compile_comparison(d1, d2, &s1, &s2, a, b, op.clone()))
                    .collect()
            }
        };
        let (s1, s2) = (d1.columnar(), d2.columnar());
        let mut out: Vec<(TupleId, TupleId)> = pairs
            .into_iter()
            .filter(|&(id1, id2)| {
                let ok = match md.conclusion_op() {
                    MatchOp::Matching => matches(id1, id2),
                    MatchOp::Similarity(_) => {
                        let lrow = s1.row_of(id1).expect("premise pair row") as u32;
                        let rrow = s2.row_of(id2).expect("premise pair row") as u32;
                        conclusion
                            .iter()
                            .all(|c| c.holds_rows(&self.cache, lrow, rrow))
                    }
                };
                !ok
            })
            .collect();
        // The naive path iterates both instances in ascending tuple order.
        out.sort_unstable();
        out
    }

    /// Cached display forms of one column's dictionary.  The build shards
    /// the dictionary across the engine's thread pool — rendering is the
    /// per-entry half of `match.compile`, the engine-cold bottleneck.
    fn display(&self, key: DictKey, col: &Column) -> Arc<DisplayColumn> {
        let threads = resolve_threads(self.threads);
        let mut cache = self.displays.lock().expect("display cache poisoned");
        Arc::clone(
            cache.entry(key).or_insert_with(|| {
                Arc::new(DisplayColumn::build_parallel(col.interner(), threads))
            }),
        )
    }

    /// Cached equality translation between two columns' dictionaries,
    /// built sharded like [`MatchingEngine::display`].
    fn translation(
        &self,
        lkey: DictKey,
        rkey: DictKey,
        lcol: &Column,
        rcol: &Column,
    ) -> Arc<EqTranslation> {
        let threads = resolve_threads(self.threads);
        let mut cache = self
            .translations
            .lock()
            .expect("translation cache poisoned");
        Arc::clone(cache.entry((lkey, rkey)).or_insert_with(|| {
            Arc::new(EqTranslation::build_parallel(
                lcol.interner(),
                rcol.interner(),
                threads,
            ))
        }))
    }

    /// The memo-cache context of `(left dictionary, right dictionary, op)`.
    fn ctx(&self, lkey: DictKey, rkey: DictKey, op: &SimilarityOp) -> u32 {
        let mut ctxs = self.ctxs.lock().expect("ctx registry poisoned");
        let next = ctxs.len() as u32;
        *ctxs.entry((lkey, rkey, op_fingerprint(op))).or_insert(next)
    }

    /// Compiles one attribute comparison against the stores.
    #[allow(clippy::too_many_arguments)]
    fn compile_comparison(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        s1: &ColumnarStore,
        s2: &ColumnarStore,
        left: usize,
        right: usize,
        op: SimilarityOp,
    ) -> PremiseEval {
        let lkey = (s1.instance_id(), s1.version(), left);
        let rkey = (s2.instance_id(), s2.version(), right);
        let lcol = s1.column(d1, left);
        let rcol = s2.column(d2, right);
        let op = (op != SimilarityOp::Equality).then_some(op);
        let (ldisp, rdisp) = match &op {
            Some(_) => (
                Some(self.display(lkey, &lcol)),
                Some(self.display(rkey, &rcol)),
            ),
            None => (None, None),
        };
        let trans = self.translation(lkey, rkey, &lcol, &rcol);
        let ctx = op
            .as_ref()
            .map(|op| self.ctx(lkey, rkey, op))
            .unwrap_or(u32::MAX);
        PremiseEval {
            lcol,
            rcol,
            ldisp,
            rdisp,
            trans,
            op,
            ctx,
        }
    }

    /// Compiles one MD premise (a `⇋` premise evaluates as value equality,
    /// as in [`MatchingDependency::premise_holds`]).
    fn compile_premise(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        s1: &ColumnarStore,
        s2: &ColumnarStore,
        p: &MdPremise,
    ) -> PremiseEval {
        let op = match &p.op {
            MatchOp::Similarity(op) => op.clone(),
            MatchOp::Matching => SimilarityOp::Equality,
        };
        self.compile_comparison(d1, d2, s1, s2, p.left, p.right, op)
    }

    /// All tuple pairs satisfying an MD's premise, with the number of
    /// tuple-pair comparisons performed.  Deterministic order (left groups
    /// in dictionary first-seen order, chunks merged canonically); the
    /// *set* equals the naive nested-loop evaluation exactly, except under
    /// an explicitly approximate sorted-neighborhood fallback.
    fn premise_pairs(
        &self,
        md: &MatchingDependency,
        d1: &RelationInstance,
        d2: &RelationInstance,
        use_blocking: bool,
    ) -> (Vec<(TupleId, TupleId)>, usize) {
        let threads = resolve_threads(self.threads);
        let (s1, s2) = (d1.columnar(), d2.columnar());
        if s1.is_empty() || s2.is_empty() {
            return (Vec::new(), 0);
        }
        let premises = md.premises();
        let compile_span = span!("match.compile");
        let evals: Vec<PremiseEval> = premises
            .iter()
            .map(|p| self.compile_premise(d1, d2, &s1, &s2, p))
            .collect();
        drop(compile_span);
        let is_eq = |p: &MdPremise| {
            matches!(&p.op, MatchOp::Matching)
                || matches!(&p.op, MatchOp::Similarity(SimilarityOp::Equality))
        };
        let eq_positions: Vec<usize> = (0..premises.len())
            .filter(|&i| is_eq(&premises[i]))
            .collect();
        if use_blocking && !eq_positions.is_empty() {
            self.eq_join_pairs(md, d1, d2, &evals, &eq_positions, threads)
        } else {
            self.metric_pairs(md, d1, d2, &evals, use_blocking, threads)
        }
    }

    /// Equality premises become an interned-index join: left groups on the
    /// equality attributes translate their key ids into the right
    /// dictionaries and probe the right index's CSR postings; the remaining
    /// premises verify per row pair through the memo cache.
    fn eq_join_pairs(
        &self,
        md: &MatchingDependency,
        d1: &RelationInstance,
        d2: &RelationInstance,
        evals: &[PremiseEval],
        eq_positions: &[usize],
        threads: usize,
    ) -> (Vec<(TupleId, TupleId)>, usize) {
        let premises = md.premises();
        let left_attrs: Vec<usize> = eq_positions.iter().map(|&i| premises[i].left).collect();
        let right_attrs: Vec<usize> = eq_positions.iter().map(|&i| premises[i].right).collect();
        let build_span = span!("match.block.build", kind = "eq_join");
        let lidx = self.pool.interned_for(d1, &left_attrs, threads);
        let ridx = self.pool.interned_for(d2, &right_attrs, threads);
        drop(build_span);
        self.blocks_built.fetch_add(1, Ordering::Relaxed);
        self.obs.blocks_built.inc();
        let key_trans: Vec<&Arc<EqTranslation>> =
            eq_positions.iter().map(|&i| &evals[i].trans).collect();
        let rest: Vec<&PremiseEval> = (0..premises.len())
            .filter(|i| !eq_positions.contains(i))
            .map(|i| &evals[i])
            .collect();
        let groups: Vec<(Vec<ValueId>, &[u32])> = lidx.groups().collect();
        let right_rows_total = ridx.store().len() as u64;
        let ranges = chunk_ranges(groups.len(), threads);
        let chunks = parallel_map(&ranges, threads, |range| {
            let mut pairs = Vec::new();
            let mut comparisons = 0usize;
            let mut candidates = 0u64;
            let mut saved = 0u64;
            let mut rkey: Vec<ValueId> = Vec::with_capacity(key_trans.len());
            for (key, lrows) in &groups[range.clone()] {
                rkey.clear();
                let translated =
                    key.iter()
                        .zip(&key_trans)
                        .all(|(&id, trans)| match trans.get(id) {
                            Some(rid) => {
                                rkey.push(rid);
                                true
                            }
                            None => false,
                        });
                let rrows: &[u32] = if translated {
                    ridx.rows_for_ids(&rkey)
                } else {
                    &[]
                };
                candidates += rrows.len() as u64;
                saved += lrows.len() as u64 * (right_rows_total - rrows.len() as u64);
                for &lrow in *lrows {
                    for &rrow in rrows {
                        comparisons += 1;
                        if rest.iter().all(|e| e.holds_rows(&self.cache, lrow, rrow)) {
                            pairs.push((lidx.tuple_id(lrow), ridx.tuple_id(rrow)));
                        }
                    }
                }
            }
            (pairs, comparisons, candidates, saved)
        });
        self.merge_chunks(chunks)
    }

    /// No equality premises (or blocking disabled): group the left rows on
    /// the blocking premise's attribute, generate candidate right ids
    /// (q-grams, length windows, a sorted-neighborhood window, or all of
    /// them), check the blocking premise once per distinct id pair, and
    /// only then expand to rows and verify the remaining premises.
    fn metric_pairs(
        &self,
        md: &MatchingDependency,
        d1: &RelationInstance,
        d2: &RelationInstance,
        evals: &[PremiseEval],
        use_blocking: bool,
        threads: usize,
    ) -> (Vec<(TupleId, TupleId)>, usize) {
        let premises = md.premises();
        // The blocking premise: the first one a lossless generator covers
        // (when blocking is on), else the first premise.
        let covered = |i: &usize| match &premises[*i].op {
            MatchOp::Similarity(op) => block::cover(op) != Cover::None,
            MatchOp::Matching => false,
        };
        let bpos = if use_blocking {
            (0..premises.len()).find(covered).unwrap_or(0)
        } else {
            0
        };
        let beval = &evals[bpos];
        let bop = match &premises[bpos].op {
            MatchOp::Similarity(op) => op.clone(),
            MatchOp::Matching => SimilarityOp::Equality,
        };
        let rest: Vec<&PremiseEval> = (0..premises.len())
            .filter(|&i| i != bpos)
            .map(|i| &evals[i])
            .collect();
        let lidx = self.pool.interned_for(d1, &[premises[bpos].left], threads);
        let ridx = self.pool.interned_for(d2, &[premises[bpos].right], threads);
        let right_ids: Vec<u32> = ridx
            .groups()
            .map(|(key, _)| key[0].index() as u32)
            .collect();
        let generator = self.build_generator(&bop, use_blocking, beval, &lidx, right_ids);
        let groups: Vec<(Vec<ValueId>, &[u32])> = lidx.groups().collect();
        let right_rows_total = ridx.store().len() as u64;
        let right_dict_len = beval.rcol.interner().len();
        let ranges = chunk_ranges(groups.len(), threads);
        let chunks = parallel_map(&ranges, threads, |range| {
            let mut pairs = Vec::new();
            let mut comparisons = 0usize;
            let mut candidates = 0u64;
            let mut saved = 0u64;
            let mut cand: Vec<u32> = Vec::new();
            let mut seen = SeenStamp::new(right_dict_len);
            for (key, lrows) in &groups[range.clone()] {
                let lid = key[0];
                cand.clear();
                match &generator {
                    Candidates::QGram(blocker) => {
                        let ldisp = beval.ldisp.as_ref().expect("covered premise is metric");
                        blocker.candidates(ldisp.get(lid), &mut seen, &mut cand)
                    }
                    Candidates::Length(blocker) => {
                        let ldisp = beval.ldisp.as_ref().expect("covered premise is metric");
                        blocker.candidates(&bop, ldisp.char_len(lid), &mut cand)
                    }
                    Candidates::All(ids) => cand.extend_from_slice(ids),
                    Candidates::Window(map) => {
                        if let Some(ids) = map.get(&(lid.index() as u32)) {
                            cand.extend_from_slice(ids);
                        }
                    }
                }
                candidates += cand.len() as u64;
                let mut probed_rows = 0u64;
                for &rid_raw in &cand {
                    let rid = ValueId(rid_raw);
                    if !beval.holds_ids(&self.cache, lid, rid) {
                        continue;
                    }
                    let rrows = ridx.rows_for_ids(&[rid]);
                    probed_rows += rrows.len() as u64;
                    for &lrow in *lrows {
                        for &rrow in rrows {
                            comparisons += 1;
                            if rest.iter().all(|e| e.holds_rows(&self.cache, lrow, rrow)) {
                                pairs.push((lidx.tuple_id(lrow), ridx.tuple_id(rrow)));
                            }
                        }
                    }
                }
                saved += lrows.len() as u64 * (right_rows_total - probed_rows);
            }
            (pairs, comparisons, candidates, saved)
        });
        self.merge_chunks(chunks)
    }

    /// Builds the candidate generator for the blocking premise.
    fn build_generator(
        &self,
        bop: &SimilarityOp,
        use_blocking: bool,
        beval: &PremiseEval,
        lidx: &dq_relation::InternedIndex,
        right_ids: Vec<u32>,
    ) -> Candidates {
        let cover = if use_blocking {
            block::cover(bop)
        } else {
            Cover::None
        };
        let generator = match cover {
            Cover::QGram => {
                let q = match bop {
                    SimilarityOp::QGram { q, .. } => *q,
                    _ => unreachable!("QGram cover implies a QGram operator"),
                };
                let _span = span!("match.block.build", kind = "qgram");
                Candidates::QGram(QGramBlocker::build(
                    q,
                    beval.rdisp.as_ref().expect("covered premise is metric"),
                    right_ids.iter().map(|&id| ValueId(id)),
                ))
            }
            Cover::Length => {
                let _span = span!("match.block.build", kind = "length");
                Candidates::Length(LengthBlocker::build(
                    beval.rdisp.as_ref().expect("covered premise is metric"),
                    right_ids.iter().map(|&id| ValueId(id)),
                ))
            }
            Cover::None => match self.approx_window.filter(|_| use_blocking) {
                Some(window) => {
                    let _span = span!("match.block.build", kind = "window");
                    let ldisp = beval.ldisp.as_ref().expect("windowed premise is metric");
                    let rdisp = beval.rdisp.as_ref().expect("windowed premise is metric");
                    let left_ids: Vec<u32> = lidx
                        .groups()
                        .map(|(key, _)| key[0].index() as u32)
                        .collect();
                    let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                    for (l, r) in block::sorted_neighborhood(
                        left_ids
                            .iter()
                            .map(|&id| (ValueId(id), ldisp.get(ValueId(id)))),
                        right_ids
                            .iter()
                            .map(|&id| (ValueId(id), rdisp.get(ValueId(id)))),
                        window,
                    ) {
                        map.entry(l).or_default().push(r);
                    }
                    Candidates::Window(map)
                }
                None => Candidates::All(right_ids),
            },
        };
        self.blocks_built.fetch_add(1, Ordering::Relaxed);
        self.obs.blocks_built.inc();
        generator
    }

    /// Merges worker chunks in canonical order and folds their counters
    /// into the engine's.
    fn merge_chunks(&self, chunks: Vec<PairChunk>) -> (Vec<(TupleId, TupleId)>, usize) {
        let mut pairs = Vec::new();
        let mut comparisons = 0usize;
        let (mut candidates, mut saved) = (0u64, 0u64);
        for (chunk_pairs, chunk_comparisons, chunk_candidates, chunk_saved) in chunks {
            pairs.extend(chunk_pairs);
            comparisons += chunk_comparisons;
            candidates += chunk_candidates;
            saved += chunk_saved;
        }
        self.comparisons
            .fetch_add(comparisons as u64, Ordering::Relaxed);
        self.obs.comparisons.add(comparisons as u64);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
        self.obs.candidates.add(candidates);
        self.pairs_saved.fetch_add(saved, Ordering::Relaxed);
        self.obs.pairs_saved.add(saved);
        (pairs, comparisons)
    }
}

/// Splits `len` items into at most `threads * 4` contiguous ranges.
fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(threads.max(1) * 4).max(1);
    (0..len.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use crate::md::fixtures::{billing_schema, card_schema, example_3_1};
    use dq_relation::{Tuple, Value};

    const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
    const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

    fn card_row(fn_: &str, ln: &str, addr: &str, tel: &str, email: &str) -> Tuple {
        Tuple::new(vec![
            Value::str("c"),
            Value::str("ssn"),
            Value::str(fn_),
            Value::str(ln),
            Value::str(addr),
            Value::str(tel),
            Value::str(email),
            Value::str("visa"),
        ])
    }

    fn billing_row(fn_: &str, sn: &str, post: &str, phn: &str, email: &str) -> Tuple {
        Tuple::new(vec![
            Value::str("c"),
            Value::str(fn_),
            Value::str(sn),
            Value::str(post),
            Value::str(phn),
            Value::str(email),
            Value::str("item"),
            Value::real(1.0),
        ])
    }

    fn instances() -> (RelationInstance, RelationInstance) {
        let mut d1 = RelationInstance::new(card_schema());
        let mut d2 = RelationInstance::new(billing_schema());
        for row in [
            card_row("John", "Smith", "10 Main St", "555-1234", "js@x.org"),
            card_row("Mary", "Jones", "5 Oak Ave", "555-2222", "mj@x.org"),
            card_row("Bob", "Lee", "7 Pine Rd", "555-3333", "bl@x.org"),
            card_row("John", "Smith", "9 Elm St", "555-4444", "js2@x.org"),
        ] {
            d1.insert(row).unwrap();
        }
        for row in [
            billing_row("Jon", "Smith", "10 Main St", "555-9999", "other@x.org"),
            billing_row("Mary", "Jones", "5 Oak Ave", "555-2222", "mj@x.org"),
            billing_row("Zoe", "Adams", "1 Elm St", "555-7777", "za@x.org"),
            billing_row("J.", "Smith", "9 Elm St", "555-4444", "js2@x.org"),
        ] {
            d2.insert(row).unwrap();
        }
        (d1, d2)
    }

    fn rules() -> Vec<RelativeKey> {
        vec![
            RelativeKey::new(
                &card_schema(),
                &billing_schema(),
                vec![
                    ("email", "email", SimilarityOp::Equality),
                    ("addr", "post", SimilarityOp::Equality),
                ],
                &YC,
                &YB,
            )
            .unwrap(),
            RelativeKey::new(
                &card_schema(),
                &billing_schema(),
                vec![
                    ("LN", "SN", SimilarityOp::Equality),
                    ("addr", "post", SimilarityOp::Equality),
                    ("FN", "FN", SimilarityOp::edit(3)),
                ],
                &YC,
                &YB,
            )
            .unwrap(),
        ]
    }

    fn engine() -> MatchingEngine {
        MatchingEngine::new(Arc::new(IndexPool::new())).with_threads(2)
    }

    #[test]
    fn engine_run_is_byte_identical_to_the_naive_matcher() {
        let (d1, d2) = instances();
        let matcher = Matcher::new(rules());
        let naive = matcher.run(&d1, &d2);
        let engine = engine();
        let interned = matcher.run_with(&engine, &d1, &d2);
        assert_eq!(naive.matches, interned.matches);
        assert_eq!(naive.rule_hits, interned.rule_hits);
        assert!(engine.stats().blocks_built > 0);
    }

    #[test]
    fn engine_without_blocking_matches_the_naive_exhaustive_run() {
        let (d1, d2) = instances();
        let matcher = Matcher::new(rules()).without_blocking();
        let naive = matcher.run(&d1, &d2);
        let interned = matcher.run_with(&engine(), &d1, &d2);
        assert_eq!(naive.matches, interned.matches);
        assert_eq!(naive.rule_hits, interned.rule_hits);
    }

    #[test]
    fn metric_only_rules_agree_with_naive_for_every_covered_operator() {
        let (d1, d2) = instances();
        let ops = [
            SimilarityOp::edit(2),
            SimilarityOp::NormalizedEdit {
                min_similarity: 0.6,
            },
            SimilarityOp::QGram {
                q: 2,
                min_similarity: 0.3,
            },
            SimilarityOp::Jaro {
                min_similarity: 0.8,
            },
        ];
        for op in ops {
            let rule = RelativeKey::new(
                &card_schema(),
                &billing_schema(),
                vec![("FN", "FN", op.clone())],
                &YC,
                &YB,
            )
            .unwrap();
            let matcher = Matcher::new(vec![rule]);
            let naive = matcher.run(&d1, &d2);
            let interned = matcher.run_with(&engine(), &d1, &d2);
            assert_eq!(naive.matches, interned.matches, "op {op}");
            assert_eq!(naive.rule_hits, interned.rule_hits, "op {op}");
        }
    }

    #[test]
    fn md_violations_agree_with_the_naive_path_in_contents_and_order() {
        let (d1, d2) = instances();
        let mds = example_3_1(&card_schema(), &billing_schema());
        let engine = engine();
        for md in &mds {
            for verdict in [false, true] {
                let naive = md.violations_with(&d1, &d2, &|_, _| verdict);
                let interned = md.violations_with_pool(&d1, &d2, &|_, _| verdict, &engine);
                assert_eq!(naive, interned, "md {md}, oracle {verdict}");
            }
        }
    }

    #[test]
    fn distinct_value_pairs_are_evaluated_once() {
        let (d1, d2) = instances();
        // Two "John Smith" cards share FN/LN dictionary entries, so the
        // edit-distance rule needs strictly fewer metric evaluations than
        // tuple-pair comparisons.
        let rule = RelativeKey::new(
            &card_schema(),
            &billing_schema(),
            vec![("FN", "FN", SimilarityOp::edit(3))],
            &YC,
            &YB,
        )
        .unwrap();
        let engine = engine();
        Matcher::new(vec![rule]).run_with(&engine, &d1, &d2);
        let stats = engine.stats();
        assert!(
            stats.cache.misses < stats.comparisons + stats.candidates,
            "metric work should happen per distinct pair, got {stats:?}"
        );
        // A second identical run is answered entirely from the memo cache.
        let misses_before = stats.cache.misses;
        Matcher::new(vec![RelativeKey::new(
            &card_schema(),
            &billing_schema(),
            vec![("FN", "FN", SimilarityOp::edit(3))],
            &YC,
            &YB,
        )
        .unwrap()])
        .run_with(&engine, &d1, &d2);
        assert_eq!(engine.stats().cache.misses, misses_before);
    }

    #[test]
    fn results_are_stable_across_thread_counts() {
        let (d1, d2) = instances();
        let matcher = Matcher::new(rules());
        let baseline = matcher.run_with(
            &MatchingEngine::new(Arc::new(IndexPool::new())).with_threads(1),
            &d1,
            &d2,
        );
        for threads in [2, 3, 8] {
            let engine = MatchingEngine::new(Arc::new(IndexPool::new())).with_threads(threads);
            let run = matcher.run_with(&engine, &d1, &d2);
            assert_eq!(baseline.matches, run.matches, "threads {threads}");
            assert_eq!(baseline.rule_hits, run.rule_hits, "threads {threads}");
        }
    }

    #[test]
    fn sorted_neighborhood_is_a_subset_of_the_exact_result() {
        let (d1, d2) = instances();
        let rule = RelativeKey::new(
            &card_schema(),
            &billing_schema(),
            vec![(
                "FN",
                "FN",
                SimilarityOp::Jaro {
                    min_similarity: 0.7,
                },
            )],
            &YC,
            &YB,
        )
        .unwrap();
        let matcher = Matcher::new(vec![rule]);
        let exact = matcher.run_with(&engine(), &d1, &d2);
        let approx = matcher.run_with(
            &MatchingEngine::new(Arc::new(IndexPool::new()))
                .with_threads(2)
                .with_sorted_neighborhood(2),
            &d1,
            &d2,
        );
        assert!(approx.matches.is_subset(&exact.matches));
    }
}
