//! Matching dependencies (MDs), Section 3.2.
//!
//! An MD over a pair of relation schemas `(R1, R2)` has the form
//! `⋀_j (R1[X1[j]] ≈_j R2[X2[j]]) → R1[Z1] ⇋ R2[Z2]` (or, more generally,
//! with any similarity operator in the conclusion).  The premise compares
//! attribute pairs of the two relations with *given* similarity metrics; the
//! conclusion asserts that the tuples' `Z1`/`Z2` projections refer to the
//! same real-world entity (`⇋`) — a relation that is not computable from the
//! data but is to be *inferred* by generic reasoning (Section 3.3).

use crate::similarity::SimilarityOp;
use dq_relation::{DqError, DqResult, RelationInstance, RelationSchema, TupleId};
use std::fmt;
use std::sync::Arc;

/// The operator of an MD conclusion: either the matching operator `⇋` or an
/// ordinary similarity operator.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchOp {
    /// The matching operator `⇋` ("refer to the same real-world object").
    Matching,
    /// An ordinary similarity operator.
    Similarity(SimilarityOp),
}

impl MatchOp {
    /// Plain equality premise/conclusion operator.
    pub fn eq() -> Self {
        MatchOp::Similarity(SimilarityOp::Equality)
    }

    /// Edit-distance similarity operator `≈_d` with the given threshold.
    pub fn edit(max_distance: usize) -> Self {
        MatchOp::Similarity(SimilarityOp::edit(max_distance))
    }

    /// The matching operator `⇋`.
    pub fn matching() -> Self {
        MatchOp::Matching
    }
}

impl From<SimilarityOp> for MatchOp {
    fn from(op: SimilarityOp) -> Self {
        MatchOp::Similarity(op)
    }
}

impl fmt::Display for MatchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchOp::Matching => write!(f, "⇋"),
            MatchOp::Similarity(op) => write!(f, "{op}"),
        }
    }
}

/// One conjunct of an MD premise: `R1[attr1] ≈ R2[attr2]` (where `≈` may be
/// any operator of `Θ`, including the matching operator `⇋` — the paper's
/// φ2 and φ3 use `⇋` in their premises).
#[derive(Clone, Debug, PartialEq)]
pub struct MdPremise {
    /// Attribute position in `R1`.
    pub left: usize,
    /// Attribute position in `R2`.
    pub right: usize,
    /// The operator used for the comparison.
    pub op: MatchOp,
}

/// A matching dependency over `(R1, R2)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchingDependency {
    lhs_schema: Arc<RelationSchema>,
    rhs_schema: Arc<RelationSchema>,
    premises: Vec<MdPremise>,
    /// Conclusion attribute list in `R1`.
    conclusion_left: Vec<usize>,
    /// Conclusion attribute list in `R2`.
    conclusion_right: Vec<usize>,
    conclusion_op: MatchOp,
}

impl MatchingDependency {
    /// Creates an MD from attribute names.
    ///
    /// `premises` lists `(R1 attribute, R2 attribute, operator)` conjuncts;
    /// the conclusion relates `conclusion_left` (in `R1`) with
    /// `conclusion_right` (in `R2`) under `conclusion_op`.
    pub fn new(
        lhs_schema: &Arc<RelationSchema>,
        rhs_schema: &Arc<RelationSchema>,
        premises: Vec<(&str, &str, MatchOp)>,
        conclusion_left: &[&str],
        conclusion_right: &[&str],
        conclusion_op: MatchOp,
    ) -> DqResult<Self> {
        if conclusion_left.len() != conclusion_right.len() {
            return Err(DqError::MalformedDependency {
                reason: "MD conclusion lists have different lengths".into(),
            });
        }
        if premises.is_empty() {
            return Err(DqError::MalformedDependency {
                reason: "MD with an empty premise".into(),
            });
        }
        let premises = premises
            .into_iter()
            .map(|(l, r, op)| {
                Ok(MdPremise {
                    left: lhs_schema.require_attr(l)?,
                    right: rhs_schema.require_attr(r)?,
                    op,
                })
            })
            .collect::<DqResult<Vec<_>>>()?;
        // Compatibility of the compared attribute pairs (Section 3.2).
        for p in &premises {
            let dl = lhs_schema.domain(p.left);
            let dr = rhs_schema.domain(p.right);
            if !dl.compatible_with(dr) {
                return Err(DqError::MalformedDependency {
                    reason: format!(
                        "incompatible attribute pair ({}, {}) in MD premise",
                        lhs_schema.attr_name(p.left),
                        rhs_schema.attr_name(p.right)
                    ),
                });
            }
        }
        Ok(MatchingDependency {
            lhs_schema: Arc::clone(lhs_schema),
            rhs_schema: Arc::clone(rhs_schema),
            premises,
            conclusion_left: conclusion_left
                .iter()
                .map(|a| lhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            conclusion_right: conclusion_right
                .iter()
                .map(|a| rhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            conclusion_op,
        })
    }

    /// Schema of the first relation.
    pub fn lhs_schema(&self) -> &Arc<RelationSchema> {
        &self.lhs_schema
    }

    /// Schema of the second relation.
    pub fn rhs_schema(&self) -> &Arc<RelationSchema> {
        &self.rhs_schema
    }

    /// Premise conjuncts.
    pub fn premises(&self) -> &[MdPremise] {
        &self.premises
    }

    /// Conclusion attribute list in `R1`.
    pub fn conclusion_left(&self) -> &[usize] {
        &self.conclusion_left
    }

    /// Conclusion attribute list in `R2`.
    pub fn conclusion_right(&self) -> &[usize] {
        &self.conclusion_right
    }

    /// Conclusion operator.
    pub fn conclusion_op(&self) -> &MatchOp {
        &self.conclusion_op
    }

    /// Number of premise conjuncts (the *length* of a relative key).
    pub fn length(&self) -> usize {
        self.premises.len()
    }

    /// Is this a *relative key* (Section 3.2): the matching operator appears
    /// in the conclusion but never in the premise?
    pub fn is_relative_key(&self) -> bool {
        matches!(self.conclusion_op, MatchOp::Matching)
            && self
                .premises
                .iter()
                .all(|p| !matches!(p.op, MatchOp::Matching))
    }

    /// Does the premise hold for a concrete pair of tuples?
    ///
    /// Similarity premises are evaluated with their metric; a `⇋` premise is
    /// evaluated under the *minimal* interpretation of the matching operator
    /// (value equality), since `⇋` is not computable from the data
    /// (Section 3.3).  Relative keys — the rules the matcher actually uses —
    /// have no `⇋` premises, so this convention never affects them.
    pub fn premise_holds(&self, t1: &dq_relation::Tuple, t2: &dq_relation::Tuple) -> bool {
        self.premises.iter().all(|p| match &p.op {
            MatchOp::Similarity(op) => op.related(t1.get(p.left), t2.get(p.right)),
            MatchOp::Matching => t1.get(p.left) == t2.get(p.right),
        })
    }

    /// Checks the MD over a pair of instances, interpreting the matching
    /// operator with the supplied oracle (e.g. a ground-truth "same entity"
    /// relation).  Returns the pairs for which the premise holds but the
    /// conclusion fails.
    pub fn violations_with(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        matches: &dyn Fn(TupleId, TupleId) -> bool,
    ) -> Vec<(TupleId, TupleId)> {
        let mut out = Vec::new();
        for (id1, t1) in d1.iter() {
            for (id2, t2) in d2.iter() {
                if !self.premise_holds(t1, t2) {
                    continue;
                }
                let ok = match &self.conclusion_op {
                    MatchOp::Matching => matches(id1, id2),
                    MatchOp::Similarity(op) => self
                        .conclusion_left
                        .iter()
                        .zip(&self.conclusion_right)
                        .all(|(&a, &b)| op.related(t1.get(a), t2.get(b))),
                };
                if !ok {
                    out.push((id1, id2));
                }
            }
        }
        out
    }

    /// Does the MD hold over the pair of instances under the supplied
    /// interpretation of `⇋`?
    pub fn holds_with(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        matches: &dyn Fn(TupleId, TupleId) -> bool,
    ) -> bool {
        self.violations_with(d1, d2, matches).is_empty()
    }

    /// [`MatchingDependency::violations_with`] through an interned
    /// [`MatchingEngine`](crate::engine::MatchingEngine): the premise runs
    /// blocked and parallel over the dictionaries, the conclusion (oracle
    /// or similarity) is checked only on premise-satisfying pairs.  Output
    /// is byte-identical — same pairs, same ascending order.
    pub fn violations_with_pool(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        matches: &(dyn Fn(TupleId, TupleId) -> bool + Sync),
        engine: &crate::engine::MatchingEngine,
    ) -> Vec<(TupleId, TupleId)> {
        engine.md_violations(self, d1, d2, matches)
    }

    /// [`MatchingDependency::holds_with`] through an interned engine.
    pub fn holds_with_pool(
        &self,
        d1: &RelationInstance,
        d2: &RelationInstance,
        matches: &(dyn Fn(TupleId, TupleId) -> bool + Sync),
        engine: &crate::engine::MatchingEngine,
    ) -> bool {
        self.violations_with_pool(d1, d2, matches, engine)
            .is_empty()
    }
}

impl fmt::Display for MatchingDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.premises.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(
                f,
                "{}[{}] {} {}[{}]",
                self.lhs_schema.name(),
                self.lhs_schema.attr_name(p.left),
                p.op,
                self.rhs_schema.name(),
                self.rhs_schema.attr_name(p.right)
            )?;
        }
        let names = |schema: &RelationSchema, attrs: &[usize]| {
            attrs
                .iter()
                .map(|&a| schema.attr_name(a).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            " → {}[{}] {} {}[{}]",
            self.lhs_schema.name(),
            names(&self.lhs_schema, &self.conclusion_left),
            self.conclusion_op,
            self.rhs_schema.name(),
            names(&self.rhs_schema, &self.conclusion_right)
        )
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use dq_relation::Domain;

    /// The `card` schema of Section 3.1.
    pub fn card_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "card",
            [
                ("c#", Domain::Text),
                ("SSN", Domain::Text),
                ("FN", Domain::Text),
                ("LN", Domain::Text),
                ("addr", Domain::Text),
                ("tel", Domain::Text),
                ("email", Domain::Text),
                ("type", Domain::Text),
            ],
        ))
    }

    /// The `billing` schema of Section 3.1.
    pub fn billing_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "billing",
            [
                ("c#", Domain::Text),
                ("FN", Domain::Text),
                ("SN", Domain::Text),
                ("post", Domain::Text),
                ("phn", Domain::Text),
                ("email", Domain::Text),
                ("item", Domain::Text),
                ("price", Domain::Real),
            ],
        ))
    }

    /// The MDs φ1–φ4 of Example 3.1 (with `≈_d` instantiated as edit
    /// distance ≤ 3).
    pub fn example_3_1(
        card: &Arc<RelationSchema>,
        billing: &Arc<RelationSchema>,
    ) -> Vec<MatchingDependency> {
        let yc = ["FN", "LN", "addr", "tel", "email"];
        let yb = ["FN", "SN", "post", "phn", "email"];
        vec![
            MatchingDependency::new(
                card,
                billing,
                vec![("tel", "phn", MatchOp::eq())],
                &["addr"],
                &["post"],
                MatchOp::Matching,
            )
            .unwrap(),
            MatchingDependency::new(
                card,
                billing,
                vec![("email", "email", MatchOp::matching())],
                &["FN", "LN"],
                &["FN", "SN"],
                MatchOp::Matching,
            )
            .unwrap(),
            MatchingDependency::new(
                card,
                billing,
                vec![
                    ("LN", "SN", MatchOp::matching()),
                    ("addr", "post", MatchOp::matching()),
                    ("FN", "FN", MatchOp::matching()),
                ],
                &yc,
                &yb,
                MatchOp::Matching,
            )
            .unwrap(),
            MatchingDependency::new(
                card,
                billing,
                vec![
                    ("LN", "SN", MatchOp::matching()),
                    ("addr", "post", MatchOp::matching()),
                    ("FN", "FN", MatchOp::edit(3)),
                ],
                &yc,
                &yb,
                MatchOp::Matching,
            )
            .unwrap(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use dq_relation::Value;

    fn card_tuple(fn_: &str, ln: &str, addr: &str, tel: &str, email: &str) -> Vec<Value> {
        vec![
            Value::str("c1"),
            Value::str("ssn"),
            Value::str(fn_),
            Value::str(ln),
            Value::str(addr),
            Value::str(tel),
            Value::str(email),
            Value::str("visa"),
        ]
    }

    fn billing_tuple(fn_: &str, sn: &str, post: &str, phn: &str, email: &str) -> Vec<Value> {
        vec![
            Value::str("c1"),
            Value::str(fn_),
            Value::str(sn),
            Value::str(post),
            Value::str(phn),
            Value::str(email),
            Value::str("laptop"),
            Value::real(999.0),
        ]
    }

    #[test]
    fn example_3_1_mds_are_well_formed_relative_keys_or_not() {
        let card = card_schema();
        let billing = billing_schema();
        let mds = example_3_1(&card, &billing);
        assert_eq!(mds.len(), 4);
        // φ1 is a relative key (no ⇋ in its premise); φ2–φ4 use ⇋ premises.
        assert!(mds[0].is_relative_key());
        assert!(!mds[1].is_relative_key());
        assert!(!mds[2].is_relative_key());
        assert!(!mds[3].is_relative_key());
        assert_eq!(mds[3].length(), 3);
        assert!(mds[3].to_string().contains("⇋"));
    }

    #[test]
    fn premise_evaluation_uses_the_declared_operators() {
        let card = card_schema();
        let billing = billing_schema();
        let mds = example_3_1(&card, &billing);
        let t_card = dq_relation::Tuple::new(card_tuple(
            "John",
            "Smith",
            "10 Main St",
            "555-1234",
            "js@x.org",
        ));
        // Same person, first name abbreviated: φ4's edit-distance premise
        // tolerates it, φ3's equality premise does not.
        let t_bill = dq_relation::Tuple::new(billing_tuple(
            "Jon",
            "Smith",
            "10 Main St",
            "555-9999",
            "js@y.org",
        ));
        assert!(!mds[2].premise_holds(&t_card, &t_bill));
        assert!(mds[3].premise_holds(&t_card, &t_bill));
        // φ1 requires identical phone numbers.
        assert!(!mds[0].premise_holds(&t_card, &t_bill));
    }

    #[test]
    fn violations_with_a_ground_truth_oracle() {
        let card = card_schema();
        let billing = billing_schema();
        let md = &example_3_1(&card, &billing)[3];
        let mut d1 = RelationInstance::new(card.clone());
        let mut d2 = RelationInstance::new(billing.clone());
        d1.insert(dq_relation::Tuple::new(card_tuple(
            "John",
            "Smith",
            "10 Main St",
            "555-1234",
            "js@x.org",
        )))
        .unwrap();
        d2.insert(dq_relation::Tuple::new(billing_tuple(
            "Jon",
            "Smith",
            "10 Main St",
            "555-1234",
            "js@x.org",
        )))
        .unwrap();
        // Oracle that says they do match: the MD holds.
        assert!(md.holds_with(&d1, &d2, &|_, _| true));
        // Oracle that denies the match: the premise still fires, so the MD is
        // violated.
        let v = md.violations_with(&d1, &d2, &|_, _| false);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn similarity_conclusions_are_checked_on_the_data() {
        let card = card_schema();
        let billing = billing_schema();
        // If the phones are equal then the emails must be edit-similar.
        let md = MatchingDependency::new(
            &card,
            &billing,
            vec![("tel", "phn", MatchOp::eq())],
            &["email"],
            &["email"],
            MatchOp::Similarity(SimilarityOp::edit(3)),
        )
        .unwrap();
        let mut d1 = RelationInstance::new(card.clone());
        let mut d2 = RelationInstance::new(billing.clone());
        d1.insert(dq_relation::Tuple::new(card_tuple(
            "John", "Smith", "x", "555", "js@x.org",
        )))
        .unwrap();
        d2.insert(dq_relation::Tuple::new(billing_tuple(
            "John",
            "Smith",
            "x",
            "555",
            "totally@different.com",
        )))
        .unwrap();
        assert!(!md.holds_with(&d1, &d2, &|_, _| false));
        let mut d2b = RelationInstance::new(billing.clone());
        d2b.insert(dq_relation::Tuple::new(billing_tuple(
            "John", "Smith", "x", "555", "js@x.com",
        )))
        .unwrap();
        assert!(md.holds_with(&d1, &d2b, &|_, _| false));
    }

    #[test]
    fn malformed_mds_are_rejected() {
        let card = card_schema();
        let billing = billing_schema();
        // Unknown attribute.
        assert!(MatchingDependency::new(
            &card,
            &billing,
            vec![("nope", "phn", MatchOp::eq())],
            &["addr"],
            &["post"],
            MatchOp::Matching,
        )
        .is_err());
        // Mismatched conclusion lengths.
        assert!(MatchingDependency::new(
            &card,
            &billing,
            vec![("tel", "phn", MatchOp::eq())],
            &["addr", "tel"],
            &["post"],
            MatchOp::Matching,
        )
        .is_err());
        // Empty premise.
        assert!(MatchingDependency::new(
            &card,
            &billing,
            vec![],
            &["addr"],
            &["post"],
            MatchOp::Matching,
        )
        .is_err());
        // Incompatible attribute pair (text vs real).
        assert!(MatchingDependency::new(
            &card,
            &billing,
            vec![("tel", "price", MatchOp::eq())],
            &["addr"],
            &["post"],
            MatchOp::Matching,
        )
        .is_err());
    }
}
