//! Relative keys and relative candidate keys (RCKs), Section 3.2–3.3.
//!
//! A *key relative to* `(Y1, Y2)` is an MD whose premise uses only similarity
//! operators (no `⇋`) and whose conclusion is `R1[Y1] ⇋ R2[Y2]`.  Keys are
//! ordered by `≤` (fewer / looser comparisons first); a key is a *relative
//! candidate key* when no strictly smaller key relative to the same `(Y1,
//! Y2)` exists.  RCKs are the deliverable of MD reasoning: derived RCKs are
//! used directly as matching rules by the object-identification engine
//! (`crate::matcher`), and the paper reports that derived RCKs improve both
//! the quality and the efficiency of matching (Section 4.2).

use crate::infer::md_implies;
use crate::md::{MatchOp, MatchingDependency};
use crate::similarity::SimilarityOp;
use dq_relation::{DqResult, RelationSchema};
use std::sync::Arc;

/// A key relative to a pair of attribute lists `(Y1, Y2)`, written
/// `(X1, X2 ‖ C)` in the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct RelativeKey {
    md: MatchingDependency,
}

impl RelativeKey {
    /// Creates a relative key from premise attribute pairs with their
    /// similarity operators and the target `(Y1, Y2)` lists.
    pub fn new(
        lhs_schema: &Arc<RelationSchema>,
        rhs_schema: &Arc<RelationSchema>,
        comparisons: Vec<(&str, &str, SimilarityOp)>,
        target_left: &[&str],
        target_right: &[&str],
    ) -> DqResult<Self> {
        let premises = comparisons
            .into_iter()
            .map(|(l, r, op)| (l, r, MatchOp::Similarity(op)))
            .collect();
        let md = MatchingDependency::new(
            lhs_schema,
            rhs_schema,
            premises,
            target_left,
            target_right,
            MatchOp::Matching,
        )?;
        Ok(RelativeKey { md })
    }

    /// Wraps an MD that already is a relative key.
    pub fn from_md(md: MatchingDependency) -> Option<Self> {
        md.is_relative_key().then_some(RelativeKey { md })
    }

    /// The underlying MD.
    pub fn md(&self) -> &MatchingDependency {
        &self.md
    }

    /// The key's length (number of comparisons).
    pub fn length(&self) -> usize {
        self.md.length()
    }

    /// The ordering `self ≤ other` of Section 3.3: every comparison of
    /// `self` appears in `other` over the same attribute pair with an
    /// operator whose relation is *contained* in `self`'s (i.e. `other`
    /// demands at least as much), and `self` is no longer than `other`.
    pub fn le(&self, other: &RelativeKey) -> bool {
        if self.length() > other.length() {
            return false;
        }
        self.md.premises().iter().all(|p| {
            other.md.premises().iter().any(|q| {
                p.left == q.left
                    && p.right == q.right
                    && match (&q.op, &p.op) {
                        (MatchOp::Similarity(qop), MatchOp::Similarity(pop)) => {
                            qop.contained_in(pop)
                        }
                        _ => false,
                    }
            })
        })
    }

    /// Strict ordering `self < other`.
    pub fn lt(&self, other: &RelativeKey) -> bool {
        self.le(other) && !other.le(self)
    }
}

impl std::fmt::Display for RelativeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.md)
    }
}

/// A candidate comparison for RCK derivation: an attribute pair plus the
/// similarity operators the deployment knows how to evaluate on it.
#[derive(Clone, Debug)]
pub struct ComparisonSpace {
    /// Attribute name in `R1`.
    pub left: String,
    /// Attribute name in `R2`.
    pub right: String,
    /// Candidate operators, typically ordered from strict (equality) to
    /// loose (high-threshold similarity).
    pub operators: Vec<SimilarityOp>,
}

impl ComparisonSpace {
    /// Creates a comparison space entry.
    pub fn new(
        left: impl Into<String>,
        right: impl Into<String>,
        operators: Vec<SimilarityOp>,
    ) -> Self {
        ComparisonSpace {
            left: left.into(),
            right: right.into(),
            operators,
        }
    }
}

/// Derives relative candidate keys for `(target_left, target_right)` from a
/// set of MDs, by enumerating candidate keys over the given comparison space
/// in order of increasing length and keeping those that are implied
/// (`Σ ⊨_m key`) and minimal w.r.t. `<`.
///
/// The enumeration is exponential in `max_length` (as candidate-key discovery
/// always is); the comparison space is small in practice — it lists only the
/// attribute pairs a deployment can actually compare.
pub fn derive_rcks(
    sigma: &[MatchingDependency],
    lhs_schema: &Arc<RelationSchema>,
    rhs_schema: &Arc<RelationSchema>,
    space: &[ComparisonSpace],
    target_left: &[&str],
    target_right: &[&str],
    max_length: usize,
) -> Vec<RelativeKey> {
    let mut found: Vec<RelativeKey> = Vec::new();
    // Enumerate subsets of the comparison space by increasing size.
    let n = space.len();
    let mut subsets: Vec<Vec<usize>> = (1u32..(1 << n))
        .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect::<Vec<_>>())
        .filter(|s| s.len() <= max_length)
        .collect();
    subsets.sort_by_key(|s| s.len());
    for subset in subsets {
        // For each position choose each candidate operator (cartesian
        // product over small operator lists).
        let mut choices: Vec<Vec<&SimilarityOp>> = vec![Vec::new()];
        for &i in &subset {
            let mut next = Vec::new();
            for prefix in &choices {
                for op in &space[i].operators {
                    let mut extended = prefix.clone();
                    extended.push(op);
                    next.push(extended);
                }
            }
            choices = next;
        }
        for ops in choices {
            let comparisons: Vec<(&str, &str, SimilarityOp)> = subset
                .iter()
                .zip(&ops)
                .map(|(&i, op)| {
                    (
                        space[i].left.as_str(),
                        space[i].right.as_str(),
                        (*op).clone(),
                    )
                })
                .collect();
            let Ok(key) = RelativeKey::new(
                lhs_schema,
                rhs_schema,
                comparisons,
                target_left,
                target_right,
            ) else {
                continue;
            };
            if !md_implies(sigma, key.md()) {
                continue;
            }
            // Minimality: discard if a strictly smaller key is already known;
            // drop known keys that are strictly larger than the new one.
            if found.iter().any(|existing| existing.lt(&key)) {
                continue;
            }
            found.retain(|existing| !key.lt(existing));
            if !found.contains(&key) {
                found.push(key);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::md::fixtures::{billing_schema, card_schema, example_3_1};

    const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
    const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

    fn space() -> Vec<ComparisonSpace> {
        vec![
            ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
            ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
            ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
            ComparisonSpace::new("tel", "phn", vec![SimilarityOp::Equality]),
            ComparisonSpace::new(
                "FN",
                "FN",
                vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
            ),
        ]
    }

    #[test]
    fn example_3_2_keys_are_relative_keys() {
        let card = card_schema();
        let billing = billing_schema();
        let rck2 = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("LN", "SN", SimilarityOp::Equality),
                ("tel", "phn", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::edit(3)),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        assert!(rck2.md().is_relative_key());
        assert_eq!(rck2.length(), 3);
        assert!(rck2.to_string().contains("⇋"));
    }

    #[test]
    fn key_ordering_prefers_shorter_and_looser_keys() {
        let card = card_schema();
        let billing = billing_schema();
        let two = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        let three = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
                ("LN", "SN", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        assert!(two.le(&three));
        assert!(two.lt(&three));
        assert!(!three.le(&two));
        // A key with a looser operator on the same pair is smaller: requiring
        // edit-distance similarity is less demanding than requiring equality.
        let loose = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
                ("LN", "SN", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::edit(3)),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        let strict = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
                ("LN", "SN", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        assert!(loose.le(&strict));
        assert!(!strict.le(&loose));
    }

    #[test]
    fn derived_rcks_include_the_paper_rules() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        let rcks = derive_rcks(&sigma, &card, &billing, &space(), &YC, &YB, 3);
        assert!(!rcks.is_empty());
        // rck1 = ([email, addr], [email, post] ‖ [=, =]) must be among them.
        let rck1 = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        assert!(rcks.contains(&rck1));
        // Every derived key is implied and is a relative key.
        for key in &rcks {
            assert!(key.md().is_relative_key());
            assert!(md_implies(&sigma, key.md()));
        }
        // Minimality: no derived key is strictly smaller than another.
        for a in &rcks {
            for b in &rcks {
                if a != b {
                    assert!(!a.lt(b), "derived key {a} is strictly smaller than {b}");
                }
            }
        }
        // rck3 (with the edit-distance comparison) is derived too; the
        // enumeration lists its comparisons in comparison-space order.
        let rck3 = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("addr", "post", SimilarityOp::Equality),
                ("LN", "SN", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::edit(3)),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        assert!(rcks.contains(&rck3));
    }

    #[test]
    fn derivation_respects_the_length_bound() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        let rcks = derive_rcks(&sigma, &card, &billing, &space(), &YC, &YB, 2);
        for key in &rcks {
            assert!(key.length() <= 2);
        }
    }

    #[test]
    fn non_relative_key_mds_are_rejected_by_from_md() {
        let card = card_schema();
        let billing = billing_schema();
        let sigma = example_3_1(&card, &billing);
        // φ2 has a ⇋ premise, so it is not a relative key.
        assert!(RelativeKey::from_md(sigma[1].clone()).is_none());
        assert!(RelativeKey::from_md(sigma[0].clone()).is_some());
    }
}
