//! # dq-match
//!
//! Matching dependencies and dependency-based object identification
//! (Sections 3 and 4.2 of Fan, PODS 2008).
//!
//! * [`similarity`] — the domain-specific similarity operators of `Θ`
//!   (edit distance, Jaro, Jaro–Winkler, q-grams, thresholds, containment);
//! * [`md`] — matching dependencies over pairs of relations, with similarity
//!   or `⇋` premises and conclusions;
//! * [`infer`] — the sound-and-complete inference closure and the PTIME
//!   implication algorithm (Theorem 4.8);
//! * [`rck`] — relative keys, the `≤` ordering, relative candidate keys and
//!   their derivation from MD sets;
//! * [`matcher`] — the object-identification engine that executes (derived)
//!   RCKs as matching rules, with blocking, comparison counting and
//!   precision/recall scoring;
//! * [`simcache`] — dictionary-level similarity artifacts: cached display
//!   forms, cross-dictionary equality translation and a lock-striped memo
//!   cache of similarity verdicts keyed by value-id pairs;
//! * [`block`] — candidate generation over the dictionaries (q-gram
//!   inverted index, length windows, sorted neighborhood);
//! * [`engine`] — the interned matching engine: blocked, parallel rule and
//!   MD evaluation over the columnar store, byte-identical to the naive
//!   paths.

pub mod block;
pub mod engine;
pub mod infer;
pub mod matcher;
pub mod md;
pub mod paper;
pub mod rck;
pub mod simcache;
pub mod similarity;

/// Frequently used items.
pub mod prelude {
    pub use crate::engine::{MatchingEngine, MatchingEngineStats};
    pub use crate::infer::{
        close, derivable_matches, md_implies, md_minimal_cover, Fact, FactBase,
    };
    pub use crate::matcher::{score, MatchClusters, MatchQuality, MatchResult, Matcher};
    pub use crate::md::{MatchOp, MatchingDependency, MdPremise};
    pub use crate::paper::example_3_1_mds;
    pub use crate::rck::{derive_rcks, ComparisonSpace, RelativeKey};
    pub use crate::simcache::{
        DisplayColumn, EqTranslation, SimilarityCache, SimilarityCacheStats,
    };
    pub use crate::similarity::{
        jaro, jaro_winkler, normalized_edit_similarity, qgram_similarity, SimilarityKernel,
        SimilarityOp,
    };
}

pub use prelude::*;
