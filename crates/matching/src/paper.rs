//! The matching rules of the paper's fraud-detection example (Section 3.1,
//! Example 3.1), as reusable constructors.
//!
//! The MDs are built against any pair of schemas that carry the attribute
//! names of the `card` / `billing` sources (`FN`, `LN`/`SN`, `addr`/`post`,
//! `tel`/`phn`, `email`), e.g. the schemas produced by `dq-gen`.

use crate::md::{MatchOp, MatchingDependency};
use dq_relation::RelationSchema;
use std::sync::Arc;

/// The comparison vectors `Yc` / `Yb` of Section 3.1.
pub const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
/// See [`YC`].
pub const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

/// The MDs φ1–φ4 of Example 3.1, with `≈_d` instantiated as edit distance
/// at most 3 (enough to relate "John" and "J.").
pub fn example_3_1_mds(
    card: &Arc<RelationSchema>,
    billing: &Arc<RelationSchema>,
) -> Vec<MatchingDependency> {
    vec![
        // φ1: card[tel] = billing[phn] → card[addr] ⇋ billing[post]
        MatchingDependency::new(
            card,
            billing,
            vec![("tel", "phn", MatchOp::eq())],
            &["addr"],
            &["post"],
            MatchOp::Matching,
        )
        .expect("φ1 is well-formed"),
        // φ2: card[email] ⇋ billing[email] → card[FN, LN] ⇋ billing[FN, SN]
        MatchingDependency::new(
            card,
            billing,
            vec![("email", "email", MatchOp::matching())],
            &["FN", "LN"],
            &["FN", "SN"],
            MatchOp::Matching,
        )
        .expect("φ2 is well-formed"),
        // φ3: LN ⇋ SN ∧ addr ⇋ post ∧ FN ⇋ FN → Yc ⇋ Yb
        MatchingDependency::new(
            card,
            billing,
            vec![
                ("LN", "SN", MatchOp::matching()),
                ("addr", "post", MatchOp::matching()),
                ("FN", "FN", MatchOp::matching()),
            ],
            &YC,
            &YB,
            MatchOp::Matching,
        )
        .expect("φ3 is well-formed"),
        // φ4: LN ⇋ SN ∧ addr ⇋ post ∧ FN ≈d FN → Yc ⇋ Yb
        MatchingDependency::new(
            card,
            billing,
            vec![
                ("LN", "SN", MatchOp::matching()),
                ("addr", "post", MatchOp::matching()),
                ("FN", "FN", MatchOp::edit(3)),
            ],
            &YC,
            &YB,
            MatchOp::Matching,
        )
        .expect("φ4 is well-formed"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::md_implies;
    use crate::rck::RelativeKey;
    use crate::similarity::SimilarityOp;
    use dq_relation::Domain;

    fn schemas() -> (Arc<RelationSchema>, Arc<RelationSchema>) {
        let card = Arc::new(RelationSchema::new(
            "card",
            [
                ("c#", Domain::Text),
                ("SSN", Domain::Text),
                ("FN", Domain::Text),
                ("LN", Domain::Text),
                ("addr", Domain::Text),
                ("tel", Domain::Text),
                ("email", Domain::Text),
                ("type", Domain::Text),
            ],
        ));
        let billing = Arc::new(RelationSchema::new(
            "billing",
            [
                ("c#", Domain::Text),
                ("FN", Domain::Text),
                ("SN", Domain::Text),
                ("post", Domain::Text),
                ("phn", Domain::Text),
                ("email", Domain::Text),
                ("item", Domain::Text),
                ("price", Domain::Real),
            ],
        ));
        (card, billing)
    }

    #[test]
    fn the_public_constructor_matches_example_4_3() {
        let (card, billing) = schemas();
        let sigma = example_3_1_mds(&card, &billing);
        assert_eq!(sigma.len(), 4);
        let rck1 = RelativeKey::new(
            &card,
            &billing,
            vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
            ],
            &YC,
            &YB,
        )
        .unwrap();
        assert!(md_implies(&sigma, rck1.md()));
    }
}
