//! The customer scenario of Figures 1–2, plus a scalable synthetic generator
//! with controllable error rate.
//!
//! The generator produces data that is clean by construction with respect to
//! the paper's CFDs (ϕ1–ϕ3), then injects errors of exactly the two classes
//! the paper discusses: pattern-constant errors (a UK/131 tuple whose city is
//! not `EDI`) and FD-style conflicts (two tuples sharing `[CC, zip]` but
//! disagreeing on `street`).  Because every injected error is recorded, the
//! repair benchmarks can score precision and recall against ground truth.

use dq_core::{cst, wild, Cfd, Fd, PatternTuple};
use dq_relation::{Domain, RelationInstance, RelationSchema, Value, ValueInterner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The customer schema of Fig. 1.
pub fn customer_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "customer",
        [
            ("CC", Domain::Int),
            ("AC", Domain::Int),
            ("phn", Domain::Int),
            ("name", Domain::Text),
            ("street", Domain::Text),
            ("city", Domain::Text),
            ("zip", Domain::Text),
        ],
    ))
}

/// The instance `D0` of Fig. 1 (three tuples, every one of them dirty with
/// respect to the CFDs of Fig. 2).
pub fn paper_instance() -> RelationInstance {
    let mut inst = RelationInstance::new(customer_schema());
    for (cc, ac, phn, name, street, city, zip) in [
        (44, 131, 1234567, "Mike", "Mayfield", "NYC", "EH4 8LE"),
        (44, 131, 3456789, "Rick", "Crichton", "NYC", "EH4 8LE"),
        (1, 908, 3456789, "Joe", "Mtn Ave", "NYC", "07974"),
    ] {
        inst.insert_values([
            Value::int(cc),
            Value::int(ac),
            Value::int(phn),
            Value::str(name),
            Value::str(street),
            Value::str(city),
            Value::str(zip),
        ])
        .expect("paper tuple fits the schema");
    }
    inst
}

/// The traditional FDs `f1`, `f2` of Section 2.1.
pub fn paper_fds() -> Vec<Fd> {
    let s = customer_schema();
    vec![
        Fd::new(&s, &["CC", "AC", "phn"], &["street", "city", "zip"]),
        Fd::new(&s, &["CC", "AC"], &["city"]),
    ]
}

/// The CFDs ϕ1–ϕ3 of Fig. 2.
pub fn paper_cfds() -> Vec<Cfd> {
    let s = customer_schema();
    vec![
        Cfd::new(
            &s,
            &["CC", "zip"],
            &["street"],
            vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
        )
        .expect("ϕ1 is well-formed"),
        Cfd::new(
            &s,
            &["CC", "AC", "phn"],
            &["street", "city", "zip"],
            vec![
                PatternTuple::all_wildcards(3, 3),
                PatternTuple::new(
                    vec![cst(44), cst(131), wild()],
                    vec![wild(), cst("EDI"), wild()],
                ),
                PatternTuple::new(
                    vec![cst(1), cst(908), wild()],
                    vec![wild(), cst("MH"), wild()],
                ),
            ],
        )
        .expect("ϕ2 is well-formed"),
        Cfd::new(
            &s,
            &["CC", "AC"],
            &["city"],
            vec![PatternTuple::all_wildcards(2, 1)],
        )
        .expect("ϕ3 is well-formed"),
    ]
}

/// Configuration of the synthetic customer workload.
#[derive(Clone, Debug)]
pub struct CustomerConfig {
    /// Number of tuples.
    pub tuples: usize,
    /// Fraction of tuples that receive an injected error (the 1%–5% range
    /// reported in the paper's introduction is the realistic regime).
    pub error_rate: f64,
    /// RNG seed (generation is deterministic for a fixed seed).
    pub seed: u64,
    /// Number of distinct `(AC, city)` pairs per country.  The default `3`
    /// keeps the paper's fixed city lists; larger pools bound the size of
    /// the `[CC, AC]` hash groups, so that on multi-million-tuple instances
    /// the number of ϕ3 pair violations stays proportional to the injected
    /// error count instead of `errors × group size` blowing up
    /// quadratically.  Values beyond the fixed lists synthesize cities
    /// (`UK-C7`/`US-C7`, area codes from disjoint pools).
    pub cities_per_country: usize,
}

impl Default for CustomerConfig {
    fn default() -> Self {
        CustomerConfig {
            tuples: 1_000,
            error_rate: 0.05,
            seed: 42,
            cities_per_country: 3,
        }
    }
}

/// A generated workload: the clean instance, the dirty instance (with errors
/// injected), and the list of corrupted cells.
#[derive(Clone, Debug)]
pub struct CustomerWorkload {
    /// Ground-truth clean instance (satisfies every CFD of [`paper_cfds`]).
    pub clean: RelationInstance,
    /// The instance with injected errors.
    pub dirty: RelationInstance,
    /// Cells that were corrupted: `(tuple index, attribute index)`.
    pub corrupted_cells: Vec<(usize, usize)>,
}

const UK_CITIES: [(&str, i64); 3] = [("EDI", 131), ("GLA", 141), ("LDN", 20)];
const US_CITIES: [(&str, i64); 3] = [("MH", 908), ("NYC", 212), ("SF", 415)];

/// Generates a customer workload.
///
/// Clean data is built so that the CFDs of Fig. 2 hold: `zip → street` within
/// the UK, phone → address everywhere, and the `(44, 131) → EDI` /
/// `(01, 908) → MH` constants.  Errors then perturb either a `city` (breaking
/// the constant patterns) or a `street` (breaking `ϕ1`'s FD part).
///
/// Repeated strings (cities, and the street/zip pools, which recur roughly
/// four times each) are canonicalized through a [`ValueInterner`], so every
/// occurrence of a string shares one allocation — the instance is
/// dictionary-compressed at build time and string equality hits the
/// pointer-equality fast path.
pub fn generate_customers(config: &CustomerConfig) -> CustomerWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = customer_schema();
    let mut strings = ValueInterner::new();
    let mut clean = RelationInstance::new(Arc::clone(&schema));
    let city_pool = config.cities_per_country.max(1);
    for i in 0..config.tuples {
        let uk = rng.gen_bool(0.5);
        let pick = rng.gen_range(0..city_pool);
        let (cc, (city, ac)) = if uk {
            let entry = match UK_CITIES.get(pick) {
                Some(&(name, ac)) => (name.to_string(), ac),
                None => (format!("UK-C{pick}"), 2_000 + pick as i64),
            };
            (44i64, entry)
        } else {
            let entry = match US_CITIES.get(pick) {
                Some(&(name, ac)) => (name.to_string(), ac),
                None => (format!("US-C{pick}"), 5_000 + pick as i64),
            };
            (1i64, entry)
        };
        // A bounded pool of zip codes per country so that zip collisions (and
        // with them ϕ1 violations after corruption) actually happen.
        let zip_id = rng.gen_range(0..(config.tuples / 4).max(1));
        let zip = format!("{}-Z{}", if uk { "UK" } else { "US" }, zip_id);
        // street is a function of the zip (so zip → street holds), phone is
        // unique (so f1 holds).
        let street = format!("{} High Street", zip_id);
        let city = if cc == 44 && ac == 131 {
            "EDI".to_string()
        } else if cc == 1 && ac == 908 {
            "MH".to_string()
        } else {
            city.to_string()
        };
        clean
            .insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(1_000_000 + i as i64),
                Value::str(format!("Customer {i}")),
                strings.canonical(Value::str(street)),
                strings.canonical(Value::str(city)),
                strings.canonical(Value::str(zip)),
            ])
            .expect("generated tuple fits the schema");
    }

    let mut dirty = clean.clone();
    let mut corrupted_cells = Vec::new();
    let street_attr = schema.attr("street");
    let city_attr = schema.attr("city");
    for i in 0..config.tuples {
        if !rng.gen_bool(config.error_rate) {
            continue;
        }
        let id = dq_relation::TupleId(i);
        let attr = if rng.gen_bool(0.5) {
            city_attr
        } else {
            street_attr
        };
        let wrong = if attr == city_attr {
            strings.canonical(Value::str("WRONGCITY"))
        } else {
            strings.canonical(Value::str(format!(
                "Corrupted street {}",
                rng.gen_range(0..1_000)
            )))
        };
        dirty
            .update_cell(dq_relation::instance::CellRef::new(id, attr), wrong)
            .expect("injected typos stay inside the text domain");
        corrupted_cells.push((i, attr));
    }
    CustomerWorkload {
        clean,
        dirty,
        corrupted_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::detect_cfd_violations;

    #[test]
    fn paper_instance_matches_fig_1() {
        let d0 = paper_instance();
        assert_eq!(d0.len(), 3);
        let fds = paper_fds();
        for fd in &fds {
            assert!(fd.holds_on(&d0), "D0 must satisfy the traditional FDs");
        }
        let report = detect_cfd_violations(&d0, &paper_cfds());
        assert_eq!(report.violating_tuples().len(), 3);
    }

    #[test]
    fn generated_clean_data_satisfies_the_cfds() {
        let workload = generate_customers(&CustomerConfig {
            tuples: 400,
            error_rate: 0.0,
            seed: 7,
            ..Default::default()
        });
        let report = detect_cfd_violations(&workload.clean, &paper_cfds());
        assert!(report.is_clean());
        assert!(workload.corrupted_cells.is_empty());
        assert!(workload.clean.same_tuples_as(&workload.dirty));
    }

    #[test]
    fn injected_errors_are_recorded_and_detected() {
        let workload = generate_customers(&CustomerConfig {
            tuples: 500,
            error_rate: 0.1,
            seed: 7,
            ..Default::default()
        });
        assert!(!workload.corrupted_cells.is_empty());
        let report = detect_cfd_violations(&workload.dirty, &paper_cfds());
        assert!(!report.is_clean());
        // Detected dirty tuples are a subset of... at least overlap with the
        // corrupted ones: every detected violation involves some tuple, and
        // with city corruption every corrupted city tuple violates ϕ2 or ϕ3.
        assert!(report.total() > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_customers(&CustomerConfig {
            tuples: 100,
            error_rate: 0.05,
            seed: 1,
            ..Default::default()
        });
        let b = generate_customers(&CustomerConfig {
            tuples: 100,
            error_rate: 0.05,
            seed: 1,
            ..Default::default()
        });
        let c = generate_customers(&CustomerConfig {
            tuples: 100,
            error_rate: 0.05,
            seed: 2,
            ..Default::default()
        });
        assert!(a.dirty.same_tuples_as(&b.dirty));
        assert_eq!(a.corrupted_cells, b.corrupted_cells);
        assert!(!a.dirty.same_tuples_as(&c.dirty) || a.corrupted_cells != c.corrupted_cells);
    }
}
