//! # dq-gen
//!
//! Synthetic workload generators for the three scenarios the paper builds
//! its examples on, with controllable size and error rates and full ground
//! truth, so that detection, repair and matching quality can be measured.
//!
//! * [`customer`] — the customer relation of Fig. 1/2 (CFD experiments);
//! * [`orders`] — the order / book / CD databases of Fig. 3/4 (CIND
//!   experiments);
//! * [`cards`] — the card / billing sources of Section 3.1 (matching
//!   dependency experiments);
//! * [`master`] — a master-data scenario: a clean reference relation plus a
//!   dirty source to be matched against it and corrected from it
//!   (Section 5.1's remark on repairing with master data).

pub mod cards;
pub mod customer;
pub mod master;
pub mod orders;

/// Frequently used items.
pub mod prelude {
    pub use crate::cards::{generate_cards, CardConfig, CardWorkload};
    pub use crate::customer::{
        generate_customers, paper_cfds, paper_fds, paper_instance, CustomerConfig, CustomerWorkload,
    };
    pub use crate::master::{generate_master_workload, MasterConfig, MasterWorkload};
    pub use crate::orders::{
        generate_orders, paper_cinds, paper_database, OrderConfig, OrderWorkload,
    };
}

pub use prelude::*;
