//! Master-data workload: a clean reference relation plus a dirty source that
//! must be matched against it and corrected from it.
//!
//! Section 5.1's closing remark observes that cost-based repairing gives no
//! guidance on *where new values should come from*, and that "a more
//! reasonable way is to conduct repairing based on master data (reference
//! data), whenever available — at the very least this involves object
//! identification to match tuples in the master data and those in the dirty
//! data that refer to the same object".  This generator produces exactly that
//! setting, with full ground truth:
//!
//! * a **master** relation: one clean, CFD-satisfying record per entity;
//! * a **dirty** relation: one record per entity, whose `name` may be a
//!   representation variant (abbreviated or typo'd, so exact joins fail) and
//!   whose address fields may be corrupted;
//! * the true dirty-to-master correspondence and the corrected version of
//!   every dirty tuple, so matching quality and repair quality can both be
//!   scored.

use crate::customer::customer_schema;
use dq_relation::instance::CellRef;
use dq_relation::{RelationInstance, TupleId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of the master-data workload.
#[derive(Clone, Debug)]
pub struct MasterConfig {
    /// Number of entities (master tuples; the dirty relation has one record
    /// per entity as well).
    pub entities: usize,
    /// Probability that a dirty record's address cell (street, city or zip)
    /// is corrupted.
    pub error_rate: f64,
    /// Probability that the dirty record's name is a representation variant
    /// of the master name (abbreviation or dropped letter) rather than an
    /// exact copy.
    pub name_variation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            entities: 500,
            error_rate: 0.2,
            name_variation_rate: 0.4,
            seed: 42,
        }
    }
}

/// The generated workload.
#[derive(Clone, Debug)]
pub struct MasterWorkload {
    /// The master (reference) relation: clean and trusted.
    pub master: RelationInstance,
    /// The dirty source relation.
    pub dirty: RelationInstance,
    /// What the dirty relation should look like after a perfect repair
    /// (corrupted cells restored from the master; name variants are kept, a
    /// different spelling of a name is not an error).
    pub clean: RelationInstance,
    /// Ground-truth matches `(dirty tuple, master tuple)`.
    pub truth: BTreeSet<(TupleId, TupleId)>,
    /// Cells of the dirty relation that were corrupted: `(tuple index,
    /// attribute index)`.
    pub corrupted_cells: Vec<(usize, usize)>,
}

const UK_CITIES: [(&str, i64); 3] = [("EDI", 131), ("GLA", 141), ("LDN", 20)];
const US_CITIES: [(&str, i64); 3] = [("MH", 908), ("NYC", 212), ("SF", 415)];
const FIRST_NAMES: [&str; 8] = [
    "John",
    "Mary",
    "Robert",
    "Patricia",
    "Michael",
    "Linda",
    "William",
    "Elizabeth",
];
const LAST_NAMES: [&str; 8] = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
];

/// Generates a master-data workload over the customer schema of Fig. 1.
pub fn generate_master_workload(config: &MasterConfig) -> MasterWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = customer_schema();
    let street_attr = schema.attr("street");
    let city_attr = schema.attr("city");
    let zip_attr = schema.attr("zip");
    let name_attr = schema.attr("name");

    let mut master = RelationInstance::new(Arc::clone(&schema));
    for i in 0..config.entities {
        let uk = rng.gen_bool(0.5);
        let (cc, (city, ac)) = if uk {
            (44i64, UK_CITIES[rng.gen_range(0..UK_CITIES.len())])
        } else {
            (1i64, US_CITIES[rng.gen_range(0..US_CITIES.len())])
        };
        let zip_id = rng.gen_range(0..(config.entities / 4).max(1));
        let zip = format!("{}-Z{}", if uk { "UK" } else { "US" }, zip_id);
        let street = format!("{zip_id} High Street");
        let city = if cc == 44 && ac == 131 {
            "EDI".to_string()
        } else if cc == 1 && ac == 908 {
            "MH".to_string()
        } else {
            city.to_string()
        };
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            LAST_NAMES[i % LAST_NAMES.len()]
        );
        master
            .insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(5_000_000 + i as i64),
                Value::str(name),
                Value::str(street),
                Value::str(city),
                Value::str(zip),
            ])
            .expect("master tuple fits the schema");
    }

    // The dirty source: one record per master entity, with representation
    // variants on the name and corruption on the address fields.
    let mut dirty = master.clone();
    let mut truth = BTreeSet::new();
    let mut corrupted_cells = Vec::new();
    for i in 0..config.entities {
        let id = TupleId(i);
        truth.insert((id, id));
        if rng.gen_bool(config.name_variation_rate) {
            let original = dirty
                .tuple(id)
                .expect("dirty mirrors master")
                .get(name_attr)
                .as_str()
                .expect("name is a string")
                .to_string();
            dirty
                .update_cell(
                    CellRef::new(id, name_attr),
                    Value::str(vary_name(&original, &mut rng)),
                )
                .expect("name variants stay inside the text domain");
        }
        for &attr in &[street_attr, city_attr, zip_attr] {
            if rng.gen_bool(config.error_rate) {
                let wrong = match attr {
                    a if a == city_attr => Value::str("WRONGCITY"),
                    a if a == zip_attr => Value::str(format!("XX-{}", rng.gen_range(0..1_000))),
                    _ => Value::str(format!("Corrupted street {}", rng.gen_range(0..1_000))),
                };
                dirty
                    .update_cell(CellRef::new(id, attr), wrong)
                    .expect("injected typos stay inside the text domain");
                corrupted_cells.push((i, attr));
            }
        }
    }

    // The corrected version of the dirty relation: corrupted cells restored
    // from the master, everything else (including name variants) unchanged.
    let mut clean = dirty.clone();
    for &(i, attr) in &corrupted_cells {
        let id = TupleId(i);
        let master_value = master
            .tuple(id)
            .expect("master has the entity")
            .get(attr)
            .clone();
        clean
            .update_cell(CellRef::new(id, attr), master_value)
            .expect("master values satisfy the shared schema");
    }

    MasterWorkload {
        master,
        dirty,
        clean,
        truth,
        corrupted_cells,
    }
}

/// Produces a representation variant of a full name: abbreviates the first
/// name ("John Smith" → "J. Smith") or drops one interior letter.
fn vary_name(name: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        match name.split_once(' ') {
            Some((first, rest)) if !first.is_empty() => {
                format!("{}. {}", &first[..1], rest)
            }
            _ => name.to_string(),
        }
    } else if name.len() > 3 {
        let drop = rng.gen_range(1..name.len() - 1);
        // Only drop at a character boundary (names here are ASCII, but stay
        // safe for arbitrary input).
        if name.is_char_boundary(drop) && name.is_char_boundary(drop + 1) {
            format!("{}{}", &name[..drop], &name[drop + 1..])
        } else {
            name.to_string()
        }
    } else {
        name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customer::paper_cfds;
    use dq_core::detect_cfd_violations;

    #[test]
    fn master_is_clean_and_dirty_is_not() {
        let w = generate_master_workload(&MasterConfig {
            entities: 300,
            error_rate: 0.3,
            name_variation_rate: 0.5,
            seed: 3,
        });
        let cfds = paper_cfds();
        assert!(detect_cfd_violations(&w.master, &cfds).is_clean());
        assert!(!detect_cfd_violations(&w.dirty, &cfds).is_clean());
        assert!(!w.corrupted_cells.is_empty());
    }

    #[test]
    fn truth_links_every_dirty_tuple() {
        let w = generate_master_workload(&MasterConfig {
            entities: 100,
            ..MasterConfig::default()
        });
        assert_eq!(w.truth.len(), 100);
        assert_eq!(w.dirty.len(), 100);
        assert_eq!(w.master.len(), 100);
    }

    #[test]
    fn clean_restores_exactly_the_corrupted_cells() {
        let w = generate_master_workload(&MasterConfig {
            entities: 200,
            error_rate: 0.25,
            name_variation_rate: 0.4,
            seed: 9,
        });
        for &(i, attr) in &w.corrupted_cells {
            let id = TupleId(i);
            assert_eq!(
                w.clean.tuple(id).unwrap().get(attr),
                w.master.tuple(id).unwrap().get(attr),
                "clean must carry the master value in corrupted cells"
            );
            assert_ne!(
                w.dirty.tuple(id).unwrap().get(attr),
                w.clean.tuple(id).unwrap().get(attr),
                "corrupted cells must actually differ"
            );
        }
    }

    #[test]
    fn zero_rates_give_identical_relations() {
        let w = generate_master_workload(&MasterConfig {
            entities: 50,
            error_rate: 0.0,
            name_variation_rate: 0.0,
            seed: 1,
        });
        assert!(w.dirty.same_tuples_as(&w.master));
        assert!(w.clean.same_tuples_as(&w.dirty));
        assert!(w.corrupted_cells.is_empty());
    }

    #[test]
    fn name_variants_stay_similar() {
        let w = generate_master_workload(&MasterConfig {
            entities: 200,
            error_rate: 0.0,
            name_variation_rate: 1.0,
            seed: 5,
        });
        let name_attr = w.master.schema().attr("name");
        for (id, dirty_tuple) in w.dirty.iter() {
            let master_name = w
                .master
                .tuple(id)
                .unwrap()
                .get(name_attr)
                .as_str()
                .unwrap()
                .to_string();
            let dirty_name = dirty_tuple.get(name_attr).as_str().unwrap();
            // A variant either stays within a couple of edits (dropped
            // letter) or abbreviates the first name while keeping the
            // surname intact.
            let dist = dq_relation::levenshtein(&master_name, dirty_name);
            let same_surname = master_name.rsplit(' ').next() == dirty_name.rsplit(' ').next();
            assert!(
                dist <= 2 || same_surname,
                "variant `{dirty_name}` strays too far from `{master_name}`"
            );
        }
    }
}
