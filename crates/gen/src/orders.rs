//! The order / book / CD scenario of Figures 3–4, plus a scalable generator
//! for the CIND experiments.
//!
//! The generator produces a source `order` table and target `book` / `CD`
//! tables that satisfy the CINDs of Fig. 4 by construction, then drops a
//! controllable fraction of the required target tuples (or mis-labels their
//! pattern attributes), producing exactly the "dangling order" and "audio
//! book without an audio edition" violations the paper uses to motivate
//! CINDs.

use dq_core::{Cind, CindPattern};
use dq_relation::{Database, Domain, RelationInstance, RelationSchema, TupleId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The `order` schema of Section 2.2.
pub fn order_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "order",
        [
            ("asin", Domain::Text),
            ("title", Domain::Text),
            ("type", Domain::Text),
            ("price", Domain::Real),
        ],
    ))
}

/// The `book` schema of Section 2.2.
pub fn book_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "book",
        [
            ("isbn", Domain::Text),
            ("title", Domain::Text),
            ("price", Domain::Real),
            ("format", Domain::Text),
        ],
    ))
}

/// The `CD` schema of Section 2.2.
pub fn cd_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "CD",
        [
            ("id", Domain::Text),
            ("album", Domain::Text),
            ("price", Domain::Real),
            ("genre", Domain::Text),
        ],
    ))
}

/// The instance `D1` of Fig. 3.
pub fn paper_database() -> Database {
    let mut order = RelationInstance::new(order_schema());
    order
        .insert_values([
            Value::str("a23"),
            Value::str("Snow White"),
            Value::str("CD"),
            Value::real(7.99),
        ])
        .expect("order tuple");
    order
        .insert_values([
            Value::str("a12"),
            Value::str("Harry Potter"),
            Value::str("book"),
            Value::real(17.99),
        ])
        .expect("order tuple");
    let mut book = RelationInstance::new(book_schema());
    book.insert_values([
        Value::str("b32"),
        Value::str("Harry Potter"),
        Value::real(17.99),
        Value::str("hard-cover"),
    ])
    .expect("book tuple");
    book.insert_values([
        Value::str("b65"),
        Value::str("Snow White"),
        Value::real(7.99),
        Value::str("paper-cover"),
    ])
    .expect("book tuple");
    let mut cd = RelationInstance::new(cd_schema());
    cd.insert_values([
        Value::str("c12"),
        Value::str("J. Denver"),
        Value::real(7.94),
        Value::str("country"),
    ])
    .expect("CD tuple");
    cd.insert_values([
        Value::str("c58"),
        Value::str("Snow White"),
        Value::real(7.99),
        Value::str("a-book"),
    ])
    .expect("CD tuple");
    let mut db = Database::new();
    db.add_relation(order);
    db.add_relation(book);
    db.add_relation(cd);
    db
}

/// The CINDs ϕ4–ϕ6 of Fig. 4 (cind1–cind3 of Section 2.2).
pub fn paper_cinds() -> Vec<Cind> {
    let order = order_schema();
    let book = book_schema();
    let cd = cd_schema();
    vec![
        Cind::new(
            &order,
            &["title", "price"],
            &["type"],
            &book,
            &["title", "price"],
            &[],
            vec![CindPattern::new(vec![Value::str("book")], vec![])],
        )
        .expect("ϕ4 is well-formed"),
        Cind::new(
            &order,
            &["title", "price"],
            &["type"],
            &cd,
            &["album", "price"],
            &[],
            vec![CindPattern::new(vec![Value::str("CD")], vec![])],
        )
        .expect("ϕ5 is well-formed"),
        Cind::new(
            &cd,
            &["album", "price"],
            &["genre"],
            &book,
            &["title", "price"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("a-book")],
                vec![Value::str("audio")],
            )],
        )
        .expect("ϕ6 is well-formed"),
    ]
}

/// Configuration for the synthetic order/book/CD workload.
#[derive(Clone, Debug)]
pub struct OrderConfig {
    /// Number of order tuples.
    pub orders: usize,
    /// Fraction of orders whose required target tuple is missing or
    /// mis-labelled (CIND violations).
    pub violation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrderConfig {
    fn default() -> Self {
        OrderConfig {
            orders: 1_000,
            violation_rate: 0.05,
            seed: 42,
        }
    }
}

/// A generated order/book/CD database plus the indexes of orders whose CIND
/// requirement was deliberately broken.
#[derive(Clone, Debug)]
pub struct OrderWorkload {
    /// The database (source `order` plus target `book` / `CD`).
    pub db: Database,
    /// Order tuples generated as violations of ϕ4/ϕ5.
    pub broken_orders: Vec<TupleId>,
    /// CD tuples generated as violations of ϕ6 (audio books without an audio
    /// edition).
    pub broken_cds: Vec<TupleId>,
}

/// Generates the workload.
///
/// Titles recur across the source and target relations (that is what the
/// CINDs probe), so string values are canonicalized through a
/// [`dq_relation::ValueInterner`]: every occurrence of a title — and of the
/// small type/genre/format vocabularies — shares one allocation across all
/// three relations.
pub fn generate_orders(config: &OrderConfig) -> OrderWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut strings = dq_relation::ValueInterner::new();
    let mut order = RelationInstance::new(order_schema());
    let mut book = RelationInstance::new(book_schema());
    let mut cd = RelationInstance::new(cd_schema());
    let mut broken_orders = Vec::new();
    let mut broken_cds = Vec::new();

    for i in 0..config.orders {
        let is_book = rng.gen_bool(0.5);
        let title = strings.canonical(Value::str(format!("Title {i}")));
        let price = (rng.gen_range(100..5000) as f64) / 100.0;
        let break_it = rng.gen_bool(config.violation_rate);
        let id = order
            .insert_values([
                Value::str(format!("a{i}")),
                title.clone(),
                strings.canonical(Value::str(if is_book { "book" } else { "CD" })),
                Value::real(price),
            ])
            .expect("order tuple fits the schema");
        if break_it {
            broken_orders.push(id);
            continue; // no matching target tuple
        }
        if is_book {
            book.insert_values([
                Value::str(format!("b{i}")),
                title,
                Value::real(price),
                strings.canonical(Value::str("paper-cover")),
            ])
            .expect("book tuple fits the schema");
        } else {
            // 1 in 5 CDs is an audio book; ϕ6 then requires an audio edition.
            let audio_book = rng.gen_bool(0.2);
            let genre = if audio_book { "a-book" } else { "rock" };
            let cd_id = cd
                .insert_values([
                    Value::str(format!("c{i}")),
                    title.clone(),
                    Value::real(price),
                    strings.canonical(Value::str(genre)),
                ])
                .expect("CD tuple fits the schema");
            if audio_book {
                if rng.gen_bool(config.violation_rate) {
                    broken_cds.push(cd_id);
                } else {
                    book.insert_values([
                        Value::str(format!("ab{i}")),
                        title,
                        Value::real(price),
                        strings.canonical(Value::str("audio")),
                    ])
                    .expect("book tuple fits the schema");
                }
            }
        }
    }

    let mut db = Database::new();
    db.add_relation(order);
    db.add_relation(book);
    db.add_relation(cd);
    OrderWorkload {
        db,
        broken_orders,
        broken_cds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_core::detect_cind_violations;

    #[test]
    fn paper_database_matches_fig_3() {
        let db = paper_database();
        let cinds = paper_cinds();
        let report = detect_cind_violations(&db, &cinds).unwrap();
        // cind1 and cind2 hold, cind3 is violated by exactly one tuple (t9).
        assert_eq!(report.of(0).len(), 0);
        assert_eq!(report.of(1).len(), 0);
        assert_eq!(report.of(2).len(), 1);
    }

    #[test]
    fn violation_free_generation_satisfies_all_cinds() {
        let workload = generate_orders(&OrderConfig {
            orders: 300,
            violation_rate: 0.0,
            seed: 3,
        });
        let report = detect_cind_violations(&workload.db, &paper_cinds()).unwrap();
        assert!(report.is_clean());
        assert!(workload.broken_orders.is_empty());
        assert!(workload.broken_cds.is_empty());
    }

    #[test]
    fn injected_violations_are_found_by_detection() {
        let workload = generate_orders(&OrderConfig {
            orders: 400,
            violation_rate: 0.2,
            seed: 3,
        });
        assert!(!workload.broken_orders.is_empty());
        let report = detect_cind_violations(&workload.db, &paper_cinds()).unwrap();
        // Every deliberately broken order shows up as a ϕ4 or ϕ5 violation.
        let detected: std::collections::BTreeSet<TupleId> = report
            .iter()
            .filter(|(i, _)| *i < 2)
            .map(|(_, v)| v.tuple)
            .collect();
        for broken in &workload.broken_orders {
            assert!(detected.contains(broken));
        }
        // And broken audio books show up as ϕ6 violations.
        let detected_cds: std::collections::BTreeSet<TupleId> = report
            .iter()
            .filter(|(i, _)| *i == 2)
            .map(|(_, v)| v.tuple)
            .collect();
        for broken in &workload.broken_cds {
            assert!(detected_cds.contains(broken));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_orders(&OrderConfig {
            orders: 100,
            violation_rate: 0.1,
            seed: 9,
        });
        let b = generate_orders(&OrderConfig {
            orders: 100,
            violation_rate: 0.1,
            seed: 9,
        });
        assert_eq!(a.broken_orders, b.broken_orders);
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    }
}
