//! The card / billing scenario of Section 3.1, plus a scalable generator for
//! the object-identification experiments.
//!
//! Each generated card holder gives rise to one `card` tuple and (with the
//! configured probability) one `billing` tuple referring to the same person
//! but written the way unreliable sources write things: abbreviated first
//! names ("John" → "J."), typos in the surname, a reformatted address, a
//! different phone number or a different e-mail address.  The ground-truth
//! pairs are returned alongside the data, so matching quality (precision /
//! recall) can be measured exactly; a configurable number of "distractor"
//! billing tuples that match nobody keeps precision honest.

use dq_relation::{Domain, RelationInstance, RelationSchema, TupleId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The `card` schema of Section 3.1.
pub fn card_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "card",
        [
            ("c#", Domain::Text),
            ("SSN", Domain::Text),
            ("FN", Domain::Text),
            ("LN", Domain::Text),
            ("addr", Domain::Text),
            ("tel", Domain::Text),
            ("email", Domain::Text),
            ("type", Domain::Text),
        ],
    ))
}

/// The `billing` schema of Section 3.1.
pub fn billing_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "billing",
        [
            ("c#", Domain::Text),
            ("FN", Domain::Text),
            ("SN", Domain::Text),
            ("post", Domain::Text),
            ("phn", Domain::Text),
            ("email", Domain::Text),
            ("item", Domain::Text),
            ("price", Domain::Real),
        ],
    ))
}

/// Configuration of the card/billing workload.
#[derive(Clone, Debug)]
pub struct CardConfig {
    /// Number of card holders (card tuples).
    pub holders: usize,
    /// Probability that a holder has a billing record (a true match).
    pub billing_rate: f64,
    /// Probability that the billing record abbreviates the first name.
    pub abbreviate_rate: f64,
    /// Probability that the billing record uses a different phone number.
    pub phone_change_rate: f64,
    /// Probability that the billing record uses a different e-mail.
    pub email_change_rate: f64,
    /// Number of distractor billing tuples matching no card holder.
    pub distractors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CardConfig {
    fn default() -> Self {
        CardConfig {
            holders: 500,
            billing_rate: 0.8,
            abbreviate_rate: 0.3,
            phone_change_rate: 0.3,
            email_change_rate: 0.3,
            distractors: 50,
            seed: 42,
        }
    }
}

/// The generated workload.
#[derive(Clone, Debug)]
pub struct CardWorkload {
    /// The card relation.
    pub card: RelationInstance,
    /// The billing relation.
    pub billing: RelationInstance,
    /// Ground-truth matches: `(card tuple, billing tuple)` referring to the
    /// same holder.
    pub truth: BTreeSet<(TupleId, TupleId)>,
}

const FIRST_NAMES: [&str; 8] = [
    "John",
    "Mary",
    "Robert",
    "Patricia",
    "Michael",
    "Linda",
    "William",
    "Elizabeth",
];
const LAST_NAMES: [&str; 8] = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
];

fn abbreviate(first: &str) -> String {
    format!("{}.", &first[..1])
}

/// Generates the workload.
pub fn generate_cards(config: &CardConfig) -> CardWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut card = RelationInstance::new(card_schema());
    let mut billing = RelationInstance::new(billing_schema());
    let mut truth = BTreeSet::new();

    for i in 0..config.holders {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let last = format!("{}{}", LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())], i);
        let addr = format!("{} Main Street, Springfield {}", i, i % 97);
        let tel = format!("555-{:06}", i);
        let email = format!("holder{i}@example.org");
        let card_id = card
            .insert_values([
                Value::str(format!("card{i}")),
                Value::str(format!("ssn{i}")),
                Value::str(first),
                Value::str(last.clone()),
                Value::str(addr.clone()),
                Value::str(tel.clone()),
                Value::str(email.clone()),
                Value::str("visa"),
            ])
            .expect("card tuple fits the schema");
        if !rng.gen_bool(config.billing_rate) {
            continue;
        }
        let bill_first = if rng.gen_bool(config.abbreviate_rate) {
            abbreviate(first)
        } else {
            first.to_string()
        };
        let bill_phone = if rng.gen_bool(config.phone_change_rate) {
            format!("555-9{:05}", i)
        } else {
            tel.clone()
        };
        let bill_email = if rng.gen_bool(config.email_change_rate) {
            format!("holder{i}@other.example.com")
        } else {
            email.clone()
        };
        let billing_id = billing
            .insert_values([
                Value::str(format!("card{i}")),
                Value::str(bill_first),
                Value::str(last),
                Value::str(addr),
                Value::str(bill_phone),
                Value::str(bill_email),
                Value::str(format!("item{}", rng.gen_range(0..100))),
                Value::real((rng.gen_range(100..99_999) as f64) / 100.0),
            ])
            .expect("billing tuple fits the schema");
        truth.insert((card_id, billing_id));
    }

    for d in 0..config.distractors {
        billing
            .insert_values([
                Value::str(format!("unknown{d}")),
                Value::str("Zo"),
                Value::str(format!("Stranger{d}")),
                Value::str(format!("{d} Nowhere Lane")),
                Value::str(format!("000-{:06}", d)),
                Value::str(format!("stranger{d}@nowhere.example")),
                Value::str("item"),
                Value::real(1.0),
            ])
            .expect("distractor tuple fits the schema");
    }

    CardWorkload {
        card,
        billing,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes_follow_the_configuration() {
        let w = generate_cards(&CardConfig {
            holders: 200,
            billing_rate: 1.0,
            distractors: 25,
            ..CardConfig::default()
        });
        assert_eq!(w.card.len(), 200);
        assert_eq!(w.billing.len(), 225);
        assert_eq!(w.truth.len(), 200);
    }

    #[test]
    fn no_billing_records_means_no_truth() {
        let w = generate_cards(&CardConfig {
            holders: 50,
            billing_rate: 0.0,
            distractors: 0,
            ..CardConfig::default()
        });
        assert!(w.truth.is_empty());
        assert_eq!(w.billing.len(), 0);
    }

    #[test]
    fn variations_keep_the_surname_and_address_stable() {
        let w = generate_cards(&CardConfig {
            holders: 100,
            billing_rate: 1.0,
            abbreviate_rate: 1.0,
            phone_change_rate: 1.0,
            email_change_rate: 1.0,
            distractors: 0,
            seed: 5,
        });
        let card_schema = card_schema();
        let billing_schema = billing_schema();
        for (cid, bid) in &w.truth {
            let c = w.card.tuple(*cid).unwrap();
            let b = w.billing.tuple(*bid).unwrap();
            assert_eq!(
                c.get(card_schema.attr("LN")),
                b.get(billing_schema.attr("SN"))
            );
            assert_eq!(
                c.get(card_schema.attr("addr")),
                b.get(billing_schema.attr("post"))
            );
            // With abbreviate_rate = 1 the first names differ but share the
            // initial letter.
            let cf = c.get(card_schema.attr("FN")).to_string();
            let bf = b.get(billing_schema.attr("FN")).to_string();
            assert_ne!(cf, bf);
            assert_eq!(cf.chars().next(), bf.chars().next());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_cards(&CardConfig {
            seed: 11,
            ..CardConfig::default()
        });
        let b = generate_cards(&CardConfig {
            seed: 11,
            ..CardConfig::default()
        });
        assert_eq!(a.truth, b.truth);
        assert!(a.card.same_tuples_as(&b.card));
        assert!(a.billing.same_tuples_as(&b.billing));
    }
}
