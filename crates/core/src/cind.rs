//! Conditional inclusion dependencies (CINDs), Section 2.2.
//!
//! A CIND `ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)` extends an IND `R1[X] ⊆ R2[Y]`
//! with pattern attribute lists `Xp` (selecting which `R1` tuples the IND
//! applies to) and `Yp` (constants the matching `R2` tuple must carry), and a
//! pattern tableau `Tp` whose entries are *constants only*.
//!
//! `(D1, D2) ⊨ ψ` iff for every pattern tuple `tp ∈ Tp` and every `t1 ∈ D1`
//! with `t1[Xp] = tp[Xp]`, there is a `t2 ∈ D2` with `t1[X] = t2[Y]` and
//! `t2[Yp] = tp[Yp]`.  Traditional INDs are the special case of empty
//! `Xp`/`Yp`.

use crate::ind::Ind;
use dq_relation::{
    Database, DqError, DqResult, HashIndex, InternedIndex, RelationSchema, TupleId, Value, ValueId,
};
use std::fmt;
use std::sync::Arc;

/// One pattern tuple of a CIND tableau: constants for the `Xp` attributes and
/// constants for the `Yp` attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CindPattern {
    /// Constants for the LHS pattern attributes `Xp`.
    pub lhs: Vec<Value>,
    /// Constants for the RHS pattern attributes `Yp`.
    pub rhs: Vec<Value>,
}

impl CindPattern {
    /// Creates a pattern tuple.
    pub fn new(lhs: Vec<Value>, rhs: Vec<Value>) -> Self {
        CindPattern { lhs, rhs }
    }
}

/// A conditional inclusion dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct Cind {
    lhs_schema: Arc<RelationSchema>,
    rhs_schema: Arc<RelationSchema>,
    /// Correspondence attributes `X` of `R1`.
    lhs_attrs: Vec<usize>,
    /// Correspondence attributes `Y` of `R2`.
    rhs_attrs: Vec<usize>,
    /// Pattern attributes `Xp` of `R1`.
    lhs_pattern_attrs: Vec<usize>,
    /// Pattern attributes `Yp` of `R2`.
    rhs_pattern_attrs: Vec<usize>,
    tableau: Vec<CindPattern>,
}

impl Cind {
    /// Creates a CIND from attribute names.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        lhs_schema: &Arc<RelationSchema>,
        lhs_attrs: &[&str],
        lhs_pattern_attrs: &[&str],
        rhs_schema: &Arc<RelationSchema>,
        rhs_attrs: &[&str],
        rhs_pattern_attrs: &[&str],
        tableau: Vec<CindPattern>,
    ) -> DqResult<Self> {
        if lhs_attrs.len() != rhs_attrs.len() {
            return Err(DqError::MalformedDependency {
                reason: format!(
                    "CIND correspondence lists have different lengths ({} vs {})",
                    lhs_attrs.len(),
                    rhs_attrs.len()
                ),
            });
        }
        let cind = Cind {
            lhs_schema: Arc::clone(lhs_schema),
            rhs_schema: Arc::clone(rhs_schema),
            lhs_attrs: lhs_attrs
                .iter()
                .map(|a| lhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            rhs_attrs: rhs_attrs
                .iter()
                .map(|a| rhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            lhs_pattern_attrs: lhs_pattern_attrs
                .iter()
                .map(|a| lhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            rhs_pattern_attrs: rhs_pattern_attrs
                .iter()
                .map(|a| rhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            tableau,
        };
        cind.validate()?;
        Ok(cind)
    }

    fn validate(&self) -> DqResult<()> {
        for tp in &self.tableau {
            if tp.lhs.len() != self.lhs_pattern_attrs.len()
                || tp.rhs.len() != self.rhs_pattern_attrs.len()
            {
                return Err(DqError::MalformedDependency {
                    reason: "CIND pattern tuple width does not match Xp/Yp".into(),
                });
            }
            for (v, &a) in tp.lhs.iter().zip(&self.lhs_pattern_attrs) {
                if !self.lhs_schema.domain(a).contains(v) {
                    return Err(DqError::MalformedDependency {
                        reason: format!(
                            "pattern constant `{v}` outside the domain of `{}`",
                            self.lhs_schema.attr_name(a)
                        ),
                    });
                }
            }
            for (v, &a) in tp.rhs.iter().zip(&self.rhs_pattern_attrs) {
                if !self.rhs_schema.domain(a).contains(v) {
                    return Err(DqError::MalformedDependency {
                        reason: format!(
                            "pattern constant `{v}` outside the domain of `{}`",
                            self.rhs_schema.attr_name(a)
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Creates a CIND from attribute positions (the positional counterpart of
    /// [`Cind::new`], used by dependency discovery which works on indices).
    #[allow(clippy::too_many_arguments)]
    pub fn from_indices(
        lhs_schema: &Arc<RelationSchema>,
        lhs_attrs: Vec<usize>,
        lhs_pattern_attrs: Vec<usize>,
        rhs_schema: &Arc<RelationSchema>,
        rhs_attrs: Vec<usize>,
        rhs_pattern_attrs: Vec<usize>,
        tableau: Vec<CindPattern>,
    ) -> DqResult<Self> {
        if lhs_attrs.len() != rhs_attrs.len() {
            return Err(DqError::MalformedDependency {
                reason: format!(
                    "CIND correspondence lists have different lengths ({} vs {})",
                    lhs_attrs.len(),
                    rhs_attrs.len()
                ),
            });
        }
        let cind = Cind {
            lhs_schema: Arc::clone(lhs_schema),
            rhs_schema: Arc::clone(rhs_schema),
            lhs_attrs,
            rhs_attrs,
            lhs_pattern_attrs,
            rhs_pattern_attrs,
            tableau,
        };
        cind.validate()?;
        Ok(cind)
    }

    /// Lifts a traditional IND to a CIND with empty pattern lists.
    pub fn from_ind(
        ind: &Ind,
        lhs_schema: &Arc<RelationSchema>,
        rhs_schema: &Arc<RelationSchema>,
    ) -> Self {
        Cind {
            lhs_schema: Arc::clone(lhs_schema),
            rhs_schema: Arc::clone(rhs_schema),
            lhs_attrs: ind.lhs_attrs().to_vec(),
            rhs_attrs: ind.rhs_attrs().to_vec(),
            lhs_pattern_attrs: Vec::new(),
            rhs_pattern_attrs: Vec::new(),
            tableau: vec![CindPattern::new(Vec::new(), Vec::new())],
        }
    }

    /// The embedded traditional IND `R1[X] ⊆ R2[Y]`.
    pub fn embedded_ind(&self) -> Ind {
        Ind::from_indices(
            self.lhs_schema.name(),
            self.lhs_attrs.clone(),
            self.rhs_schema.name(),
            self.rhs_attrs.clone(),
        )
    }

    /// LHS (source) schema.
    pub fn lhs_schema(&self) -> &Arc<RelationSchema> {
        &self.lhs_schema
    }

    /// RHS (target) schema.
    pub fn rhs_schema(&self) -> &Arc<RelationSchema> {
        &self.rhs_schema
    }

    /// Correspondence attributes `X` of the LHS relation.
    pub fn lhs_attrs(&self) -> &[usize] {
        &self.lhs_attrs
    }

    /// Correspondence attributes `Y` of the RHS relation.
    pub fn rhs_attrs(&self) -> &[usize] {
        &self.rhs_attrs
    }

    /// Pattern attributes `Xp`.
    pub fn lhs_pattern_attrs(&self) -> &[usize] {
        &self.lhs_pattern_attrs
    }

    /// Pattern attributes `Yp`.
    pub fn rhs_pattern_attrs(&self) -> &[usize] {
        &self.rhs_pattern_attrs
    }

    /// The pattern tableau.
    pub fn tableau(&self) -> &[CindPattern] {
        &self.tableau
    }

    /// Is this a traditional IND (no pattern attributes)?
    pub fn is_traditional_ind(&self) -> bool {
        self.lhs_pattern_attrs.is_empty() && self.rhs_pattern_attrs.is_empty()
    }

    /// Total size of the CIND (number of attributes times tableau rows).
    pub fn size(&self) -> usize {
        (self.lhs_attrs.len()
            + self.rhs_attrs.len()
            + self.lhs_pattern_attrs.len()
            + self.rhs_pattern_attrs.len())
            * self.tableau.len().max(1)
    }

    /// Normalizes into CINDs with a single pattern tuple each.
    pub fn normalize(&self) -> Vec<Cind> {
        self.tableau
            .iter()
            .map(|tp| Cind {
                lhs_schema: Arc::clone(&self.lhs_schema),
                rhs_schema: Arc::clone(&self.rhs_schema),
                lhs_attrs: self.lhs_attrs.clone(),
                rhs_attrs: self.rhs_attrs.clone(),
                lhs_pattern_attrs: self.lhs_pattern_attrs.clone(),
                rhs_pattern_attrs: self.rhs_pattern_attrs.clone(),
                tableau: vec![tp.clone()],
            })
            .collect()
    }

    /// LHS tuples violating the CIND: tuples matching some pattern's `Xp`
    /// constants with no RHS tuple matching both the correspondence and the
    /// pattern's `Yp` constants.
    pub fn violations(&self, db: &Database) -> DqResult<Vec<CindViolation>> {
        let lhs = db.require_relation(self.lhs_schema.name())?;
        let rhs = db.require_relation(self.rhs_schema.name())?;
        // Index the RHS relation on Y ++ Yp so each probe is a single lookup.
        let mut probe_attrs = self.rhs_attrs.clone();
        probe_attrs.extend_from_slice(&self.rhs_pattern_attrs);
        let index = HashIndex::build(rhs, &probe_attrs);
        let mut out = Vec::new();
        for (pattern_idx, tp) in self.tableau.iter().enumerate() {
            for (id, tuple) in lhs.iter() {
                let applies = self
                    .lhs_pattern_attrs
                    .iter()
                    .zip(&tp.lhs)
                    .all(|(&a, v)| tuple.get(a) == v);
                if !applies {
                    continue;
                }
                let mut key = tuple.project(&self.lhs_attrs);
                key.extend(tp.rhs.iter().cloned());
                if !index.contains_key(&key) {
                    out.push(CindViolation {
                        pattern: pattern_idx,
                        tuple: id,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Does the database satisfy this CIND?
    pub fn holds_on(&self, db: &Database) -> DqResult<bool> {
        Ok(self.violations(db)?.is_empty())
    }

    /// The attribute list an interned probe index on the RHS relation must
    /// be keyed on: the correspondence attributes `Y` followed by the
    /// pattern attributes `Yp`.
    pub fn rhs_probe_attrs(&self) -> Vec<usize> {
        let mut attrs = self.rhs_attrs.clone();
        attrs.extend_from_slice(&self.rhs_pattern_attrs);
        attrs
    }

    /// Violations computed against a caller-supplied *interned* index of the
    /// RHS relation on exactly [`rhs_probe_attrs`](Self::rhs_probe_attrs).
    /// Each LHS tuple's probe translates through the index's per-column
    /// dictionaries — a value absent from a dictionary cannot match any RHS
    /// tuple, short-circuiting the probe.  Output (order included) equals
    /// [`violations`](Self::violations).
    pub fn violations_with_interned_index(
        &self,
        db: &Database,
        index: &InternedIndex,
    ) -> DqResult<Vec<CindViolation>> {
        debug_assert_eq!(
            index.attrs(),
            self.rhs_probe_attrs().as_slice(),
            "index keyed off Y ++ Yp of the CIND"
        );
        let lhs = db.require_relation(self.lhs_schema.name())?;
        let x_len = self.lhs_attrs.len();
        let mut out = Vec::new();
        let mut key: Vec<ValueId> = vec![ValueId(0); x_len + self.rhs_pattern_attrs.len()];
        for (pattern_idx, tp) in self.tableau.iter().enumerate() {
            // Translate the pattern's Yp constants once; an absent constant
            // means no RHS tuple can ever match this pattern.
            let yp_ids: Option<Vec<ValueId>> = tp
                .rhs
                .iter()
                .enumerate()
                .map(|(j, v)| index.lookup_id(x_len + j, v))
                .collect();
            if let Some(ids) = &yp_ids {
                key[x_len..].copy_from_slice(ids);
            }
            for (id, tuple) in lhs.iter() {
                let applies = self
                    .lhs_pattern_attrs
                    .iter()
                    .zip(&tp.lhs)
                    .all(|(&a, v)| tuple.get(a) == v);
                if !applies {
                    continue;
                }
                let matched = yp_ids.is_some()
                    && self.lhs_attrs.iter().enumerate().all(|(j, &a)| {
                        match index.lookup_id(j, tuple.get(a)) {
                            Some(vid) => {
                                key[j] = vid;
                                true
                            }
                            None => false,
                        }
                    })
                    && !index.rows_for_ids(&key).is_empty();
                if !matched {
                    out.push(CindViolation {
                        pattern: pattern_idx,
                        tuple: id,
                    });
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Cind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |schema: &RelationSchema, attrs: &[usize]| {
            attrs
                .iter()
                .map(|&a| schema.attr_name(a).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{}([{}]; [{}]) ⊆ {}([{}]; [{}]) with {} pattern tuple(s)",
            self.lhs_schema.name(),
            names(&self.lhs_schema, &self.lhs_attrs),
            names(&self.lhs_schema, &self.lhs_pattern_attrs),
            self.rhs_schema.name(),
            names(&self.rhs_schema, &self.rhs_attrs),
            names(&self.rhs_schema, &self.rhs_pattern_attrs),
            self.tableau.len()
        )
    }
}

/// A violation of a CIND: an LHS tuple that matches a pattern but has no
/// matching RHS tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CindViolation {
    /// Index of the violated pattern tuple.
    pub pattern: usize,
    /// The dangling LHS tuple.
    pub tuple: TupleId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationInstance};

    pub fn order_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "order",
            [
                ("asin", Domain::Text),
                ("title", Domain::Text),
                ("type", Domain::Text),
                ("price", Domain::Real),
            ],
        ))
    }

    pub fn book_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "book",
            [
                ("isbn", Domain::Text),
                ("title", Domain::Text),
                ("price", Domain::Real),
                ("format", Domain::Text),
            ],
        ))
    }

    pub fn cd_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "CD",
            [
                ("id", Domain::Text),
                ("album", Domain::Text),
                ("price", Domain::Real),
                ("genre", Domain::Text),
            ],
        ))
    }

    /// The instance D1 of Fig. 3.
    pub fn d1() -> Database {
        let mut oi = RelationInstance::new(order_schema());
        oi.insert_values([
            Value::str("a23"),
            Value::str("Snow White"),
            Value::str("CD"),
            Value::real(7.99),
        ])
        .unwrap();
        oi.insert_values([
            Value::str("a12"),
            Value::str("Harry Potter"),
            Value::str("book"),
            Value::real(17.99),
        ])
        .unwrap();
        let mut bi = RelationInstance::new(book_schema());
        bi.insert_values([
            Value::str("b32"),
            Value::str("Harry Potter"),
            Value::real(17.99),
            Value::str("hard-cover"),
        ])
        .unwrap();
        bi.insert_values([
            Value::str("b65"),
            Value::str("Snow White"),
            Value::real(7.99),
            Value::str("paper-cover"),
        ])
        .unwrap();
        let mut ci = RelationInstance::new(cd_schema());
        ci.insert_values([
            Value::str("c12"),
            Value::str("J. Denver"),
            Value::real(7.94),
            Value::str("country"),
        ])
        .unwrap();
        ci.insert_values([
            Value::str("c58"),
            Value::str("Snow White"),
            Value::real(7.99),
            Value::str("a-book"),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_relation(oi);
        db.add_relation(bi);
        db.add_relation(ci);
        db
    }

    /// cind1 / ϕ4: order(title, price; type = 'book') ⊆ book(title, price).
    fn cind1() -> Cind {
        Cind::new(
            &order_schema(),
            &["title", "price"],
            &["type"],
            &book_schema(),
            &["title", "price"],
            &[],
            vec![CindPattern::new(vec![Value::str("book")], vec![])],
        )
        .unwrap()
    }

    /// cind2 / ϕ5: order(title, price; type = 'CD') ⊆ CD(album, price).
    fn cind2() -> Cind {
        Cind::new(
            &order_schema(),
            &["title", "price"],
            &["type"],
            &cd_schema(),
            &["album", "price"],
            &[],
            vec![CindPattern::new(vec![Value::str("CD")], vec![])],
        )
        .unwrap()
    }

    /// cind3 / ϕ6: CD(album, price; genre = 'a-book') ⊆ book(title, price; format = 'audio').
    fn cind3() -> Cind {
        Cind::new(
            &cd_schema(),
            &["album", "price"],
            &["genre"],
            &book_schema(),
            &["title", "price"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("a-book")],
                vec![Value::str("audio")],
            )],
        )
        .unwrap()
    }

    #[test]
    fn d1_satisfies_cind1_and_cind2() {
        let db = d1();
        assert!(cind1().holds_on(&db).unwrap());
        assert!(cind2().holds_on(&db).unwrap());
    }

    #[test]
    fn d1_violates_cind3_via_t9() {
        let db = d1();
        let v = cind3().violations(&db).unwrap();
        assert_eq!(v.len(), 1);
        // t9 is the second CD tuple (the audio-book Snow White).
        assert_eq!(v[0].tuple, TupleId(1));
        assert_eq!(v[0].pattern, 0);
    }

    #[test]
    fn fixing_the_format_attribute_resolves_the_violation() {
        let mut db = d1();
        let book = db.relation_mut("book").unwrap();
        // Make t7 an audio book.
        book.update_cell(
            dq_relation::instance::CellRef::new(TupleId(1), 3),
            Value::str("audio"),
        )
        .unwrap();
        assert!(cind3().holds_on(&db).unwrap());
    }

    #[test]
    fn traditional_ind_embedding() {
        let (order, book) = (order_schema(), book_schema());
        let ind = Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
        let cind = Cind::from_ind(&ind, &order, &book);
        assert!(cind.is_traditional_ind());
        let db = d1();
        assert_eq!(cind.holds_on(&db).unwrap(), ind.holds_on(&db).unwrap());
        assert_eq!(cind.embedded_ind().lhs_attrs(), ind.lhs_attrs());
    }

    #[test]
    fn malformed_cinds_are_rejected() {
        // Mismatched correspondence lengths.
        assert!(Cind::new(
            &order_schema(),
            &["title"],
            &[],
            &book_schema(),
            &["title", "price"],
            &[],
            vec![],
        )
        .is_err());
        // Pattern width mismatch.
        assert!(Cind::new(
            &order_schema(),
            &["title"],
            &["type"],
            &book_schema(),
            &["title"],
            &[],
            vec![CindPattern::new(vec![], vec![])],
        )
        .is_err());
    }

    #[test]
    fn normalization_splits_tableau_rows() {
        let cind = Cind::new(
            &order_schema(),
            &["title", "price"],
            &["type"],
            &book_schema(),
            &["title", "price"],
            &[],
            vec![
                CindPattern::new(vec![Value::str("book")], vec![]),
                CindPattern::new(vec![Value::str("audiobook")], vec![]),
            ],
        )
        .unwrap();
        let parts = cind.normalize();
        assert_eq!(parts.len(), 2);
        let db = d1();
        assert_eq!(
            cind.holds_on(&db).unwrap(),
            parts.iter().all(|c| c.holds_on(&db).unwrap())
        );
    }

    #[test]
    fn interned_probe_equals_value_probe() {
        let db = d1();
        for cind in [cind1(), cind2(), cind3()] {
            let rhs = db.require_relation(cind.rhs_schema().name()).unwrap();
            let store = rhs.columnar();
            let probe = cind.rhs_probe_attrs();
            let index = InternedIndex::build(rhs, &store, &probe, 1);
            assert_eq!(
                cind.violations_with_interned_index(&db, &index).unwrap(),
                cind.violations(&db).unwrap(),
                "{cind}"
            );
        }
        // A CIND whose correspondence values are absent from the RHS:
        // every applicable tuple dangles, interned and naive alike.
        let absent = Cind::new(
            &order_schema(),
            &["asin"],
            &["type"],
            &book_schema(),
            &["isbn"],
            &[],
            vec![CindPattern::new(vec![Value::str("CD")], vec![])],
        )
        .unwrap();
        let rhs = db.require_relation("book").unwrap();
        let index = InternedIndex::build(rhs, &rhs.columnar(), &absent.rhs_probe_attrs(), 1);
        assert_eq!(
            absent.violations_with_interned_index(&db, &index).unwrap(),
            absent.violations(&db).unwrap()
        );
        assert_eq!(absent.violations(&db).unwrap().len(), 1);
    }

    #[test]
    fn size_and_display() {
        let c = cind3();
        assert_eq!(c.size(), 6);
        assert!(c.to_string().contains("CD"));
        assert!(c.to_string().contains("book"));
    }
}
