//! eCFDs: CFDs extended with disjunction and inequality (Section 2.3).
//!
//! An eCFD generalizes the pattern entries of a CFD from a single constant or
//! `_` to a *set* of allowed constants (`∈ S`, disjunction) or a set of
//! excluded constants (`∉ S`, inequality/negation).  The paper's examples:
//!
//! * `ecfd1: CT ∉ {NYC, LI} → AC` — the FD `CT → AC` holds for cities outside
//!   New York City and Long Island;
//! * `ecfd2: CT ∈ {NYC} → AC ∈ {212, 718, 646, 347, 917}` — NYC area codes
//!   are restricted to the listed five.
//!
//! Per [19], the added expressive power does not change the complexity of
//! consistency (NP-complete) or implication (coNP-complete); the benches of
//! `dq-bench` measure the two classes side by side.

use dq_relation::store::FxHashMap;
use dq_relation::{
    Column, DqError, DqResult, HashIndex, InternedIndex, KeyCodec, ProjectionKey, RelationInstance,
    RelationSchema, TupleId, Value, ValueId,
};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A generalized pattern entry of an eCFD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetPattern {
    /// Matches any value (the unnamed variable `_`).
    Any,
    /// Matches values belonging to the set (disjunction of constants).
    In(BTreeSet<Value>),
    /// Matches values *not* belonging to the set (inequality).
    NotIn(BTreeSet<Value>),
}

impl SetPattern {
    /// The `_` entry.
    pub fn any() -> Self {
        SetPattern::Any
    }

    /// A single-constant entry (plain CFD constant).
    pub fn eq(v: impl Into<Value>) -> Self {
        SetPattern::In([v.into()].into_iter().collect())
    }

    /// An `∈ S` entry.
    pub fn in_set<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        SetPattern::In(values.into_iter().map(Into::into).collect())
    }

    /// A `∉ S` entry.
    pub fn not_in<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        SetPattern::NotIn(values.into_iter().map(Into::into).collect())
    }

    /// Does a data value match this entry?
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            SetPattern::Any => true,
            SetPattern::In(s) => s.contains(v),
            SetPattern::NotIn(s) => !s.contains(v),
        }
    }

    /// Constants mentioned by the entry (used by consistency analysis to
    /// bound the search space).
    pub fn constants(&self) -> Vec<Value> {
        match self {
            SetPattern::Any => Vec::new(),
            SetPattern::In(s) | SetPattern::NotIn(s) => s.iter().cloned().collect(),
        }
    }
}

impl fmt::Display for SetPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetPattern::Any => write!(f, "_"),
            SetPattern::In(s) => {
                let items: Vec<String> = s.iter().map(|v| v.to_string()).collect();
                write!(f, "∈ {{{}}}", items.join(", "))
            }
            SetPattern::NotIn(s) => {
                let items: Vec<String> = s.iter().map(|v| v.to_string()).collect();
                write!(f, "∉ {{{}}}", items.join(", "))
            }
        }
    }
}

/// A pattern tuple of an eCFD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcfdPattern {
    /// Entries for the LHS attributes.
    pub lhs: Vec<SetPattern>,
    /// Entries for the RHS attributes.
    pub rhs: Vec<SetPattern>,
}

impl EcfdPattern {
    /// Creates a pattern tuple.
    pub fn new(lhs: Vec<SetPattern>, rhs: Vec<SetPattern>) -> Self {
        EcfdPattern { lhs, rhs }
    }
}

/// An eCFD: a CFD whose pattern entries may be sets or negated sets.
#[derive(Clone, Debug, PartialEq)]
pub struct Ecfd {
    schema: Arc<RelationSchema>,
    lhs: Vec<usize>,
    rhs: Vec<usize>,
    tableau: Vec<EcfdPattern>,
}

impl Ecfd {
    /// Creates an eCFD from attribute names.
    pub fn new(
        schema: &Arc<RelationSchema>,
        lhs: &[&str],
        rhs: &[&str],
        tableau: Vec<EcfdPattern>,
    ) -> DqResult<Self> {
        let lhs_idx: Vec<usize> = lhs
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<DqResult<_>>()?;
        let rhs_idx: Vec<usize> = rhs
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<DqResult<_>>()?;
        for tp in &tableau {
            if tp.lhs.len() != lhs_idx.len() || tp.rhs.len() != rhs_idx.len() {
                return Err(DqError::MalformedDependency {
                    reason: "eCFD pattern tuple width mismatch".into(),
                });
            }
        }
        Ok(Ecfd {
            schema: Arc::clone(schema),
            lhs: lhs_idx,
            rhs: rhs_idx,
            tableau,
        })
    }

    /// The relation schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// LHS attribute positions.
    pub fn lhs(&self) -> &[usize] {
        &self.lhs
    }

    /// RHS attribute positions.
    pub fn rhs(&self) -> &[usize] {
        &self.rhs
    }

    /// The pattern tableau.
    pub fn tableau(&self) -> &[EcfdPattern] {
        &self.tableau
    }

    /// All constants mentioned by the eCFD for attribute position `attr`.
    pub fn constants_for(&self, attr: usize) -> Vec<Value> {
        let mut out = Vec::new();
        for tp in &self.tableau {
            for (p, &a) in tp
                .lhs
                .iter()
                .zip(&self.lhs)
                .chain(tp.rhs.iter().zip(&self.rhs))
            {
                if a == attr {
                    out.extend(p.constants());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Violations of the eCFD in `instance` — same two-pass structure as CFD
    /// detection, with the generalized match operator.  Builds a fresh index
    /// on the LHS; batch detection should share indexes through
    /// [`crate::engine::DetectionEngine`].
    pub fn violations(&self, instance: &RelationInstance) -> Vec<EcfdViolation> {
        let index = HashIndex::build(instance, &self.lhs);
        self.violations_with_index(instance, &index)
    }

    /// Violations of the eCFD, probing a caller-supplied index of `instance`
    /// on exactly [`lhs`](Self::lhs).  Returns canonical (sorted) order.
    pub fn violations_with_index(
        &self,
        instance: &RelationInstance,
        index: &HashIndex,
    ) -> Vec<EcfdViolation> {
        debug_assert_eq!(
            index.attrs(),
            self.lhs.as_slice(),
            "index keyed off the eCFD's LHS"
        );
        let mut out = Vec::new();
        // Single-tuple violations of RHS set constraints.
        for (pattern_idx, tp) in self.tableau.iter().enumerate() {
            let rhs_constrains = tp.rhs.iter().any(|p| !matches!(p, SetPattern::Any));
            if !rhs_constrains {
                continue;
            }
            for (id, tuple) in instance.iter() {
                let lhs_ok = tp
                    .lhs
                    .iter()
                    .zip(&self.lhs)
                    .all(|(p, &a)| p.matches(tuple.get(a)));
                if lhs_ok {
                    let rhs_ok = tp
                        .rhs
                        .iter()
                        .zip(&self.rhs)
                        .all(|(p, &a)| p.matches(tuple.get(a)));
                    if !rhs_ok {
                        out.push(EcfdViolation::SingleTuple {
                            pattern: pattern_idx,
                            tuple: id,
                        });
                    }
                }
            }
        }
        // Pair violations of the embedded FD restricted to matching tuples.
        //
        // Following [19], the functional (equality) requirement applies only
        // to RHS positions carrying the unnamed variable `_`; a set entry is
        // a per-tuple domain restriction (handled in the first pass) and does
        // not force two matching tuples to agree — `ecfd2` constrains NYC
        // area codes to a set without making all NYC tuples share one code.
        // As in CFD detection, partitioning each group by the projection the
        // pattern forces to be functional replaces the quadratic pair scan
        // with work linear in the group plus the reported violations.
        let mut by_proj: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        for (key, group) in index.multi_groups() {
            for (pattern_idx, tp) in self.tableau.iter().enumerate() {
                if !tp.lhs.iter().zip(key.iter()).all(|(p, v)| p.matches(v)) {
                    continue;
                }
                let equality_attrs: Vec<usize> = tp
                    .rhs
                    .iter()
                    .zip(&self.rhs)
                    .filter(|(p, _)| matches!(p, SetPattern::Any))
                    .map(|(_, &a)| a)
                    .collect();
                if equality_attrs.is_empty() {
                    continue;
                }
                by_proj.clear();
                for &id in group {
                    let tuple = instance.tuple(id).expect("live tuple");
                    by_proj
                        .entry(tuple.project(&equality_attrs))
                        .or_default()
                        .push(id);
                }
                if by_proj.len() < 2 {
                    continue;
                }
                let partitions: Vec<&Vec<TupleId>> = by_proj.values().collect();
                for (i, first_part) in partitions.iter().enumerate() {
                    for second_part in &partitions[i + 1..] {
                        for &a in *first_part {
                            for &b in *second_part {
                                let (first, second) = if a < b { (a, b) } else { (b, a) };
                                out.push(EcfdViolation::TuplePair {
                                    pattern: pattern_idx,
                                    first,
                                    second,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Canonical order, for the same report-equality reasons as CFDs.
        out.sort_unstable();
        out
    }

    /// Does the instance satisfy this eCFD?
    pub fn holds_on(&self, instance: &RelationInstance) -> bool {
        self.violations(instance).is_empty()
    }

    /// Violations of the eCFD over the interned columnar representation —
    /// set patterns are translated into per-column id sets once, then both
    /// passes compare `u32`s.  Report equals
    /// [`violations_with_index`](Self::violations_with_index) exactly.
    pub fn violations_with_interned(
        &self,
        instance: &RelationInstance,
        index: &InternedIndex,
    ) -> Vec<EcfdViolation> {
        debug_assert_eq!(
            index.attrs(),
            self.lhs.as_slice(),
            "index keyed off the eCFD's LHS"
        );
        let store = index.store();
        let lhs_cols = index.columns();
        let rhs_cols: Vec<Arc<Column>> = self
            .rhs
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        let interned_tableau: Vec<(Vec<InternedSetPattern>, Vec<InternedSetPattern>)> = self
            .tableau
            .iter()
            .map(|tp| {
                (
                    tp.lhs
                        .iter()
                        .zip(lhs_cols)
                        .map(|(p, c)| InternedSetPattern::of(p, c))
                        .collect(),
                    tp.rhs
                        .iter()
                        .zip(&rhs_cols)
                        .map(|(p, c)| InternedSetPattern::of(p, c))
                        .collect(),
                )
            })
            .collect();
        let mut out = Vec::new();
        // Pass 1: single-tuple violations of RHS set constraints.
        for (pattern_idx, (tp, (ilhs, irhs))) in
            self.tableau.iter().zip(&interned_tableau).enumerate()
        {
            let rhs_constrains = tp.rhs.iter().any(|p| !matches!(p, SetPattern::Any));
            if !rhs_constrains {
                continue;
            }
            // An `∈ S` entry whose members are all absent from the column
            // matches no row at all — skip the scan outright.
            if ilhs
                .iter()
                .any(|p| matches!(p, InternedSetPattern::In(ids) if ids.is_empty()))
            {
                continue;
            }
            for row in 0..store.len() {
                let lhs_ok = ilhs
                    .iter()
                    .zip(lhs_cols)
                    .all(|(p, c)| p.matches(c.id_at(row)));
                if lhs_ok {
                    let rhs_ok = irhs
                        .iter()
                        .zip(&rhs_cols)
                        .all(|(p, c)| p.matches(c.id_at(row)));
                    if !rhs_ok {
                        out.push(EcfdViolation::SingleTuple {
                            pattern: pattern_idx,
                            tuple: store.tuple_id(row),
                        });
                    }
                }
            }
        }
        // Pass 2: pair violations of the embedded FD restricted to matching
        // tuples.  As in the value path, the functional requirement applies
        // only to RHS positions carrying `_`; per pattern, those positions'
        // projection packs into a machine word for the group partitioning.
        let per_pattern_codec: Vec<Option<KeyCodec>> = self
            .tableau
            .iter()
            .map(|tp| {
                let equality_cols: Vec<Arc<Column>> = tp
                    .rhs
                    .iter()
                    .zip(&rhs_cols)
                    .filter(|(p, _)| matches!(p, SetPattern::Any))
                    .map(|(_, c)| Arc::clone(c))
                    .collect();
                if equality_cols.is_empty() {
                    None
                } else {
                    Some(KeyCodec::new(equality_cols))
                }
            })
            .collect();
        let mut by_proj: FxHashMap<ProjectionKey, Vec<TupleId>> = FxHashMap::default();
        for (key, rows) in index.multi_groups() {
            for (pattern_idx, (ilhs, _)) in interned_tableau.iter().enumerate() {
                if !ilhs.iter().zip(key.iter()).all(|(p, &id)| p.matches(id)) {
                    continue;
                }
                let Some(codec) = &per_pattern_codec[pattern_idx] else {
                    continue;
                };
                by_proj.clear();
                for &row in rows {
                    by_proj
                        .entry(codec.pack_row(row as usize))
                        .or_default()
                        .push(index.tuple_id(row));
                }
                if by_proj.len() < 2 {
                    continue;
                }
                let partitions: Vec<&Vec<TupleId>> = by_proj.values().collect();
                for (i, first_part) in partitions.iter().enumerate() {
                    for second_part in &partitions[i + 1..] {
                        for &a in *first_part {
                            for &b in *second_part {
                                let (first, second) = if a < b { (a, b) } else { (b, a) };
                                out.push(EcfdViolation::TuplePair {
                                    pattern: pattern_idx,
                                    first,
                                    second,
                                });
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// A [`SetPattern`] translated into one column's dictionary: member values
/// absent from the column are dropped (they can neither admit nor exclude
/// any cell), and the surviving ids are kept sorted for binary-search
/// membership tests.
#[derive(Clone, Debug)]
enum InternedSetPattern {
    Any,
    In(Vec<ValueId>),
    NotIn(Vec<ValueId>),
}

impl InternedSetPattern {
    fn of(p: &SetPattern, col: &Column) -> Self {
        let translate = |s: &BTreeSet<Value>| {
            let mut ids: Vec<ValueId> = s.iter().filter_map(|v| col.interner().lookup(v)).collect();
            ids.sort_unstable();
            ids
        };
        match p {
            SetPattern::Any => InternedSetPattern::Any,
            SetPattern::In(s) => InternedSetPattern::In(translate(s)),
            SetPattern::NotIn(s) => InternedSetPattern::NotIn(translate(s)),
        }
    }

    #[inline]
    fn matches(&self, id: ValueId) -> bool {
        match self {
            InternedSetPattern::Any => true,
            InternedSetPattern::In(ids) => ids.binary_search(&id).is_ok(),
            InternedSetPattern::NotIn(ids) => ids.binary_search(&id).is_err(),
        }
    }
}

/// A violation of an eCFD.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EcfdViolation {
    /// A tuple matching the LHS pattern fails an RHS set constraint.
    SingleTuple {
        /// Violated pattern tuple index.
        pattern: usize,
        /// The violating tuple.
        tuple: TupleId,
    },
    /// Two matching tuples agree on the LHS but differ on the RHS.
    TuplePair {
        /// Violated pattern tuple index.
        pattern: usize,
        /// First tuple.
        first: TupleId,
        /// Second tuple.
        second: TupleId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::Domain;

    fn ny_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "nycust",
            [
                ("CT", Domain::Text),
                ("AC", Domain::Int),
                ("name", Domain::Text),
            ],
        ))
    }

    fn instance(rows: &[(&str, i64, &str)]) -> RelationInstance {
        let mut inst = RelationInstance::new(ny_schema());
        for (ct, ac, name) in rows {
            inst.insert_values([Value::str(*ct), Value::int(*ac), Value::str(*name)])
                .unwrap();
        }
        inst
    }

    /// ecfd1: CT ∉ {NYC, LI} → AC (an FD conditional on the city).
    fn ecfd1() -> Ecfd {
        Ecfd::new(
            &ny_schema(),
            &["CT"],
            &["AC"],
            vec![EcfdPattern::new(
                vec![SetPattern::not_in(["NYC", "LI"])],
                vec![SetPattern::any()],
            )],
        )
        .unwrap()
    }

    /// ecfd2: CT ∈ {NYC} → AC ∈ {212, 718, 646, 347, 917}.
    fn ecfd2() -> Ecfd {
        Ecfd::new(
            &ny_schema(),
            &["CT"],
            &["AC"],
            vec![EcfdPattern::new(
                vec![SetPattern::in_set(["NYC"])],
                vec![SetPattern::in_set([212i64, 718, 646, 347, 917])],
            )],
        )
        .unwrap()
    }

    #[test]
    fn ecfd1_allows_multiple_area_codes_for_nyc_and_li() {
        let d = instance(&[
            ("NYC", 212, "a"),
            ("NYC", 718, "b"),
            ("LI", 516, "c"),
            ("LI", 631, "d"),
            ("Albany", 518, "e"),
            ("Albany", 518, "f"),
        ]);
        assert!(ecfd1().holds_on(&d));
    }

    #[test]
    fn ecfd1_rejects_two_area_codes_for_an_upstate_city() {
        let d = instance(&[("Albany", 518, "e"), ("Albany", 212, "f")]);
        let v = ecfd1().violations(&d);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], EcfdViolation::TuplePair { .. }));
    }

    #[test]
    fn ecfd2_restricts_nyc_area_codes() {
        let good = instance(&[("NYC", 212, "a"), ("NYC", 917, "b")]);
        assert!(ecfd2().holds_on(&good));
        let bad = instance(&[("NYC", 518, "a")]);
        let v = ecfd2().violations(&bad);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            EcfdViolation::SingleTuple {
                pattern: 0,
                tuple: TupleId(0)
            }
        ));
    }

    #[test]
    fn ecfd2_does_not_constrain_other_cities() {
        let d = instance(&[("Buffalo", 716, "a"), ("LI", 516, "b")]);
        assert!(ecfd2().holds_on(&d));
    }

    #[test]
    fn constants_are_collected_per_attribute() {
        let e = ecfd2();
        let s = ny_schema();
        assert_eq!(e.constants_for(s.attr("CT")), vec![Value::str("NYC")]);
        assert_eq!(e.constants_for(s.attr("AC")).len(), 5);
        assert!(e.constants_for(s.attr("name")).is_empty());
    }

    #[test]
    fn interned_detection_equals_value_detection() {
        let d = instance(&[
            ("NYC", 212, "a"),
            ("NYC", 518, "b"),
            ("Albany", 518, "c"),
            ("Albany", 212, "d"),
            ("Buffalo", 716, "e"),
            ("Buffalo", 716, "f"),
        ]);
        let store = d.columnar();
        for ecfd in [ecfd1(), ecfd2()] {
            let index = InternedIndex::build(&d, &store, ecfd.lhs(), 1);
            assert_eq!(
                ecfd.violations_with_interned(&d, &index),
                ecfd.violations(&d)
            );
        }
        // Sets whose members are absent from the instance still behave.
        let ghost = Ecfd::new(
            &ny_schema(),
            &["CT"],
            &["AC"],
            vec![EcfdPattern::new(
                vec![SetPattern::in_set(["Utica"])],
                vec![SetPattern::not_in([999i64])],
            )],
        )
        .unwrap();
        let index = InternedIndex::build(&d, &store, ghost.lhs(), 1);
        assert_eq!(
            ghost.violations_with_interned(&d, &index),
            ghost.violations(&d)
        );
    }

    #[test]
    fn set_pattern_matching() {
        assert!(SetPattern::any().matches(&Value::int(7)));
        assert!(SetPattern::eq("x").matches(&Value::str("x")));
        assert!(!SetPattern::eq("x").matches(&Value::str("y")));
        assert!(SetPattern::not_in(["x"]).matches(&Value::str("y")));
        assert!(!SetPattern::not_in(["x"]).matches(&Value::str("x")));
    }

    #[test]
    fn width_mismatch_is_rejected() {
        assert!(Ecfd::new(
            &ny_schema(),
            &["CT"],
            &["AC"],
            vec![EcfdPattern::new(vec![], vec![SetPattern::any()])],
        )
        .is_err());
    }

    #[test]
    fn display_of_set_patterns() {
        assert_eq!(SetPattern::any().to_string(), "_");
        assert!(SetPattern::in_set(["NYC"]).to_string().contains("NYC"));
        assert!(SetPattern::not_in(["LI"]).to_string().contains("∉"));
    }
}
