//! Shard-cursor violation detection.
//!
//! The detectors here consume a [`ShardSource`] instead of a
//! [`RelationInstance`](dq_relation::RelationInstance) + index pair, so the
//! same pass runs over an in-RAM columnar snapshot *or* a memory-mapped
//! on-disk relation ([`dq_relation::MappedRelation`]) whose id segments page
//! in behind the cursor.  Resident memory is bounded by
//! O(dictionaries + one shard + grouping state + violation output) — no
//! materialized tuples, no pooled index.
//!
//! Both detectors reproduce their indexed counterparts **byte-identically**:
//! the indexed paths end in `sort_unstable()` to canonicalize hash-order
//! nondeterminism, and the streamed paths produce the same violation *set*
//! and apply the same final sort.  The property suites assert the identity
//! over both backings.

use crate::cfd::{Cfd, CfdViolation};
use crate::denial::{DcTerm, DenialConstraint};
use crate::interned::InternedEntry;
use dq_relation::{Column, FxHashMap, KeyCodec, ProjectionKey, ShardSource, TupleId, Value};
use std::sync::Arc;

/// Groups row positions by their packed key projection, keeping only groups
/// of two or more rows (the only ones that can produce pair violations).
///
/// Two scans: the first counts keys, the second collects member rows for
/// keys seen at least twice — so the collection phase allocates nothing for
/// the (typically dominant) singleton keys.  Member rows are in ascending
/// row order, matching the CSR group order of an interned index.
fn multi_groups_streamed(
    source: &dyn ShardSource,
    codec: &KeyCodec,
) -> FxHashMap<ProjectionKey, Vec<u32>> {
    let mut counts: FxHashMap<ProjectionKey, u32> = FxHashMap::default();
    for shard in 0..source.shard_count() {
        for row in source.shard_range(shard) {
            *counts.entry(codec.pack_row(row)).or_insert(0) += 1;
        }
    }
    let mut groups: FxHashMap<ProjectionKey, Vec<u32>> = FxHashMap::default();
    for shard in 0..source.shard_count() {
        for row in source.shard_range(shard) {
            let key = codec.pack_row(row);
            if counts.get(&key).copied().unwrap_or(0) >= 2 {
                groups.entry(key).or_default().push(row as u32);
            }
        }
    }
    groups
}

/// All violations of `cfd` over a shard source, in the canonical (sorted)
/// order of [`Cfd::violations_with_interned`] — the two produce identical
/// reports over the same logical relation.
pub fn cfd_violations_from_shards(cfd: &Cfd, source: &dyn ShardSource) -> Vec<CfdViolation> {
    let lhs_cols: Vec<Arc<Column>> = cfd.lhs().iter().map(|&a| source.column(a)).collect();
    let rhs_cols: Vec<Arc<Column>> = cfd.rhs().iter().map(|&a| source.column(a)).collect();
    let interned_tableau: Vec<(Vec<InternedEntry>, Vec<InternedEntry>)> = cfd
        .tableau()
        .iter()
        .map(|tp| {
            (
                InternedEntry::of_all(&tp.lhs, &lhs_cols),
                InternedEntry::of_all(&tp.rhs, &rhs_cols),
            )
        })
        .collect();
    let mut out = Vec::new();
    // Pass 1: single-tuple (constant) violations, one sequential sweep of
    // the shards per pattern with a constant RHS.
    for (pattern_idx, (tp, (ilhs, irhs))) in cfd.tableau().iter().zip(&interned_tableau).enumerate()
    {
        let has_rhs_constant = tp.rhs.iter().any(|p| !p.is_any());
        if !has_rhs_constant {
            continue;
        }
        if ilhs.iter().any(|e| matches!(e, InternedEntry::Absent)) {
            continue;
        }
        for shard in 0..source.shard_count() {
            for row in source.shard_range(shard) {
                if InternedEntry::all_match_row(ilhs, &lhs_cols, row)
                    && !InternedEntry::all_match_row(irhs, &rhs_cols, row)
                {
                    out.push(CfdViolation::SingleTuple {
                        pattern: pattern_idx,
                        tuple: source.tuple_id(row),
                    });
                }
            }
        }
    }
    // Pass 2: tuple-pair (variable) violations.  Same partition-by-RHS
    // strategy as the indexed path, but the X-groups come from a two-scan
    // count→collect over the shards instead of a CSR index.
    let lhs_codec = KeyCodec::new(lhs_cols.clone());
    let rhs_codec = KeyCodec::new(rhs_cols);
    let groups = multi_groups_streamed(source, &lhs_codec);
    let mut by_rhs: FxHashMap<ProjectionKey, Vec<TupleId>> = FxHashMap::default();
    let mut matching_patterns: Vec<usize> = Vec::new();
    for rows in groups.values() {
        // Every row of a group shares the LHS key, so matching the first
        // member row is matching the key (the packed `ProjectionKey` itself
        // is opaque outside dq-relation).
        let witness = rows[0] as usize;
        matching_patterns.clear();
        matching_patterns.extend(
            interned_tableau
                .iter()
                .enumerate()
                .filter(|(_, (ilhs, _))| InternedEntry::all_match_row(ilhs, &lhs_cols, witness))
                .map(|(i, _)| i),
        );
        if matching_patterns.is_empty() {
            continue;
        }
        by_rhs.clear();
        for &row in rows {
            by_rhs
                .entry(rhs_codec.pack_row(row as usize))
                .or_default()
                .push(source.tuple_id(row as usize));
        }
        if by_rhs.len() < 2 {
            continue; // the whole group agrees on Y
        }
        let partitions: Vec<&Vec<TupleId>> = by_rhs.values().collect();
        for (i, first_part) in partitions.iter().enumerate() {
            for second_part in &partitions[i + 1..] {
                for &a in *first_part {
                    for &b in *second_part {
                        let (first, second) = if a < b { (a, b) } else { (b, a) };
                        for &p in &matching_patterns {
                            out.push(CfdViolation::TuplePair {
                                pattern: p,
                                first,
                                second,
                            });
                        }
                    }
                }
            }
        }
    }
    for shard in 0..source.shard_count() {
        source.release_shard(shard);
    }
    out.sort_unstable();
    out
}

/// Evaluates a [`DcTerm`] for a row assignment, resolving attribute cells
/// through the column dictionaries (value semantics are preserved exactly:
/// `resolve(id_at(row))` *is* the cell's [`Value`]).
#[inline]
fn term_value<'a>(term: &'a DcTerm, cols: &'a [Arc<Column>], rows: &[usize]) -> &'a Value {
    match term {
        DcTerm::Attr { var, attr } => cols[*attr]
            .interner()
            .resolve(cols[*attr].id_at(rows[*var])),
        DcTerm::Const(v) => v,
    }
}

/// Does `dc`'s conjunction hold for the row assignment `rows` (one row
/// position per tuple variable)?
#[inline]
fn predicates_hold(dc: &DenialConstraint, cols: &[Arc<Column>], rows: &[usize]) -> bool {
    dc.predicates.iter().all(|p| {
        p.op.eval(
            term_value(&p.left, cols, rows),
            term_value(&p.right, cols, rows),
        )
    })
}

/// All violations of `dc` over a shard source.
///
/// Produces exactly the report of
/// [`DenialConstraint::violations_with_interned_index`] when the constraint
/// is pair-partitionable, and of [`DenialConstraint::violations`] otherwise
/// — including the latter's ordered-pair convention for asymmetric
/// predicates (only the evaluation order whose first tuple id is smaller is
/// reported).
pub fn denial_violations_from_shards(
    dc: &DenialConstraint,
    source: &dyn ShardSource,
) -> Vec<Vec<TupleId>> {
    let arity = source.schema().arity();
    let cols: Vec<Arc<Column>> = (0..arity).map(|a| source.column(a)).collect();
    let mut out: Vec<Vec<TupleId>> = Vec::new();
    match dc.vars {
        0 => {}
        1 => {
            // Single-variable: one sequential sweep; ascending row order is
            // ascending tuple-id order, matching the instance-iteration path.
            for shard in 0..source.shard_count() {
                for row in source.shard_range(shard) {
                    if predicates_hold(dc, &cols, &[row]) {
                        out.push(vec![source.tuple_id(row)]);
                    }
                }
            }
        }
        2 => {
            if let Some(attrs) = dc.pair_partition_attrs() {
                // Partitionable: candidate pairs agree on `attrs`, so group
                // on those columns and enumerate i<j pairs per group —
                // exactly the interned-index strategy.
                let codec = KeyCodec::new(attrs.iter().map(|&a| Arc::clone(&cols[a])).collect());
                let groups = multi_groups_streamed(source, &codec);
                for rows in groups.values() {
                    for (i, &r1) in rows.iter().enumerate() {
                        for &r2 in &rows[i + 1..] {
                            if predicates_hold(dc, &cols, &[r1 as usize, r2 as usize]) {
                                out.push(vec![
                                    source.tuple_id(r1 as usize),
                                    source.tuple_id(r2 as usize),
                                ]);
                            }
                        }
                    }
                }
                out.sort_unstable();
            } else {
                // General two-variable constraints need every ordered pair;
                // mirror `DenialConstraint::violations` exactly, including
                // reporting only the orientation whose first id is smaller.
                let n = source.len();
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let (id1, id2) = (source.tuple_id(i), source.tuple_id(j));
                        if id1 < id2 && predicates_hold(dc, &cols, &[i, j]) {
                            out.push(vec![id1, id2]);
                        }
                    }
                }
            }
        }
        _ => {}
    }
    for shard in 0..source.shard_count() {
        source.release_shard(shard);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{cst, wild, PatternTuple};
    use dq_relation::{CompOp, Value};
    use dq_relation::{Domain, RelationInstance, RelationSchema, StoreShardSource};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "cust",
            [
                ("cc", Domain::Int),
                ("ac", Domain::Int),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    fn instance(rows: usize) -> RelationInstance {
        let schema = schema();
        let mut inst = RelationInstance::new(schema);
        for i in 0..rows {
            inst.insert(
                vec![
                    Value::from(44i64 - (i % 3) as i64),
                    Value::from((i % 7) as i64),
                    Value::from(format!("city{}", i % 5)),
                    Value::from(format!("zip{}", i % 11)),
                ]
                .into(),
            )
            .unwrap();
        }
        inst
    }

    fn cfd() -> Cfd {
        Cfd::new(
            &schema(),
            &["cc", "ac"],
            &["city"],
            vec![
                PatternTuple::new(vec![cst(44i64), wild()], vec![wild()]),
                PatternTuple::new(vec![cst(43i64), cst(2i64)], vec![cst("city0")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn streamed_cfd_matches_interned() {
        let inst = instance(500);
        let cfd = cfd();
        let expected = cfd.violations(&inst);
        let source = StoreShardSource::new(&inst);
        let got = cfd_violations_from_shards(&cfd, &source);
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "fixture should actually violate");
    }

    #[test]
    fn streamed_denial_matches_reference_partitionable() {
        let inst = instance(400);
        // FD-shaped: t1[ac]=t2[ac] ∧ t1[city]≠t2[city].
        let dc = DenialConstraint::new(
            "cust",
            2,
            vec![
                crate::denial::DcPredicate::new(DcTerm::attr(0, 1), CompOp::Eq, DcTerm::attr(1, 1)),
                crate::denial::DcPredicate::new(DcTerm::attr(0, 2), CompOp::Ne, DcTerm::attr(1, 2)),
            ],
        );
        assert!(dc.pair_partition_attrs().is_some());
        let mut expected = dc.violations(&inst);
        expected.sort_unstable();
        let source = StoreShardSource::new(&inst);
        let got = denial_violations_from_shards(&dc, &source);
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn streamed_denial_matches_reference_general() {
        let inst = instance(60);
        // Asymmetric, non-partitionable: t1[ac] < t2[ac] ∧ t1[cc] > t2[cc].
        let dc = DenialConstraint::new(
            "cust",
            2,
            vec![
                crate::denial::DcPredicate::new(DcTerm::attr(0, 1), CompOp::Lt, DcTerm::attr(1, 1)),
                crate::denial::DcPredicate::new(DcTerm::attr(0, 0), CompOp::Gt, DcTerm::attr(1, 0)),
            ],
        );
        assert!(dc.pair_partition_attrs().is_none());
        let expected = dc.violations(&inst);
        let source = StoreShardSource::new(&inst);
        let got = denial_violations_from_shards(&dc, &source);
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn streamed_denial_single_var() {
        let inst = instance(100);
        let dc = DenialConstraint::new(
            "cust",
            1,
            vec![crate::denial::DcPredicate::new(
                DcTerm::attr(0, 0),
                CompOp::Eq,
                DcTerm::val(43i64),
            )],
        );
        let expected = dc.violations(&inst);
        let source = StoreShardSource::new(&inst);
        let got = denial_violations_from_shards(&dc, &source);
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }
}
