//! A shared-index, parallel violation-detection engine.
//!
//! The naive detectors of [`crate::detect`] build one hash index per
//! dependency per call, even when dependencies share left-hand sides (every
//! normalized fragment of a CFD keeps its parent's LHS) and even when the
//! same instance is checked repeatedly.  On the paper's Fig. 1 scaling
//! workloads index construction dominates detection, so the engine attacks
//! exactly that cost:
//!
//! * **index sharing** — dependencies are grouped by their LHS attribute
//!   set, each distinct index is built once and memoized in an
//!   [`IndexPool`] keyed by `(instance identity, version, attributes)`, so
//!   repeated runs over an unchanged instance rebuild nothing;
//! * **parallel fan-out** — index construction and per-dependency detection
//!   both spread across a scoped thread pool sized to the machine.
//!
//! * **interned storage** — detection runs over the instance's columnar
//!   snapshot ([`dq_relation::ColumnarStore`]): per-column dictionaries
//!   encode every value as a dense `u32`, indexes pack multi-attribute keys
//!   into machine words ([`dq_relation::InternedIndex`]), and a cold build
//!   shards across the thread pool so even a *single* huge dependency
//!   parallelizes within its index.
//!
//! The engine is a pure optimization: for every dependency class it produces
//! a report equal (including order — violation lists are canonicalized) to
//! the corresponding naive detector's, which `tests/detect_equivalence.rs`
//! checks property-style across generated workloads.

use crate::cfd::{Cfd, CfdViolation};
use crate::cind::Cind;
use crate::denial::DenialConstraint;
use crate::detect::{
    incremental_cfd_violations_with_interned, CfdViolationReport, CindViolationReport,
    EcfdViolationReport,
};
use crate::ecfd::{Ecfd, EcfdViolation};
use crate::ind::Ind;
use dq_relation::store::FxHashMap;
use dq_relation::{
    CellChange, Column, ColumnarStore, Database, DqResult, IndexPool, IndexPoolStats,
    InternedIndex, KeyCodec, ProjectionKey, RelationInstance, ShardSource, TupleId, Value,
};
use std::collections::BTreeSet;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// Shared-index, parallel violation detection over sets of dependencies.
///
/// Construction is cheap; the value of a long-lived engine is its warm
/// [`IndexPool`], so prefer one engine per instance-checking context over
/// one per call.
#[derive(Debug)]
pub struct DetectionEngine {
    pool: IndexPool,
    threads: usize,
}

impl Default for DetectionEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DetectionEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// An engine using at most `threads` worker threads (1 = sequential,
    /// still index-sharing).
    pub fn with_threads(threads: usize) -> Self {
        DetectionEngine {
            pool: IndexPool::default(),
            threads: threads.max(1),
        }
    }

    /// The engine's index pool (exposed for cache management and stats).
    pub fn pool(&self) -> &IndexPool {
        &self.pool
    }

    /// The engine's worker-thread budget (callers borrowing the pool for
    /// their own index builds should size cold builds the same way).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache counters — how much index construction the pool saved.
    pub fn pool_stats(&self) -> IndexPoolStats {
        self.pool.stats()
    }

    /// Runs one pooled index build per item, spending parallelism where it
    /// pays: with at least as many builds as workers — or when the data is
    /// too small to shard (`sharded == false`) — the builds run concurrently
    /// with one thread each; otherwise the few builds run in sequence and
    /// each parallelizes internally across the columnar store's row shards,
    /// so a single huge dependency still uses the whole pool.
    fn warm_builds<T: Sync>(&self, items: &[T], sharded: bool, build: impl Fn(&T, usize) + Sync) {
        if items.is_empty() {
            return;
        }
        if items.len() >= self.threads || !sharded {
            parallel_map(items, self.threads, |item| build(item, 1));
        } else {
            for item in items {
                build(item, self.threads);
            }
        }
    }

    /// Builds every interned index the LHS groups of `lhs_sets` need,
    /// warming the pool before detection fans out.
    fn warm_interned(&self, instance: &RelationInstance, lhs_sets: BTreeSet<Vec<usize>>) {
        let distinct: Vec<Vec<usize>> = lhs_sets.into_iter().collect();
        if distinct.is_empty() {
            return;
        }
        let sharded = instance.columnar().shard_count() > 1;
        self.warm_builds(&distinct, sharded, |lhs, threads| {
            self.pool.interned_for(instance, lhs, threads);
        });
    }

    /// Detects all violations of `cfds` in `instance`.
    ///
    /// Equivalent to [`crate::detect::detect_cfd_violations`] — same
    /// per-dependency violation lists in the same order.
    pub fn detect_cfd_violations(
        &self,
        instance: &RelationInstance,
        cfds: &[Cfd],
    ) -> CfdViolationReport {
        let _span = dq_obs::span!(
            "detect.cfd",
            relation = instance.schema().name(),
            deps = cfds.len()
        );
        self.warm_interned(instance, cfds.iter().map(|c| c.lhs().to_vec()).collect());
        let per_dependency: Vec<Vec<CfdViolation>> = parallel_map(cfds, self.threads, |cfd| {
            let index = self.pool.interned_for(instance, cfd.lhs(), 1);
            cfd.violations_with_interned(instance, &index)
        });
        CfdViolationReport::from_per_dependency(per_dependency)
    }

    /// Detection over a pre-vetted rule set from
    /// [`analyze_cfds`](crate::analysis::analyze_cfds): runs
    /// [`detect_cfd_violations`](Self::detect_cfd_violations) on the
    /// analyzed (consistency-checked and possibly cover-pruned) rules, so
    /// callers that vet once can hand the vetted set straight to the engine
    /// without re-extracting the rule vector.
    pub fn detect_analyzed_cfd_violations(
        &self,
        instance: &RelationInstance,
        analyzed: &crate::analysis::AnalyzedCfds,
    ) -> CfdViolationReport {
        self.detect_cfd_violations(instance, &analyzed.rules)
    }

    /// Incremental detection: violations involving at least one tuple of
    /// `added`, assuming the rest of `instance` was already checked.
    ///
    /// Equivalent to [`crate::detect::detect_cfd_violations_incremental`],
    /// but builds each distinct-LHS index once (pooled) instead of once per
    /// CFD per call.
    pub fn detect_cfd_violations_incremental(
        &self,
        instance: &RelationInstance,
        cfds: &[Cfd],
        added: &[TupleId],
    ) -> CfdViolationReport {
        let _span = dq_obs::span!("detect.cfd.incremental", added = added.len());
        self.warm_interned(instance, cfds.iter().map(|c| c.lhs().to_vec()).collect());
        let per_dependency: Vec<Vec<CfdViolation>> = parallel_map(cfds, self.threads, |cfd| {
            let index = self.pool.interned_for(instance, cfd.lhs(), 1);
            incremental_cfd_violations_with_interned(instance, cfd, added, &index)
        });
        CfdViolationReport::from_per_dependency(per_dependency)
    }

    /// Detects all violations of `ecfds` in `instance`.
    ///
    /// Equivalent to [`crate::detect::detect_ecfd_violations`].
    pub fn detect_ecfd_violations(
        &self,
        instance: &RelationInstance,
        ecfds: &[Ecfd],
    ) -> EcfdViolationReport {
        let _span = dq_obs::span!("detect.ecfd", deps = ecfds.len());
        self.warm_interned(instance, ecfds.iter().map(|e| e.lhs().to_vec()).collect());
        let per_dependency: Vec<Vec<EcfdViolation>> = parallel_map(ecfds, self.threads, |ecfd| {
            let index = self.pool.interned_for(instance, ecfd.lhs(), 1);
            ecfd.violations_with_interned(instance, &index)
        });
        EcfdViolationReport::from_per_dependency(per_dependency)
    }

    /// Detects all violations of denial `constraints` in `instance`.
    ///
    /// Equivalent to [`crate::detect::detect_denial_violations`].
    /// Two-variable constraints with attribute equalities (FD- and key-shaped
    /// constraints) are evaluated through a shared interned partition on
    /// those attributes instead of the naive quadratic pair scan; other
    /// shapes fall back to the naive evaluator, in parallel either way.
    pub fn detect_denial_violations(
        &self,
        instance: &RelationInstance,
        constraints: &[DenialConstraint],
    ) -> Vec<Vec<Vec<TupleId>>> {
        let _span = dq_obs::span!("detect.denial", deps = constraints.len());
        self.warm_interned(
            instance,
            constraints
                .iter()
                .filter_map(|dc| dc.pair_partition_attrs())
                .collect(),
        );
        parallel_map(constraints, self.threads, |dc| {
            match dc.pair_partition_attrs() {
                Some(attrs) => {
                    let index = self.pool.interned_for(instance, &attrs, 1);
                    dc.violations_with_interned_index(instance, &index)
                }
                None => dc.violations(instance),
            }
        })
    }

    /// Shard-cursor CFD detection over any [`ShardSource`] — an in-RAM
    /// snapshot or a memory-mapped on-disk relation.  No pooled index is
    /// built; each dependency streams the shards, so resident memory stays
    /// bounded by the dictionaries plus grouping state.  Produces exactly
    /// [`detect_cfd_violations`](Self::detect_cfd_violations)'s report over
    /// the same logical relation.
    pub fn detect_cfd_violations_from_shards(
        &self,
        source: &dyn ShardSource,
        cfds: &[Cfd],
    ) -> CfdViolationReport {
        let _span = dq_obs::span!(
            "detect.cfd.stream",
            relation = source.schema().name(),
            deps = cfds.len()
        );
        let per_dependency: Vec<Vec<CfdViolation>> = parallel_map(cfds, self.threads, |cfd| {
            crate::stream::cfd_violations_from_shards(cfd, source)
        });
        CfdViolationReport::from_per_dependency(per_dependency)
    }

    /// Shard-cursor denial-constraint detection over any [`ShardSource`].
    /// Produces exactly
    /// [`detect_denial_violations`](Self::detect_denial_violations)'s
    /// reports over the same logical relation.
    pub fn detect_denial_violations_from_shards(
        &self,
        source: &dyn ShardSource,
        constraints: &[DenialConstraint],
    ) -> Vec<Vec<Vec<TupleId>>> {
        let _span = dq_obs::span!(
            "detect.denial.stream",
            relation = source.schema().name(),
            deps = constraints.len()
        );
        parallel_map(constraints, self.threads, |dc| {
            crate::stream::denial_violations_from_shards(dc, source)
        })
    }

    /// Detects all violations of `cinds` in `db`, sharing one pooled
    /// interned probe index per distinct `(RHS relation, Y ++ Yp)` pair and
    /// fanning out across dependencies.
    ///
    /// Equivalent to [`crate::detect::detect_cind_violations`] — same
    /// per-dependency violation lists in the same order.
    pub fn detect_cind_violations(
        &self,
        db: &Database,
        cinds: &[Cind],
    ) -> DqResult<CindViolationReport> {
        let _span = dq_obs::span!("detect.cind", deps = cinds.len());
        let mut probes: BTreeSet<(&str, Vec<usize>)> = BTreeSet::new();
        for cind in cinds {
            probes.insert((cind.rhs_schema().name(), cind.rhs_probe_attrs()));
        }
        let probes: Vec<(&str, Vec<usize>)> = probes.into_iter().collect();
        // Validate every probed relation up front so warming cannot panic.
        for (name, _) in &probes {
            db.require_relation(name)?;
        }
        let sharded = probes.iter().any(|(name, _)| {
            db.relation(name)
                .is_some_and(|r| r.columnar().shard_count() > 1)
        });
        self.warm_builds(&probes, sharded, |(name, attrs), threads| {
            let rhs = db.relation(name).expect("validated above");
            self.pool.interned_for(rhs, attrs, threads);
        });
        let per_dependency = try_parallel_map(cinds, self.threads, |cind| {
            let rhs = db.require_relation(cind.rhs_schema().name())?;
            let index = self.pool.interned_for(rhs, &cind.rhs_probe_attrs(), 1);
            cind.violations_with_interned_index(db, &index)
        })?;
        Ok(CindViolationReport::from_per_dependency(per_dependency))
    }

    /// Detects all violations of `inds` in `db`, sharing one pooled interned
    /// index per distinct `(LHS relation, X)` and one pooled
    /// distinct-projection set per distinct `(RHS relation, Y)`, fanning out
    /// across dependencies.  `ignore_nulls` switches to SQL-style IND
    /// semantics (see [`Ind::violations_with`]).
    ///
    /// Equivalent to calling [`Ind::violations_with`] per dependency — same
    /// per-dependency violation lists in the same (ascending tuple id)
    /// order.
    pub fn detect_ind_violations(
        &self,
        db: &Database,
        inds: &[Ind],
        ignore_nulls: bool,
    ) -> DqResult<Vec<Vec<TupleId>>> {
        let _span = dq_obs::span!("detect.ind", deps = inds.len());
        let mut lhs_builds: BTreeSet<(&str, Vec<usize>)> = BTreeSet::new();
        let mut rhs_builds: BTreeSet<(&str, Vec<usize>)> = BTreeSet::new();
        for ind in inds {
            db.require_relation(ind.lhs_relation())?;
            db.require_relation(ind.rhs_relation())?;
            lhs_builds.insert((ind.lhs_relation(), ind.lhs_attrs().to_vec()));
            rhs_builds.insert((ind.rhs_relation(), ind.rhs_attrs().to_vec()));
        }
        let lhs_builds: Vec<(&str, Vec<usize>)> = lhs_builds.into_iter().collect();
        let rhs_builds: Vec<(&str, Vec<usize>)> = rhs_builds.into_iter().collect();
        let sharded = |builds: &[(&str, Vec<usize>)]| {
            builds.iter().any(|(name, _)| {
                db.relation(name)
                    .is_some_and(|r| r.columnar().shard_count() > 1)
            })
        };
        self.warm_builds(
            &lhs_builds,
            sharded(&lhs_builds),
            |(name, attrs), threads| {
                let lhs = db.relation(name).expect("validated above");
                self.pool.interned_for(lhs, attrs, threads);
            },
        );
        self.warm_builds(
            &rhs_builds,
            sharded(&rhs_builds),
            |(name, attrs), threads| {
                let rhs = db.relation(name).expect("validated above");
                self.pool.distinct_for(rhs, attrs, threads);
            },
        );
        Ok(parallel_map(inds, self.threads, |ind| {
            let lhs = db.relation(ind.lhs_relation()).expect("validated above");
            let rhs = db.relation(ind.rhs_relation()).expect("validated above");
            let index = self.pool.interned_for(lhs, ind.lhs_attrs(), 1);
            let distinct = self.pool.distinct_for(rhs, ind.rhs_attrs(), 1);
            ind.violations_with_interned(&index, &distinct, ignore_nulls)
        }))
    }

    /// A CFD violation report kept incrementally up to date across journaled
    /// cell edits and appends.
    ///
    /// With no usable `prev` — first call, different instance, different
    /// dependency count, or a gap the instance's delta journal does not
    /// cover ([`RelationInstance::delta_covers`]) — this is full detection.
    /// Otherwise only the *delta* is re-checked: tuples with an edited
    /// LHS/RHS cell or appended since `prev`, plus the LHS groups those
    /// tuples left or joined; every other dependency's violations and every
    /// untouched group's pair violations carry over verbatim.  Combined
    /// with the pool's patch path, a small edit costs work proportional to
    /// the cells changed and the groups touched, not `O(n · |cfds|)`.
    ///
    /// `cfds` must be the same dependency list `prev` was computed over.
    /// The returned report always equals
    /// [`detect_cfd_violations`](Self::detect_cfd_violations) at the
    /// instance's current version.
    pub fn maintain_cfd_violations(
        &self,
        instance: &RelationInstance,
        cfds: &[Cfd],
        prev: Option<&MaintainedCfdViolations>,
    ) -> MaintainedCfdViolations {
        let _span = dq_obs::span("maintain.cfd");
        let instance_id = instance.instance_id();
        let version = instance.version();
        let usable = prev.filter(|p| {
            p.instance_id == instance_id
                && p.report.per_dependency().len() == cfds.len()
                && instance.delta_covers(p.version)
        });
        let report = match usable {
            None => {
                dq_obs::inc("maintain.cfd.full");
                self.detect_cfd_violations(instance, cfds)
            }
            Some(p) if p.version == version => {
                dq_obs::inc("maintain.cfd.reuse");
                p.report.clone()
            }
            Some(p) => {
                dq_obs::inc("maintain.cfd.patch");
                let changes = instance
                    .changed_cells_since(p.version)
                    .expect("delta covers the gap");
                let store = instance.columnar();
                // Journaled gaps have no removals, so the previous snapshot's
                // rows are a prefix of the current one: everything past it
                // was appended.
                let appended: Vec<TupleId> = (p.store.len()..store.len())
                    .map(|row| store.tuple_id(row))
                    .collect();
                self.warm_interned(instance, cfds.iter().map(|c| c.lhs().to_vec()).collect());
                let items: Vec<(&Cfd, &Vec<CfdViolation>)> =
                    cfds.iter().zip(p.report.per_dependency()).collect();
                let per_dependency =
                    parallel_map(&items, self.threads, |(cfd, prev_violations)| {
                        let index = self.pool.interned_for(instance, cfd.lhs(), 1);
                        maintained_cfd_violations(
                            instance,
                            cfd,
                            prev_violations,
                            &changes,
                            &appended,
                            &index,
                        )
                    });
                CfdViolationReport::from_per_dependency(per_dependency)
            }
        };
        MaintainedCfdViolations {
            instance_id,
            version,
            store: instance.columnar(),
            report,
        }
    }

    /// Does `db` satisfy `ind`?  Probes pooled distinct-projection sets on
    /// both sides — per *distinct key* work, no postings needed — so
    /// repeated checks over an unchanged (or append-only growing) database
    /// rebuild nothing.
    pub fn ind_holds(&self, db: &Database, ind: &Ind, ignore_nulls: bool) -> DqResult<bool> {
        let lhs = db.require_relation(ind.lhs_relation())?;
        let rhs = db.require_relation(ind.rhs_relation())?;
        let lhs_set = self.pool.distinct_for(lhs, ind.lhs_attrs(), self.threads);
        let rhs_set = self.pool.distinct_for(rhs, ind.rhs_attrs(), self.threads);
        Ok(lhs_set.included_in(&rhs_set, ignore_nulls))
    }
}

/// A CFD violation report plus the snapshot identity needed to bring it up
/// to date incrementally — produced and consumed by
/// [`DetectionEngine::maintain_cfd_violations`].
#[derive(Clone, Debug)]
pub struct MaintainedCfdViolations {
    instance_id: u64,
    version: u64,
    store: Arc<ColumnarStore>,
    report: CfdViolationReport,
}

impl MaintainedCfdViolations {
    /// The maintained report — equal to full detection at
    /// [`version`](Self::version).
    pub fn report(&self) -> &CfdViolationReport {
        &self.report
    }

    /// Consumes the maintenance state, yielding the report.
    pub fn into_report(self) -> CfdViolationReport {
        self.report
    }

    /// The instance version the report is current for.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One dependency's share of a maintenance round: carry over what the delta
/// cannot have changed, re-derive the rest.
///
/// A tuple is *affected* when one of its LHS/RHS cells changed or it was
/// appended; its single-tuple violation status is a function of its own
/// cells only, so unaffected tuples keep their prev verdicts and affected
/// ones are re-checked.  For pairs the delta is even more local: a pair of
/// two *unaffected* tuples cannot have changed at all — neither member's X
/// or Y cells moved, so their shared group key, their Y disagreement and
/// the matching patterns are exactly as before.  Every created or destroyed
/// pair therefore involves at least one affected tuple: prev pairs with an
/// affected member are dropped, and each affected tuple's pairs are
/// re-derived against its *current* LHS group off the (patched) index —
/// `O(affected · group size)` work, independent of how many pairs the rest
/// of the group carries.
fn maintained_cfd_violations(
    instance: &RelationInstance,
    cfd: &Cfd,
    prev: &[CfdViolation],
    changes: &[CellChange],
    appended: &[TupleId],
    index: &InternedIndex,
) -> Vec<CfdViolation> {
    let relevant = |attr: usize| cfd.lhs().contains(&attr) || cfd.rhs().contains(&attr);
    let mut affected: BTreeSet<TupleId> = appended.iter().copied().collect();
    for c in changes {
        if relevant(c.cell.attr) {
            affected.insert(c.cell.tuple);
        }
    }
    if affected.is_empty() {
        return prev.to_vec();
    }
    let affected_ids: Vec<TupleId> = affected.iter().copied().collect();
    let is_affected = |id: &TupleId| affected_ids.binary_search(id).is_ok();
    // `prev` is canonically sorted and filtering preserves order, so the
    // carried-over half needs no re-sort.
    let mut kept: Vec<CfdViolation> = Vec::with_capacity(prev.len());
    for v in prev {
        let keep = match v {
            CfdViolation::SingleTuple { tuple, .. } => !is_affected(tuple),
            CfdViolation::TuplePair { first, second, .. } => {
                !is_affected(first) && !is_affected(second)
            }
        };
        if keep {
            kept.push(*v);
        }
    }
    let mut out: Vec<CfdViolation> = Vec::new();
    // Re-check singles of affected tuples.
    for (pattern_idx, tp) in cfd.tableau().iter().enumerate() {
        if tp.rhs.iter().all(|p| p.is_any()) {
            continue;
        }
        for &id in &affected {
            let Some(tuple) = instance.tuple(id) else {
                continue;
            };
            if tp.lhs_matches(tuple, cfd.lhs()) && !tp.rhs_matches(tuple, cfd.rhs()) {
                out.push(CfdViolation::SingleTuple {
                    pattern: pattern_idx,
                    tuple: id,
                });
            }
        }
    }
    // Re-derive every pair involving an affected tuple from that tuple's
    // *current* group.  The per-row RHS projection packs into a machine
    // word off the columnar snapshot, mirroring pass 2 of
    // `Cfd::violations_with_interned`; affected tuples sharing a group are
    // handled in one scan of it.
    let store = index.store();
    let rhs_cols: Vec<Arc<Column>> = cfd
        .rhs()
        .iter()
        .map(|&a| store.column(instance, a))
        .collect();
    let rhs_codec = KeyCodec::new(rhs_cols);
    let mut by_group: FxHashMap<Vec<Value>, Vec<TupleId>> = FxHashMap::default();
    for &id in &affected_ids {
        let Some(tuple) = instance.tuple(id) else {
            continue;
        };
        by_group
            .entry(tuple.project(cfd.lhs()))
            .or_default()
            .push(id);
    }
    for (key, members) in &by_group {
        let rows = index.rows_for_values(key);
        if rows.len() < 2 {
            continue;
        }
        let matching_patterns: Vec<usize> = cfd
            .tableau()
            .iter()
            .enumerate()
            .filter(|(_, tp)| tp.lhs.iter().zip(key.iter()).all(|(p, v)| p.matches(v)))
            .map(|(i, _)| i)
            .collect();
        if matching_patterns.is_empty() {
            continue;
        }
        let packed: Vec<(TupleId, ProjectionKey)> = rows
            .iter()
            .map(|&row| (index.tuple_id(row), rhs_codec.pack_row(row as usize)))
            .collect();
        for &aff in members {
            let aff_packed = packed
                .iter()
                .find(|(id, _)| *id == aff)
                .map(|(_, p)| p)
                .expect("affected tuple is in its own group");
            for (other, other_packed) in &packed {
                let other = *other;
                if other == aff || other_packed == aff_packed {
                    continue;
                }
                // A pair of two affected members would surface from both
                // perspectives — emit it from the smaller id only.
                if is_affected(&other) && other < aff {
                    continue;
                }
                let (first, second) = if aff < other {
                    (aff, other)
                } else {
                    (other, aff)
                };
                for &p in &matching_patterns {
                    out.push(CfdViolation::TuplePair {
                        pattern: p,
                        first,
                        second,
                    });
                }
            }
        }
    }
    // `out` holds only the freshly derived violations; sort them and merge
    // with the (already sorted) carried-over half.  The two halves are
    // disjoint by construction — fresh singles cover exactly the affected
    // tuples and every fresh pair has an affected member, both of which the
    // kept filter excluded — so a plain two-way merge yields the canonical
    // order full detection produces, without re-sorting the whole report.
    out.sort_unstable();
    let mut merged: Vec<CfdViolation> = Vec::with_capacity(kept.len() + out.len());
    let (mut i, mut j) = (0, 0);
    while i < kept.len() && j < out.len() {
        if kept[i] <= out[j] {
            merged.push(kept[i]);
            i += 1;
        } else {
            merged.push(out[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&kept[i..]);
    merged.extend_from_slice(&out[j..]);
    merged
}

/// Applies `f` to every item on a scoped worker pool, preserving input
/// order in the output.  Work is claimed through an atomic cursor, so
/// uneven per-item costs balance across threads.  Public so that borrowers
/// of the engine's pool (e.g. level-wise discovery fanning out candidate
/// relation pairs) schedule work the same way the detectors do.
///
/// Degenerate inputs never spawn: `threads == 0` is treated as 1, and a
/// single item (or a single effective worker) runs inline on the caller's
/// thread.  A panic in a worker is not swallowed: the scope re-raises it on
/// join, so the caller unwinds instead of reading half-filled output.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("worker slot poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker slot poisoned")
                .expect("every slot filled before scope exit")
        })
        .collect()
}

/// [`parallel_map`] for fallible closures: applies `f` to every item in
/// parallel and returns the first error in *input* order (not completion
/// order), so a failing run reports the same error no matter how the work
/// interleaved.  All items are evaluated — errors are rare terminal events
/// for the callers (missing relations, schema mismatches), so deterministic
/// reporting is worth more than early cancellation.
pub fn try_parallel_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    parallel_map(items, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect;
    use crate::ecfd::{EcfdPattern, SetPattern};
    use crate::fd::Fd;
    use crate::pattern::{cst, wild, PatternTuple};
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    fn d0(schema: &Arc<RelationSchema>) -> RelationInstance {
        let mut inst = RelationInstance::new(Arc::clone(schema));
        for (cc, ac, phn, street, city, zip) in [
            (44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE"),
            (44, 131, 3456789, "Crichton", "NYC", "EH4 8LE"),
            (1, 908, 3456789, "Mtn Ave", "NYC", "07974"),
        ] {
            inst.insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(phn),
                Value::str(street),
                Value::str(city),
                Value::str(zip),
            ])
            .unwrap();
        }
        inst
    }

    fn paper_cfds(schema: &Arc<RelationSchema>) -> Vec<Cfd> {
        vec![
            Cfd::new(
                schema,
                &["CC", "zip"],
                &["street"],
                vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
            )
            .unwrap(),
            Cfd::new(
                schema,
                &["CC", "AC", "phn"],
                &["street", "city", "zip"],
                vec![
                    PatternTuple::all_wildcards(3, 3),
                    PatternTuple::new(
                        vec![cst(44), cst(131), wild()],
                        vec![wild(), cst("EDI"), wild()],
                    ),
                ],
            )
            .unwrap(),
            Cfd::new(
                schema,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn engine_report_equals_naive_report() {
        let s = schema();
        let d = d0(&s);
        let cfds = paper_cfds(&s);
        let engine = DetectionEngine::new();
        assert_eq!(
            engine.detect_cfd_violations(&d, &cfds),
            detect::detect_cfd_violations(&d, &cfds)
        );
    }

    #[test]
    fn sequential_engine_agrees_with_parallel_engine() {
        let s = schema();
        let d = d0(&s);
        let cfds = paper_cfds(&s);
        assert_eq!(
            DetectionEngine::with_threads(1).detect_cfd_violations(&d, &cfds),
            DetectionEngine::with_threads(8).detect_cfd_violations(&d, &cfds)
        );
    }

    #[test]
    fn shared_lhs_builds_one_index() {
        let s = schema();
        let d = d0(&s);
        // Normalization splits ϕ2 into fragments that all share the LHS.
        let fragments: Vec<Cfd> = paper_cfds(&s)[1].normalize();
        assert!(fragments.len() > 1);
        let engine = DetectionEngine::new();
        let report = engine.detect_cfd_violations(&d, &fragments);
        assert!(!report.is_clean());
        let stats = engine.pool_stats();
        assert_eq!(stats.misses, 1, "one distinct LHS → one index build");
    }

    #[test]
    fn warm_pool_rebuilds_nothing_until_the_instance_changes() {
        let s = schema();
        let mut d = d0(&s);
        let cfds = paper_cfds(&s);
        let engine = DetectionEngine::new();
        let first = engine.detect_cfd_violations(&d, &cfds);
        let built_once = engine.pool_stats().misses;
        let second = engine.detect_cfd_violations(&d, &cfds);
        assert_eq!(first, second);
        assert_eq!(
            engine.pool_stats().misses,
            built_once,
            "warm run builds nothing"
        );
        d.insert_values([
            Value::int(44),
            Value::int(131),
            Value::int(7),
            Value::str("New St"),
            Value::str("EDI"),
            Value::str("EH4 8LE"),
        ])
        .unwrap();
        engine.detect_cfd_violations(&d, &cfds);
        assert!(
            engine.pool_stats().misses > built_once,
            "mutation invalidates"
        );
    }

    #[test]
    fn engine_incremental_equals_naive_incremental() {
        let s = schema();
        let mut d = d0(&s);
        let cfds = paper_cfds(&s);
        let added = vec![d
            .insert_values([
                Value::int(44),
                Value::int(131),
                Value::int(9999999),
                Value::str("Lauriston"),
                Value::str("EDI"),
                Value::str("EH4 8LE"),
            ])
            .unwrap()];
        let engine = DetectionEngine::new();
        assert_eq!(
            engine.detect_cfd_violations_incremental(&d, &cfds, &added),
            detect::detect_cfd_violations_incremental(&d, &cfds, &added)
        );
    }

    #[test]
    fn maintained_report_tracks_full_detection_across_edits_and_appends() {
        let s = schema();
        let mut d = d0(&s);
        let cfds = paper_cfds(&s);
        let engine = DetectionEngine::new();
        let mut maintained = engine.maintain_cfd_violations(&d, &cfds, None);
        assert_eq!(
            maintained.report(),
            &detect::detect_cfd_violations(&d, &cfds)
        );
        // A mixed edit/append stream: every step's maintained report must
        // equal full detection, while the pool serves patches, not rebuilds.
        let city = s.attr("city");
        let zip = s.attr("zip");
        type Step = Box<dyn Fn(&mut RelationInstance)>;
        let steps: Vec<Step> = vec![
            // RHS edit: fixes one single-tuple violation.
            Box::new(move |d: &mut RelationInstance| {
                d.update_cell(
                    dq_relation::instance::CellRef::new(TupleId(0), city),
                    Value::str("EDI"),
                )
                .unwrap();
            }),
            // LHS edit: moves t3 into the UK zip group of ϕ1.
            Box::new(move |d: &mut RelationInstance| {
                d.update_cell(
                    dq_relation::instance::CellRef::new(TupleId(2), zip),
                    Value::str("EH4 8LE"),
                )
                .unwrap();
            }),
            // Append: a new UK tuple colliding with t1 on [CC, zip].
            Box::new(|d: &mut RelationInstance| {
                d.insert_values([
                    Value::int(44),
                    Value::int(131),
                    Value::int(5550000),
                    Value::str("Lauriston"),
                    Value::str("NYC"),
                    Value::str("EH4 8LE"),
                ])
                .unwrap();
            }),
            // No-op edit: version and report must both stand still.
            Box::new(move |d: &mut RelationInstance| {
                d.update_cell(
                    dq_relation::instance::CellRef::new(TupleId(0), city),
                    Value::str("EDI"),
                )
                .unwrap();
            }),
        ];
        for step in steps {
            step(&mut d);
            maintained = engine.maintain_cfd_violations(&d, &cfds, Some(&maintained));
            assert_eq!(
                maintained.report(),
                &detect::detect_cfd_violations(&d, &cfds),
                "maintained report diverged from full detection"
            );
            assert_eq!(maintained.version(), d.version());
        }
        let stats = engine.pool_stats();
        assert!(stats.patches > 0, "edits must patch the pooled indexes");
    }

    #[test]
    fn maintained_report_rebuilds_after_a_removal() {
        let s = schema();
        let mut d = d0(&s);
        let cfds = paper_cfds(&s);
        let engine = DetectionEngine::new();
        let maintained = engine.maintain_cfd_violations(&d, &cfds, None);
        d.remove(TupleId(1));
        // The journal cannot cover a removal: maintenance falls back to full
        // detection and still reports correctly.
        let after = engine.maintain_cfd_violations(&d, &cfds, Some(&maintained));
        assert_eq!(after.report(), &detect::detect_cfd_violations(&d, &cfds));
    }

    #[test]
    fn engine_ecfd_report_equals_naive() {
        let s = Arc::new(RelationSchema::new(
            "nycust",
            [("CT", Domain::Text), ("AC", Domain::Int)],
        ));
        let mut inst = RelationInstance::new(Arc::clone(&s));
        for (ct, ac) in [("NYC", 212), ("NYC", 999), ("Albany", 518), ("Albany", 519)] {
            inst.insert_values([Value::str(ct), Value::int(ac)])
                .unwrap();
        }
        let ecfds = vec![
            Ecfd::new(
                &s,
                &["CT"],
                &["AC"],
                vec![EcfdPattern::new(
                    vec![SetPattern::not_in(["NYC", "LI"])],
                    vec![SetPattern::any()],
                )],
            )
            .unwrap(),
            Ecfd::new(
                &s,
                &["CT"],
                &["AC"],
                vec![EcfdPattern::new(
                    vec![SetPattern::eq("NYC")],
                    vec![SetPattern::in_set([
                        Value::int(212),
                        Value::int(718),
                        Value::int(646),
                    ])],
                )],
            )
            .unwrap(),
        ];
        let engine = DetectionEngine::new();
        let from_engine = engine.detect_ecfd_violations(&inst, &ecfds);
        let naive = detect::detect_ecfd_violations(&inst, &ecfds);
        assert_eq!(from_engine, naive);
        assert!(!from_engine.is_clean());
    }

    #[test]
    fn engine_denial_report_equals_naive() {
        let s = schema();
        let d = d0(&s);
        let fd = Fd::new(&s, &["zip"], &["street"]);
        let mut constraints = DenialConstraint::from_fd(&fd);
        // A non-FD-shaped constraint exercises the naive fallback arm.
        constraints.push(DenialConstraint::new(
            "customer",
            1,
            vec![crate::denial::DcPredicate::new(
                crate::denial::DcTerm::attr(0, 0),
                dq_relation::CompOp::Gt,
                crate::denial::DcTerm::val(40i64),
            )],
        ));
        let engine = DetectionEngine::new();
        assert_eq!(
            engine.detect_denial_violations(&d, &constraints),
            detect::detect_denial_violations(&d, &constraints)
        );
    }

    #[test]
    fn empty_dependency_sets_yield_empty_reports() {
        let s = schema();
        let d = d0(&s);
        let engine = DetectionEngine::new();
        assert!(engine.detect_cfd_violations(&d, &[]).is_clean());
        assert!(engine.detect_ecfd_violations(&d, &[]).is_clean());
        assert!(engine.detect_denial_violations(&d, &[]).is_empty());
        let db = dq_relation::Database::new();
        assert!(engine.detect_cind_violations(&db, &[]).unwrap().is_clean());
    }

    #[test]
    fn engine_cind_report_equals_naive() {
        use crate::cind::{Cind, CindPattern};
        let order = Arc::new(RelationSchema::new(
            "order",
            [("title", Domain::Text), ("type", Domain::Text)],
        ));
        let book = Arc::new(RelationSchema::new("book", [("title", Domain::Text)]));
        let mut oi = RelationInstance::new(Arc::clone(&order));
        for (t, ty) in [
            ("Harry Potter", "book"),
            ("Snow White", "book"),
            ("J. Denver", "CD"),
        ] {
            oi.insert_values([Value::str(t), Value::str(ty)]).unwrap();
        }
        let mut bi = RelationInstance::new(Arc::clone(&book));
        bi.insert_values([Value::str("Harry Potter")]).unwrap();
        let mut db = dq_relation::Database::new();
        db.add_relation(oi);
        db.add_relation(bi);
        let cinds = vec![Cind::new(
            &order,
            &["title"],
            &["type"],
            &book,
            &["title"],
            &[],
            vec![CindPattern::new(vec![Value::str("book")], vec![])],
        )
        .unwrap()];
        let engine = DetectionEngine::new();
        let from_engine = engine.detect_cind_violations(&db, &cinds).unwrap();
        let naive = crate::detect::detect_cind_violations(&db, &cinds).unwrap();
        assert_eq!(from_engine, naive);
        assert_eq!(from_engine.total(), 1, "Snow White dangles");
        // The probe index is pooled: a second run rebuilds nothing.
        let misses = engine.pool_stats().misses;
        let again = engine.detect_cind_violations(&db, &cinds).unwrap();
        assert_eq!(again, naive);
        assert_eq!(engine.pool_stats().misses, misses, "warm CIND run");
        // A CIND over a missing relation errors like the naive path.
        let ghost_schema = Arc::new(RelationSchema::new("ghost", [("g", Domain::Text)]));
        let ghost = Cind::new(
            &order,
            &["title"],
            &[],
            &ghost_schema,
            &["g"],
            &[],
            vec![CindPattern::new(vec![], vec![])],
        )
        .unwrap();
        assert!(engine.detect_cind_violations(&db, &[ghost]).is_err());
    }

    #[test]
    fn engine_ind_report_equals_naive() {
        use crate::ind::Ind;
        let order = Arc::new(RelationSchema::new(
            "order",
            [("title", Domain::Text), ("type", Domain::Text)],
        ));
        let book = Arc::new(RelationSchema::new("book", [("title", Domain::Text)]));
        let mut oi = RelationInstance::new(Arc::clone(&order));
        for t in ["Harry Potter", "Snow White"] {
            oi.insert_values([Value::str(t), Value::str("book")])
                .unwrap();
        }
        oi.insert_values([Value::Null, Value::str("book")]).unwrap();
        let mut bi = RelationInstance::new(Arc::clone(&book));
        bi.insert_values([Value::str("Harry Potter")]).unwrap();
        let mut db = dq_relation::Database::new();
        db.add_relation(oi);
        db.add_relation(bi);
        let inds = vec![
            Ind::from_indices("order", vec![0], "book", vec![0]),
            Ind::from_indices("book", vec![0], "order", vec![0]),
        ];
        let engine = DetectionEngine::new();
        for ignore_nulls in [false, true] {
            let from_engine = engine
                .detect_ind_violations(&db, &inds, ignore_nulls)
                .unwrap();
            let naive: Vec<Vec<TupleId>> = inds
                .iter()
                .map(|ind| ind.violations_with(&db, ignore_nulls).unwrap())
                .collect();
            assert_eq!(from_engine, naive, "ignore_nulls {ignore_nulls}");
            for (ind, violations) in inds.iter().zip(&naive) {
                assert_eq!(
                    engine.ind_holds(&db, ind, ignore_nulls).unwrap(),
                    violations.is_empty(),
                    "{ind} (ignore_nulls {ignore_nulls})"
                );
            }
        }
        // The probe structures are pooled: a second run rebuilds nothing.
        let misses = engine.pool_stats().misses;
        engine.detect_ind_violations(&db, &inds, false).unwrap();
        assert_eq!(engine.pool_stats().misses, misses, "warm IND run");
        // An IND over a missing relation errors like the naive path.
        let ghost = Ind::from_indices("order", vec![0], "ghost", vec![0]);
        assert!(engine.detect_ind_violations(&db, &[ghost], false).is_err());
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &usize| x).is_empty());
    }

    #[test]
    fn parallel_map_degenerate_inputs_run_inline() {
        // threads == 0 behaves like 1 instead of dropping the work.
        let items: Vec<usize> = (0..10).collect();
        assert_eq!(
            parallel_map(&items, 0, |&x| x + 1),
            (1..11).collect::<Vec<_>>()
        );
        // A single item runs on the caller's thread (no spawn): the closure
        // can observe the caller's thread id.
        let caller = std::thread::current().id();
        let ids = parallel_map(&[42usize], 8, |_| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..64).collect();
        let outcome = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 17 {
                    panic!("worker 17 exploded");
                }
                x
            })
        });
        assert!(outcome.is_err(), "a worker panic must unwind the caller");
    }

    #[test]
    fn try_parallel_map_returns_first_error_in_input_order() {
        let items: Vec<i64> = (0..50).collect();
        let ok: Result<Vec<i64>, String> = try_parallel_map(&items, 4, |&x| Ok(x * 3));
        assert_eq!(ok.unwrap(), (0..50).map(|x| x * 3).collect::<Vec<_>>());
        // Both 10 and 40 fail; the error of the *earlier* item must win
        // regardless of which worker finishes first.
        let err: Result<Vec<i64>, String> = try_parallel_map(&items, 4, |&x| {
            if x == 10 || x == 40 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(err.unwrap_err(), "bad 10");
    }
}
