//! Shared helpers for the interned detection paths.
//!
//! The interned variants of the detectors translate pattern constants into
//! the per-column dictionaries of a
//! [`ColumnarStore`](dq_relation::ColumnarStore) once per call, after which
//! every match test is a `u32` comparison.  A constant that appears nowhere
//! in its column ([`InternedEntry::Absent`]) can match no cell — exactly the
//! semantics of the value-level match operator `≍`, short-circuited.

use crate::pattern::PatternValue;
use dq_relation::{Column, ValueId};
use std::sync::Arc;

/// A CFD pattern entry translated into one column's dictionary.
#[derive(Clone, Copy, Debug)]
pub(crate) enum InternedEntry {
    /// The unnamed variable `_`: matches every cell.
    Wild,
    /// A constant present in the column, as its id.
    Id(ValueId),
    /// A constant absent from the column: matches no cell.
    Absent,
}

impl InternedEntry {
    /// Translates a pattern entry into `col`'s dictionary.
    pub(crate) fn of(p: &PatternValue, col: &Column) -> Self {
        match p {
            PatternValue::Any => InternedEntry::Wild,
            PatternValue::Const(v) => match col.interner().lookup(v) {
                Some(id) => InternedEntry::Id(id),
                None => InternedEntry::Absent,
            },
        }
    }

    /// Translates a whole entry list against positionally aligned columns.
    pub(crate) fn of_all(entries: &[PatternValue], cols: &[Arc<Column>]) -> Vec<InternedEntry> {
        entries
            .iter()
            .zip(cols)
            .map(|(p, c)| InternedEntry::of(p, c))
            .collect()
    }

    /// The match operator `≍` against a cell id.
    #[inline]
    pub(crate) fn matches(&self, id: ValueId) -> bool {
        match self {
            InternedEntry::Wild => true,
            InternedEntry::Id(x) => *x == id,
            InternedEntry::Absent => false,
        }
    }

    /// Componentwise match against the cells of `row`.
    #[inline]
    pub(crate) fn all_match_row(
        entries: &[InternedEntry],
        cols: &[Arc<Column>],
        row: usize,
    ) -> bool {
        entries
            .iter()
            .zip(cols)
            .all(|(e, c)| e.matches(c.id_at(row)))
    }

    /// Componentwise match against an id tuple (an index group key).
    #[inline]
    pub(crate) fn all_match_key(entries: &[InternedEntry], key: &[ValueId]) -> bool {
        entries.iter().zip(key).all(|(e, &id)| e.matches(id))
    }
}
