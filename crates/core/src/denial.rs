//! Denial constraints (Section 2.3, Section 5).
//!
//! A denial constraint forbids a combination of tuples:
//! `∀ t1 … tm ¬(R(t1) ∧ … ∧ R(tm) ∧ φ(t1, …, tm))` where `φ` is a conjunction
//! of comparisons over built-in predicates (`=, ≠, <, >, ≤, ≥`) between
//! attributes of the tuple variables and constants.  FDs and keys are the
//! special case with two tuple variables.  Denial constraints are the
//! constraint language used by much of the repairing and consistent query
//! answering literature surveyed in Section 5, and X-repairs for them only
//! ever delete tuples.

use crate::fd::Fd;
use dq_relation::{CompOp, HashIndex, InternedIndex, RelationInstance, TupleId, Value};
use std::fmt;

/// One side of a comparison inside a denial constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DcTerm {
    /// `t_i[attr]`: the attribute `attr` of the `i`-th tuple variable.
    Attr {
        /// Index of the tuple variable (0-based).
        var: usize,
        /// Attribute position.
        attr: usize,
    },
    /// A constant.
    Const(Value),
}

impl DcTerm {
    /// Attribute term helper.
    pub fn attr(var: usize, attr: usize) -> Self {
        DcTerm::Attr { var, attr }
    }

    /// Constant term helper.
    pub fn val(v: impl Into<Value>) -> Self {
        DcTerm::Const(v.into())
    }

    fn eval<'a>(&'a self, tuples: &'a [&dq_relation::Tuple]) -> &'a Value {
        match self {
            DcTerm::Attr { var, attr } => tuples[*var].get(*attr),
            DcTerm::Const(v) => v,
        }
    }
}

/// A comparison predicate inside a denial constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DcPredicate {
    /// Left term.
    pub left: DcTerm,
    /// Comparison operator.
    pub op: CompOp,
    /// Right term.
    pub right: DcTerm,
}

impl DcPredicate {
    /// Creates a predicate.
    pub fn new(left: DcTerm, op: CompOp, right: DcTerm) -> Self {
        DcPredicate { left, op, right }
    }

    fn eval(&self, tuples: &[&dq_relation::Tuple]) -> bool {
        self.op
            .eval(self.left.eval(tuples), self.right.eval(tuples))
    }
}

/// A denial constraint over a single relation with `vars` tuple variables.
#[derive(Clone, Debug, PartialEq)]
pub struct DenialConstraint {
    /// Relation name the tuple variables range over.
    pub relation: String,
    /// Number of tuple variables (1 or 2 supported by the detector).
    pub vars: usize,
    /// The conjunction `φ` that must not be satisfiable.
    pub predicates: Vec<DcPredicate>,
}

impl DenialConstraint {
    /// Creates a denial constraint.
    pub fn new(relation: impl Into<String>, vars: usize, predicates: Vec<DcPredicate>) -> Self {
        DenialConstraint {
            relation: relation.into(),
            vars,
            predicates,
        }
    }

    /// Expresses an FD `X → Y` as a denial constraint with two tuple
    /// variables: `¬(R(t1) ∧ R(t2) ∧ t1[X]=t2[X] ∧ t1[B]≠t2[B])` for each
    /// `B ∈ Y` (here folded into a single constraint per RHS attribute; this
    /// function returns one constraint per RHS attribute).
    pub fn from_fd(fd: &Fd) -> Vec<DenialConstraint> {
        fd.rhs()
            .iter()
            .map(|&b| {
                let mut predicates: Vec<DcPredicate> = fd
                    .lhs()
                    .iter()
                    .map(|&a| DcPredicate::new(DcTerm::attr(0, a), CompOp::Eq, DcTerm::attr(1, a)))
                    .collect();
                predicates.push(DcPredicate::new(
                    DcTerm::attr(0, b),
                    CompOp::Ne,
                    DcTerm::attr(1, b),
                ));
                DenialConstraint::new(fd.schema().name(), 2, predicates)
            })
            .collect()
    }

    /// Is this denial constraint a key constraint in disguise (two tuple
    /// variables, equalities on a set of attributes, one disequality)?
    pub fn is_fd_shaped(&self) -> bool {
        self.vars == 2
            && self.predicates.iter().all(|p| {
                matches!(
                    (&p.left, &p.right),
                    (DcTerm::Attr { .. }, DcTerm::Attr { .. })
                ) && matches!(p.op, CompOp::Eq | CompOp::Ne)
            })
            && self
                .predicates
                .iter()
                .filter(|p| matches!(p.op, CompOp::Ne))
                .count()
                == 1
    }

    /// Attributes on which the two tuple variables must agree for the
    /// constraint to fire: every predicate of the shape
    /// `t1[a] = t2[a]` (in either variable order).  When non-empty, a
    /// violating pair necessarily lies inside one hash group of an index on
    /// these attributes, which lets detection skip the quadratic pair scan —
    /// see [`violations_with_index`](Self::violations_with_index).
    ///
    /// Returns `None` for constraints that are not two-variable or have no
    /// such equality predicate.
    pub fn pair_partition_attrs(&self) -> Option<Vec<usize>> {
        if self.vars != 2 {
            return None;
        }
        let mut attrs: Vec<usize> = self
            .predicates
            .iter()
            .filter(|p| matches!(p.op, CompOp::Eq))
            .filter_map(|p| match (&p.left, &p.right) {
                (DcTerm::Attr { var: v1, attr: a1 }, DcTerm::Attr { var: v2, attr: a2 })
                    if a1 == a2 && ((*v1 == 0 && *v2 == 1) || (*v1 == 1 && *v2 == 0)) =>
                {
                    Some(*a1)
                }
                _ => None,
            })
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        if attrs.is_empty() {
            None
        } else {
            Some(attrs)
        }
    }

    /// Violations of a two-variable constraint, probing a caller-supplied
    /// index of `instance` on exactly
    /// [`pair_partition_attrs`](Self::pair_partition_attrs).
    ///
    /// Produces the same pairs as [`violations`](Self::violations) — each
    /// ordered candidate pair is evaluated against every predicate, so
    /// asymmetric comparisons behave identically — in the same sorted order.
    pub fn violations_with_index(
        &self,
        instance: &RelationInstance,
        index: &HashIndex,
    ) -> Vec<Vec<TupleId>> {
        debug_assert_eq!(
            Some(index.attrs().to_vec()),
            self.pair_partition_attrs(),
            "index keyed off the constraint's equality attributes"
        );
        let mut out = Vec::new();
        for (_, group) in index.multi_groups() {
            let tuples: Vec<&dq_relation::Tuple> = group
                .iter()
                .map(|&id| instance.tuple(id).expect("live tuple"))
                .collect();
            // Group ids are in ascending insertion order, so `j > i` is
            // exactly the `id1 < id2` reporting rule of `violations`.
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    if self
                        .predicates
                        .iter()
                        .all(|p| p.eval(&[tuples[i], tuples[j]]))
                    {
                        out.push(vec![group[i], group[j]]);
                    }
                }
            }
        }
        // `violations` reports pairs in ascending (first, second) order;
        // group iteration is nondeterministic, so sort to match.
        out.sort_unstable();
        out
    }

    /// Violations of a two-variable constraint, probing an *interned* index
    /// of `instance` on exactly
    /// [`pair_partition_attrs`](Self::pair_partition_attrs).  The interned
    /// groups are identical to the value-keyed groups (dictionary ids
    /// preserve equality), and predicates — which may involve order
    /// comparisons — are still evaluated on the actual tuples, so the
    /// output equals [`violations_with_index`](Self::violations_with_index)
    /// exactly.
    pub fn violations_with_interned_index(
        &self,
        instance: &RelationInstance,
        index: &InternedIndex,
    ) -> Vec<Vec<TupleId>> {
        debug_assert_eq!(
            Some(index.attrs().to_vec()),
            self.pair_partition_attrs(),
            "index keyed off the constraint's equality attributes"
        );
        let mut out = Vec::new();
        for (_, rows) in index.multi_groups() {
            // Rows ascend within a group, so `j > i` is exactly the
            // `id1 < id2` reporting rule of `violations`.
            let ids: Vec<TupleId> = rows.iter().map(|&r| index.tuple_id(r)).collect();
            let tuples: Vec<&dq_relation::Tuple> = ids
                .iter()
                .map(|&id| instance.tuple(id).expect("live tuple"))
                .collect();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    if self
                        .predicates
                        .iter()
                        .all(|p| p.eval(&[tuples[i], tuples[j]]))
                    {
                        out.push(vec![ids[i], ids[j]]);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// All violations: combinations of tuples satisfying every predicate.
    /// Supports one or two tuple variables (all constraints in the paper's
    /// examples have at most two).
    pub fn violations(&self, instance: &RelationInstance) -> Vec<Vec<TupleId>> {
        let mut out = Vec::new();
        match self.vars {
            1 => {
                for (id, t) in instance.iter() {
                    if self.predicates.iter().all(|p| p.eval(&[t])) {
                        out.push(vec![id]);
                    }
                }
            }
            2 => {
                let entries: Vec<(TupleId, &dq_relation::Tuple)> = instance.iter().collect();
                for i in 0..entries.len() {
                    for j in 0..entries.len() {
                        if i == j {
                            continue;
                        }
                        let (id1, t1) = entries[i];
                        let (id2, t2) = entries[j];
                        if self.predicates.iter().all(|p| p.eval(&[t1, t2])) {
                            // Report unordered pairs once.
                            if id1 < id2 {
                                out.push(vec![id1, id2]);
                            }
                        }
                    }
                }
            }
            n => panic!("denial constraints with {n} tuple variables are not supported"),
        }
        out
    }

    /// Does the instance satisfy this denial constraint?
    pub fn holds_on(&self, instance: &RelationInstance) -> bool {
        self.violations(instance).is_empty()
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "¬({} tuple variable(s) over {}, {} predicate(s))",
            self.vars,
            self.relation,
            self.predicates.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationSchema};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "emp",
            [
                ("name", Domain::Text),
                ("dept", Domain::Text),
                ("salary", Domain::Int),
                ("bonus", Domain::Int),
            ],
        ))
    }

    fn instance(rows: &[(&str, &str, i64, i64)]) -> RelationInstance {
        let mut inst = RelationInstance::new(schema());
        for (n, d, s, b) in rows {
            inst.insert_values([
                Value::str(*n),
                Value::str(*d),
                Value::int(*s),
                Value::int(*b),
            ])
            .unwrap();
        }
        inst
    }

    #[test]
    fn single_variable_range_constraint() {
        // No bonus may exceed the salary: ¬(emp(t) ∧ t.bonus > t.salary).
        let dc = DenialConstraint::new(
            "emp",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, 3),
                CompOp::Gt,
                DcTerm::attr(0, 2),
            )],
        );
        let ok = instance(&[("a", "cs", 100, 10), ("b", "ee", 80, 80)]);
        assert!(dc.holds_on(&ok));
        let bad = instance(&[("a", "cs", 100, 10), ("b", "ee", 80, 90)]);
        let v = dc.violations(&bad);
        assert_eq!(v, vec![vec![TupleId(1)]]);
    }

    #[test]
    fn fd_as_denial_constraint_agrees_with_fd_semantics() {
        let s = schema();
        let fd = Fd::new(&s, &["name"], &["dept"]);
        let dcs = DenialConstraint::from_fd(&fd);
        assert_eq!(dcs.len(), 1);
        assert!(dcs[0].is_fd_shaped());
        let consistent = instance(&[("a", "cs", 1, 0), ("b", "ee", 2, 0)]);
        let inconsistent = instance(&[("a", "cs", 1, 0), ("a", "ee", 2, 0)]);
        assert_eq!(fd.holds_on(&consistent), dcs[0].holds_on(&consistent));
        assert_eq!(fd.holds_on(&inconsistent), dcs[0].holds_on(&inconsistent));
        assert_eq!(dcs[0].violations(&inconsistent).len(), 1);
    }

    #[test]
    fn two_variable_constraint_with_ordering() {
        // Nobody in the same department may earn more than twice a colleague:
        // ¬(emp(t1) ∧ emp(t2) ∧ t1.dept = t2.dept ∧ t1.salary > t2.salary ∧ t1.bonus > t2.salary)
        // simplified: within a department, a salary must not exceed another
        // salary while bonus also exceeds it.
        let dc = DenialConstraint::new(
            "emp",
            2,
            vec![
                DcPredicate::new(DcTerm::attr(0, 1), CompOp::Eq, DcTerm::attr(1, 1)),
                DcPredicate::new(DcTerm::attr(0, 2), CompOp::Gt, DcTerm::attr(1, 2)),
                DcPredicate::new(DcTerm::attr(0, 3), CompOp::Gt, DcTerm::attr(1, 2)),
            ],
        );
        let bad = instance(&[("a", "cs", 100, 60), ("b", "cs", 50, 0)]);
        assert!(!dc.holds_on(&bad));
        let ok = instance(&[("a", "cs", 100, 40), ("b", "cs", 50, 0), ("c", "ee", 10, 9)]);
        assert!(ok.len() == 3 && dc.holds_on(&ok));
    }

    #[test]
    fn constants_in_predicates() {
        // Salaries in the toy department are fixed at 10.
        let dc = DenialConstraint::new(
            "emp",
            1,
            vec![
                DcPredicate::new(DcTerm::attr(0, 1), CompOp::Eq, DcTerm::val("toy")),
                DcPredicate::new(DcTerm::attr(0, 2), CompOp::Ne, DcTerm::val(10i64)),
            ],
        );
        let bad = instance(&[("a", "toy", 12, 0)]);
        assert!(!dc.holds_on(&bad));
        let ok = instance(&[("a", "toy", 10, 0), ("b", "cs", 12, 0)]);
        assert!(dc.holds_on(&ok));
    }

    #[test]
    fn pairs_are_reported_once() {
        let s = schema();
        let fd = Fd::new(&s, &["dept"], &["name"]);
        let dc = &DenialConstraint::from_fd(&fd)[0];
        let inst = instance(&[("a", "cs", 1, 0), ("b", "cs", 2, 0), ("c", "cs", 3, 0)]);
        // Three unordered pairs of distinct names in the same department.
        assert_eq!(dc.violations(&inst).len(), 3);
    }
}
