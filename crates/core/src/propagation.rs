//! Dependency propagation through views (Section 4.1, Theorem 4.7,
//! Example 4.2).
//!
//! Given source CFDs `Σ` on base relations and a view `σ` in the SPCU
//! fragment, does a view CFD `ϕ` hold on `σ(D)` for every `D ⊨ Σ`
//! (`Σ ⊨_σ ϕ`)?  The problem is PTIME for SPCU views without finite-domain
//! attributes and coNP-complete in general (Theorem 4.7).
//!
//! The checker implemented here is *sound* (it never claims propagation that
//! does not hold) and complete for the fragment exercised by the paper's
//! Example 4.2 — unions of selection/projection views over single source
//! relations, the typical "integrate several regional sources" shape.  Views
//! with Cartesian products, or cases the analysis cannot settle, yield
//! [`Propagation::Unknown`] rather than a wrong answer.

use crate::cfd::Cfd;
use crate::implication::cfd_implies;
use crate::pattern::{PatternTuple, PatternValue};
use dq_relation::algebra::{SpcView, View};
use dq_relation::{DatabaseSchema, DqError, DqResult, RelationSchema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of a propagation check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Propagation {
    /// The view dependency is guaranteed by the source dependencies.
    Propagates,
    /// A concrete obstruction was found (two union branches that can emit
    /// conflicting tuples, or a branch whose sources do not imply the
    /// translated dependency).
    DoesNotPropagate(String),
    /// The analysis cannot settle the case (e.g. product views).
    Unknown(String),
}

impl Propagation {
    /// Is the result a definite "yes"?
    pub fn holds(&self) -> bool {
        matches!(self, Propagation::Propagates)
    }
}

/// Checks whether the view CFD `phi` (defined over the view's output schema)
/// is propagated from the source CFDs `sigma` through `view`.
///
/// `sigma` maps source relation names to the CFDs defined on them; the view
/// is analysed branch by branch (one branch per union arm).
pub fn propagates(
    schema: &DatabaseSchema,
    sigma: &BTreeMap<String, Vec<Cfd>>,
    view: &View,
    phi: &Cfd,
) -> DqResult<Propagation> {
    let branches = view.union_branches();
    let mut branch_views = Vec::with_capacity(branches.len());
    for branch in &branches {
        let spc = branch.spc_normal_form(schema)?;
        if spc.sources.len() != 1 {
            return Ok(Propagation::Unknown(
                "branches with Cartesian products are outside the supported fragment".into(),
            ));
        }
        branch_views.push(spc);
    }

    // 1. Within-branch check: translate phi to the single source relation of
    //    each branch and test implication against that source's CFDs.
    for (i, branch) in branch_views.iter().enumerate() {
        match branch_implication(schema, sigma, branch, phi)? {
            BranchStatus::Implied | BranchStatus::Vacuous => {}
            BranchStatus::NotImplied(reason) => {
                return Ok(Propagation::DoesNotPropagate(format!(
                    "branch {i}: {reason}"
                )))
            }
        }
    }

    // 2. Cross-branch check: a pair of tuples coming from different branches
    //    can violate phi unless the branches are separated on some LHS
    //    column (distinct forced constants) or force identical constants on
    //    every RHS column of phi.
    for i in 0..branch_views.len() {
        for j in (i + 1)..branch_views.len() {
            if !cross_branch_safe(&branch_views[i], &branch_views[j], phi) {
                return Ok(Propagation::DoesNotPropagate(format!(
                    "branches {i} and {j} can emit tuples that agree on the LHS but disagree on the RHS"
                )));
            }
        }
    }
    Ok(Propagation::Propagates)
}

enum BranchStatus {
    Implied,
    Vacuous,
    NotImplied(String),
}

/// The constant forced by the branch on a given *view column*, either through
/// an explicit selection on the provenance attribute or not at all.
fn forced_constant(branch: &SpcView, column: usize) -> Option<Value> {
    let (source, attr) = branch.projection[column];
    branch.constant_on(source, attr).cloned()
}

fn branch_implication(
    schema: &DatabaseSchema,
    sigma: &BTreeMap<String, Vec<Cfd>>,
    branch: &SpcView,
    phi: &Cfd,
) -> DqResult<BranchStatus> {
    let source_name = &branch.sources[0];
    let source_schema: Arc<RelationSchema> = schema.require_relation(source_name)?;
    let empty = Vec::new();
    let source_cfds = sigma.get(source_name).unwrap_or(&empty);

    // Translate each pattern tuple of phi into a CFD over the source schema.
    let mut applicable_patterns = 0usize;
    for tp in phi.tableau() {
        // Map LHS/RHS view columns to source attributes; a view column whose
        // provenance is missing (should not happen for SP branches) aborts.
        let mut lhs_attrs = Vec::new();
        let mut lhs_pattern = Vec::new();
        let mut vacuous = false;
        for (k, &col) in phi.lhs().iter().enumerate() {
            let (src, attr) = branch.projection[col];
            debug_assert_eq!(src, 0);
            // Combine the view pattern with the branch's selection constant.
            let branch_const = branch.constant_on(src, attr).cloned();
            let pattern_entry = match (&tp.lhs[k], branch_const) {
                (PatternValue::Const(c), Some(b)) if c != &b => {
                    // The branch can never emit a tuple matching this pattern
                    // entry: the pattern is vacuous for this branch.
                    vacuous = true;
                    PatternValue::Const(c.clone())
                }
                (PatternValue::Const(c), _) => PatternValue::Const(c.clone()),
                (PatternValue::Any, Some(b)) => PatternValue::Const(b),
                (PatternValue::Any, None) => PatternValue::Any,
            };
            lhs_attrs.push(attr);
            lhs_pattern.push(pattern_entry);
        }
        if vacuous {
            continue;
        }
        applicable_patterns += 1;
        let mut rhs_attrs = Vec::new();
        let mut rhs_pattern = Vec::new();
        for (k, &col) in phi.rhs().iter().enumerate() {
            let (src, attr) = branch.projection[col];
            debug_assert_eq!(src, 0);
            rhs_attrs.push(attr);
            rhs_pattern.push(tp.rhs[k].clone());
        }
        let translated = Cfd::from_indices(
            &source_schema,
            lhs_attrs,
            rhs_attrs,
            vec![PatternTuple::new(lhs_pattern, rhs_pattern)],
        )
        .map_err(|e| DqError::MalformedDependency {
            reason: format!("translated view dependency is malformed: {e}"),
        })?;
        if !cfd_implies(source_cfds, &translated) {
            return Ok(BranchStatus::NotImplied(format!(
                "source `{source_name}` does not imply {translated}"
            )));
        }
    }
    if applicable_patterns == 0 {
        // No tuple emitted by this branch can match any pattern of phi.
        return Ok(BranchStatus::Vacuous);
    }
    Ok(BranchStatus::Implied)
}

/// Can a tuple from `a` and a tuple from `b` agree on `phi`'s LHS (matching
/// its patterns) yet disagree on its RHS?  Conservative: returns `true`
/// (safe) only when the branches are provably separated or provably agree.
fn cross_branch_safe(a: &SpcView, b: &SpcView, phi: &Cfd) -> bool {
    for tp in phi.tableau() {
        // Separated: some LHS column has distinct forced constants in the two
        // branches, or a forced constant incompatible with the pattern.
        let separated = phi.lhs().iter().enumerate().any(|(k, &col)| {
            let ca = forced_constant(a, col);
            let cb = forced_constant(b, col);
            let pattern_conflict = |c: &Option<Value>| match (&tp.lhs[k], c) {
                (PatternValue::Const(p), Some(v)) => p != v,
                _ => false,
            };
            matches!((&ca, &cb), (Some(x), Some(y)) if x != y)
                || pattern_conflict(&ca)
                || pattern_conflict(&cb)
        });
        if separated {
            continue;
        }
        // Not separated: require every RHS column to carry identical forced
        // constants in both branches (then cross pairs cannot disagree).
        let rhs_agree = phi.rhs().iter().all(|&col| {
            matches!(
                (forced_constant(a, col), forced_constant(b, col)),
                (Some(x), Some(y)) if x == y
            )
        });
        if !rhs_agree {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;
    use crate::pattern::{cst, wild};
    use dq_relation::algebra::Predicate;
    use dq_relation::Domain;

    /// Example 4.2: three regional sources with the same attributes plus a
    /// country code that the integration view adds via selection columns.
    ///
    /// To stay inside the SPCU algebra (no value-invention operator), each
    /// source carries its own constant `CC` column — the view simply projects
    /// it — which is how such integration views are typically materialized.
    fn setup() -> (
        DatabaseSchema,
        BTreeMap<String, Vec<Cfd>>,
        View,
        Arc<RelationSchema>,
    ) {
        let mut schema = DatabaseSchema::new();
        let mut sigma = BTreeMap::new();
        for (name, _cc) in [("R1", 44i64), ("R2", 1i64), ("R3", 31i64)] {
            let s = Arc::new(RelationSchema::new(
                name,
                [
                    ("CC", Domain::Int),
                    ("AC", Domain::Int),
                    ("zip", Domain::Text),
                    ("street", Domain::Text),
                    ("city", Domain::Text),
                ],
            ));
            schema.add((*s).clone());
            let mut cfds = vec![
                // f_{3+i}: [AC] -> [city] on every source.
                Cfd::from_fd(&Fd::new(&s, &["AC"], &["city"])),
            ];
            if name == "R1" {
                // f3: [zip] -> [street] only on the UK source.
                cfds.push(Cfd::from_fd(&Fd::new(&s, &["zip"], &["street"])));
            }
            sigma.insert(name.to_string(), cfds);
        }
        // The integration view: select each source on its country code and
        // union the results (columns: CC, AC, zip, street, city).
        let branch =
            |name: &str, cc: i64| View::base(name).select(Predicate::EqConst(0, Value::int(cc)));
        let view = branch("R1", 44)
            .union(branch("R2", 1))
            .union(branch("R3", 31));
        let view_schema = Arc::new(RelationSchema::new(
            "R",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("zip", Domain::Text),
                ("street", Domain::Text),
                ("city", Domain::Text),
            ],
        ));
        (schema, sigma, view, view_schema)
    }

    #[test]
    fn plain_fds_do_not_propagate_to_the_union_view() {
        let (schema, sigma, view, view_schema) = setup();
        // f3 as a view FD: zip -> street over the whole view.
        let f3 = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
        let result = propagates(&schema, &sigma, &view, &f3).unwrap();
        assert!(!result.holds());
        // f4: AC -> city over the whole view; fails across branches (area
        // code 20 is both London and Amsterdam).
        let f4 = Cfd::from_fd(&Fd::new(&view_schema, &["AC"], &["city"]));
        let result = propagates(&schema, &sigma, &view, &f4).unwrap();
        assert!(!result.holds());
    }

    #[test]
    fn conditional_versions_do_propagate() {
        let (schema, sigma, view, view_schema) = setup();
        // ϕ7: ([CC, zip] -> [street], (44, _ ‖ _)).
        let phi7 = Cfd::new(
            &view_schema,
            &["CC", "zip"],
            &["street"],
            vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
        )
        .unwrap();
        assert!(propagates(&schema, &sigma, &view, &phi7).unwrap().holds());
        // ϕ8: ([CC, AC] -> [city], {(44, _), (31, _), (01, _)}).
        let phi8 = Cfd::new(
            &view_schema,
            &["CC", "AC"],
            &["city"],
            vec![
                PatternTuple::new(vec![cst(44), wild()], vec![wild()]),
                PatternTuple::new(vec![cst(31), wild()], vec![wild()]),
                PatternTuple::new(vec![cst(1), wild()], vec![wild()]),
            ],
        )
        .unwrap();
        assert!(propagates(&schema, &sigma, &view, &phi8).unwrap().holds());
    }

    #[test]
    fn missing_source_dependency_blocks_propagation() {
        let (schema, mut sigma, view, view_schema) = setup();
        // Remove the zip -> street dependency from the UK source; ϕ7 no
        // longer propagates.
        sigma.insert(
            "R1".into(),
            vec![Cfd::from_fd(&Fd::new(
                &schema.relation("R1").unwrap(),
                &["AC"],
                &["city"],
            ))],
        );
        let phi7 = Cfd::new(
            &view_schema,
            &["CC", "zip"],
            &["street"],
            vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
        )
        .unwrap();
        let result = propagates(&schema, &sigma, &view, &phi7).unwrap();
        assert!(matches!(result, Propagation::DoesNotPropagate(_)));
    }

    #[test]
    fn product_views_are_reported_as_unknown() {
        let (schema, sigma, _, view_schema) = setup();
        let view = View::base("R1").product(View::base("R2"));
        let phi = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
        let result = propagates(&schema, &sigma, &view, &phi).unwrap();
        assert!(matches!(result, Propagation::Unknown(_)));
    }

    #[test]
    fn single_branch_views_reduce_to_source_implication() {
        let (schema, sigma, _, view_schema) = setup();
        let view = View::base("R1").select(Predicate::EqConst(0, Value::int(44)));
        // Unconditional zip -> street holds on this single-source view
        // because R1 carries the source FD.
        let phi = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
        assert!(propagates(&schema, &sigma, &view, &phi).unwrap().holds());
    }
}
