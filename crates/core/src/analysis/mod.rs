//! Static analysis of dependency sets (Section 4.1, Table 1).
//!
//! This module is the front door to the constraint static-analysis engine:
//!
//! * [`solver`] — the propagation-guided decision procedures behind
//!   [`cfd_set_consistent`](crate::consistency::cfd_set_consistent) and
//!   [`cfd_implies_exact`](crate::implication::cfd_implies_exact);
//! * [`lint`] — the rule-lint pass (severity-ranked diagnostics with
//!   witnesses: minimal inconsistent cores, implied rules, subsumed /
//!   duplicate / unsatisfiable patterns);
//! * [`analyze_cfds`] / [`ensure_consistent`] — the vetting entry points the
//!   pipelines call before a rule set is allowed to drive detection,
//!   discovery post-passes, or repair.
//!
//! Everything here reports through `dq_obs` under `analysis.*` (spans for
//! each pass, node/propagation/conflict/core counters) and steers nothing by
//! the instrumentation — verdicts are deterministic at any thread count.

pub mod lint;
pub mod solver;

pub use lint::{lint_cfds, LintDiagnostic, LintSeverity, RuleLintReport};
pub use solver::{AnalysisStats, ImplicationResult};

use crate::cfd::Cfd;
use crate::implication::cfd_minimal_cover;
use dq_relation::{DqError, DqResult, Tuple};

/// Options for [`analyze_cfds`].
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Worker threads for the solver's top-level fan-out (`0` = all cores).
    /// Verdicts and witnesses are identical at any setting.
    pub threads: usize,
    /// Replace the rule set with its canonical minimal cover
    /// ([`cfd_minimal_cover`]), dropping implied rules.
    pub minimal_cover: bool,
    /// Run the full lint pass.  When off, only consistency is checked and
    /// the report carries the inconsistent-set finding at most.
    pub lint: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            threads: 0,
            minimal_cover: false,
            lint: true,
        }
    }
}

/// A vetted CFD set: the (possibly cover-pruned) rules, the lint report, a
/// consistency witness, and solver statistics.  Produced by
/// [`analyze_cfds`]; accepted by
/// [`DetectionEngine::detect_analyzed_cfd_violations`](crate::engine::DetectionEngine::detect_analyzed_cfd_violations).
#[derive(Clone, Debug)]
pub struct AnalyzedCfds {
    /// The rules detection and repair should run with (the minimal cover
    /// when [`AnalysisOptions::minimal_cover`] was set, the input otherwise).
    pub rules: Vec<Cfd>,
    /// Rules removed by cover pruning (`0` without `minimal_cover`).
    pub dropped: usize,
    /// The lint findings (at least the consistency verdict).
    pub report: RuleLintReport,
    /// A single-tuple witness that the set is satisfiable.
    pub witness: Option<Tuple>,
    /// Solver statistics of the consistency check.
    pub stats: AnalysisStats,
}

/// Builds the [`DqError::InconsistentConstraints`] for an inconsistent set:
/// the deletion-minimized core, rendered in rule display form.
fn inconsistent_error(cfds: &[Cfd], core: &[usize]) -> DqError {
    DqError::InconsistentConstraints {
        core: core.iter().map(|&r| cfds[r].to_string()).collect(),
    }
}

/// Vets a CFD set for use by detection, discovery post-passes, or repair:
/// rejects inconsistent sets with the minimal conflicting core in the
/// error, lints the survivors, and optionally replaces them with their
/// canonical minimal cover.
pub fn analyze_cfds(cfds: &[Cfd], options: &AnalysisOptions) -> DqResult<AnalyzedCfds> {
    let _span = dq_obs::span!("analysis.analyze", rules = cfds.len());
    let consistency = solver::solve_cfd_consistency(cfds, options.threads);
    if !consistency.consistent {
        let core = lint::minimal_inconsistent_core(cfds);
        dq_obs::add("analysis.core.size", core.len() as u64);
        return Err(inconsistent_error(cfds, &core));
    }
    let report = if options.lint {
        lint_cfds(cfds)
    } else {
        RuleLintReport::default()
    };
    let (rules, dropped) = if options.minimal_cover {
        let cover = cfd_minimal_cover(cfds);
        let normalized: usize = cfds.iter().map(|c| c.normalize().len()).sum();
        let dropped = normalized.saturating_sub(cover.len());
        (cover, dropped)
    } else {
        (cfds.to_vec(), 0)
    };
    Ok(AnalyzedCfds {
        rules,
        dropped,
        report,
        witness: consistency.witness_tuple().cloned(),
        stats: consistency.stats,
    })
}

/// Refuses an inconsistent CFD set: `Ok(())` when some nonempty instance
/// satisfies every rule, otherwise [`DqError::InconsistentConstraints`]
/// carrying a minimal conflicting core.  This is the up-front guard of
/// [`CleaningPipeline`](../../dq_cleaning) and `repair_cfd_violations*` —
/// repairing against an inconsistent set could never converge.
pub fn ensure_consistent(cfds: &[Cfd]) -> DqResult<()> {
    if solver::solve_cfd_consistency(cfds, 0).consistent {
        return Ok(());
    }
    let core = lint::minimal_inconsistent_core(cfds);
    dq_obs::add("analysis.core.size", core.len() as u64);
    Err(inconsistent_error(cfds, &core))
}
