//! The rule-lint pass: severity-ranked, witness-carrying diagnostics over a
//! CFD set, computed with the solver of [`super::solver`].
//!
//! The lint catalog (severities in display order):
//!
//! | severity | code                   | meaning                                             |
//! |----------|------------------------|-----------------------------------------------------|
//! | error    | `inconsistent-set`     | no nonempty instance satisfies the set; the witness is a *minimal conflicting core* (deletion-minimized: dropping any one core rule restores consistency) |
//! | warning  | `unsatisfiable-pattern`| a tableau row no tuple can satisfy (an attribute on both sides of the rule with conflicting constants, or a constant outside its domain) — every LHS match is an automatic violation |
//! | warning  | `subsumed-pattern`     | a tableau row enforced by a strictly more general row of the same rule |
//! | warning  | `duplicate-pattern`    | a tableau row repeated verbatim within one rule      |
//! | warning  | `duplicate-rule`       | a rule repeated verbatim in the set                  |
//! | info     | `implied-rule`         | a rule implied by the remaining rules (safe to drop; [`cfd_minimal_cover`](crate::implication::cfd_minimal_cover) would remove it) |
//!
//! Diagnostics are ordered most-severe-first and carry the indices of the
//! offending rules in the *input* slice, so callers can map them back to
//! their own rule registry.  [`RuleLintReport::render`] produces the
//! harness's human-readable form, [`RuleLintReport::to_json`] a
//! machine-readable export.

use super::solver::solve_cfd_consistency;
use crate::cfd::Cfd;
use crate::implication::cfd_implies;
use crate::pattern::PatternValue;
use std::fmt;

/// Severity of a [`LintDiagnostic`].  `Error` means the set must not drive
/// detection or repair; `Warning` flags dead or duplicated pattern weight;
/// `Info` flags redundancy that is safe but wasteful.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// The rule set is unusable as-is.
    Error,
    /// A pattern is dead weight or a trap (unsatisfiable/subsumed/duplicate).
    Warning,
    /// Redundancy: correct but slower than necessary.
    Info,
}

impl fmt::Display for LintSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintSeverity::Error => write!(f, "error"),
            LintSeverity::Warning => write!(f, "warning"),
            LintSeverity::Info => write!(f, "info"),
        }
    }
}

/// One lint finding: severity, a stable code, the indices of the offending
/// rules in the input slice, and a human-readable message carrying the
/// witness (core rules, subsuming row, conflicting constants, …).
#[derive(Clone, Debug)]
pub struct LintDiagnostic {
    /// Severity rank.
    pub severity: LintSeverity,
    /// Stable machine-readable code, e.g. `inconsistent-set`.
    pub code: &'static str,
    /// Indices of the offending rules in the linted slice.
    pub rules: Vec<usize>,
    /// Human-readable explanation, including the witness.
    pub message: String,
}

/// The result of [`lint_cfds`]: diagnostics ranked most-severe-first, plus
/// the minimal conflicting core when the set is inconsistent.
#[derive(Clone, Debug, Default)]
pub struct RuleLintReport {
    diagnostics: Vec<LintDiagnostic>,
    /// Indices (into the linted slice) of a minimal inconsistent core, when
    /// the set is inconsistent.
    core: Option<Vec<usize>>,
}

impl RuleLintReport {
    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[LintDiagnostic] {
        &self.diagnostics
    }

    /// Is the linted set consistent?
    pub fn is_consistent(&self) -> bool {
        self.core.is_none()
    }

    /// The minimal conflicting core (rule indices), when inconsistent:
    /// dropping any single core rule makes the remainder consistent.
    pub fn core(&self) -> Option<&[usize]> {
        self.core.as_deref()
    }

    /// Number of diagnostics at the given severity.
    pub fn count(&self, severity: LintSeverity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Human-readable rendering, one diagnostic per line, most severe first.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "rule lint: clean (no findings)".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            let rules = d
                .rules
                .iter()
                .map(|r| format!("#{r}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "{}[{}] rules {}: {}\n",
                d.severity, d.code, rules, d.message
            ));
        }
        out.pop();
        out
    }

    /// JSON export of the report (diagnostics array plus the core, if any).
    /// Hand-rolled — the workspace has no serde — with full string escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"consistent\":");
        out.push_str(if self.is_consistent() {
            "true"
        } else {
            "false"
        });
        if let Some(core) = &self.core {
            out.push_str(",\"core\":[");
            out.push_str(
                &core
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push(']');
        }
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"rules\":[{}],\"message\":\"{}\"}}",
                d.severity,
                d.code,
                d.rules
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                escape_json(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Deletion-based minimization of an inconsistent rule set: walk the rules
/// once, dropping every rule whose removal keeps the rest inconsistent.
/// Because consistency is anti-monotone in the rule set (supersets of an
/// inconsistent set stay inconsistent), a single pass yields a *minimal*
/// core: removing any one remaining rule restores consistency.  Indices
/// refer to the input slice.
pub fn minimal_inconsistent_core(cfds: &[Cfd]) -> Vec<usize> {
    debug_assert!(!solve_cfd_consistency(cfds, 0).consistent);
    let mut keep: Vec<usize> = (0..cfds.len()).collect();
    let mut i = 0;
    while i < keep.len() {
        let trial: Vec<Cfd> = keep
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &r)| cfds[r].clone())
            .collect();
        if !solve_cfd_consistency(&trial, 0).consistent {
            keep.remove(i);
        } else {
            i += 1;
        }
    }
    keep
}

/// Lints a CFD set: consistency (with a deletion-minimized conflicting
/// core), per-rule pattern hygiene (unsatisfiable, subsumed, duplicate
/// rows), duplicate rules, and — when the set is consistent — implied rules.
/// Diagnostics come back most-severe-first; counters go to `dq_obs` under
/// `analysis.lint.*`.
pub fn lint_cfds(cfds: &[Cfd]) -> RuleLintReport {
    let _span = dq_obs::span!("analysis.lint", rules = cfds.len());
    let mut diagnostics: Vec<LintDiagnostic> = Vec::new();

    // Error: inconsistent set, witnessed by a minimal conflicting core.
    let consistency = solve_cfd_consistency(cfds, 0);
    let core = if consistency.consistent {
        None
    } else {
        let core = minimal_inconsistent_core(cfds);
        dq_obs::add("analysis.lint.core_size", core.len() as u64);
        let listing = core
            .iter()
            .map(|&r| cfds[r].to_string())
            .collect::<Vec<_>>()
            .join(" ; ");
        diagnostics.push(LintDiagnostic {
            severity: LintSeverity::Error,
            code: "inconsistent-set",
            rules: core.clone(),
            message: format!(
                "no nonempty instance satisfies these rules together; \
                 minimal conflicting core: {listing}"
            ),
        });
        Some(core)
    };

    // Warnings: per-rule pattern hygiene.
    for (r, cfd) in cfds.iter().enumerate() {
        lint_patterns(r, cfd, &mut diagnostics);
    }
    // Warning: rules repeated verbatim.
    for (i, a) in cfds.iter().enumerate() {
        for (j, b) in cfds.iter().enumerate().skip(i + 1) {
            if a == b {
                diagnostics.push(LintDiagnostic {
                    severity: LintSeverity::Warning,
                    code: "duplicate-rule",
                    rules: vec![i, j],
                    message: format!("rule #{j} repeats rule #{i} verbatim: {a}"),
                });
            }
        }
    }

    // Info: redundant rules (only meaningful for a consistent set — an
    // inconsistent set implies everything).
    if core.is_none() {
        for (r, cfd) in cfds.iter().enumerate() {
            let rest: Vec<Cfd> = cfds
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != r)
                .map(|(_, c)| c.clone())
                .collect();
            if cfd_implies(&rest, cfd) {
                diagnostics.push(LintDiagnostic {
                    severity: LintSeverity::Info,
                    code: "implied-rule",
                    rules: vec![r],
                    message: format!(
                        "rule is implied by the remaining rules and can be dropped: {cfd}"
                    ),
                });
            }
        }
    }

    diagnostics.sort_by_key(|d| d.severity);
    dq_obs::add(
        "analysis.lint.errors",
        diagnostics
            .iter()
            .filter(|d| d.severity == LintSeverity::Error)
            .count() as u64,
    );
    dq_obs::add(
        "analysis.lint.warnings",
        diagnostics
            .iter()
            .filter(|d| d.severity == LintSeverity::Warning)
            .count() as u64,
    );
    dq_obs::add(
        "analysis.lint.infos",
        diagnostics
            .iter()
            .filter(|d| d.severity == LintSeverity::Info)
            .count() as u64,
    );
    RuleLintReport { diagnostics, core }
}

/// Pattern hygiene for one rule: unsatisfiable rows (conflicting constants
/// on an attribute shared by LHS and RHS, or constants outside their
/// domain), rows subsumed by a more general row, and verbatim duplicates.
fn lint_patterns(r: usize, cfd: &Cfd, diagnostics: &mut Vec<LintDiagnostic>) {
    let schema = cfd.schema();
    let tableau = cfd.tableau();
    for (k, row) in tableau.iter().enumerate() {
        // Unsatisfiable: an attribute on both sides with conflicting
        // constants — every tuple matching the LHS violates the row.
        for (lp, &la) in row.lhs.iter().zip(cfd.lhs()) {
            for (rp, &ra) in row.rhs.iter().zip(cfd.rhs()) {
                if la == ra {
                    if let (PatternValue::Const(lc), PatternValue::Const(rc)) = (lp, rp) {
                        if lc != rc {
                            diagnostics.push(LintDiagnostic {
                                severity: LintSeverity::Warning,
                                code: "unsatisfiable-pattern",
                                rules: vec![r],
                                message: format!(
                                    "pattern row {k} binds `{}` to {lc} on the LHS but \
                                     demands {rc} on the RHS; every LHS match is an \
                                     automatic violation",
                                    schema.attr_name(la)
                                ),
                            });
                        }
                    }
                }
            }
        }
        // Unsatisfiable: a constant outside its attribute's domain (cannot
        // arise through the validated constructors, but imported rule sets
        // may bypass them).
        for (p, &a) in row
            .lhs
            .iter()
            .zip(cfd.lhs())
            .chain(row.rhs.iter().zip(cfd.rhs()))
        {
            if let PatternValue::Const(c) = p {
                if !schema.domain(a).contains(c) {
                    diagnostics.push(LintDiagnostic {
                        severity: LintSeverity::Warning,
                        code: "unsatisfiable-pattern",
                        rules: vec![r],
                        message: format!(
                            "pattern row {k} binds `{}` to {c}, which is outside the \
                             attribute's domain",
                            schema.attr_name(a)
                        ),
                    });
                }
            }
        }
        // Duplicate and subsumed rows.
        for (j, other) in tableau.iter().enumerate() {
            if j == k {
                continue;
            }
            if j > k && row == other {
                diagnostics.push(LintDiagnostic {
                    severity: LintSeverity::Warning,
                    code: "duplicate-pattern",
                    rules: vec![r],
                    message: format!("pattern row {j} repeats row {k} verbatim: {row}"),
                });
                continue;
            }
            // Row `other` (index j) subsumes row `row` (index k) when
            // `other`'s LHS is entrywise at least as general (so it fires
            // whenever `row` fires) and its RHS constraint is at least as
            // strong (`row`'s RHS is a wildcard, or the constants agree).
            // Ties on equal rows are broken by index so only one direction
            // reports.
            if row != other
                && row
                    .lhs
                    .iter()
                    .zip(&other.lhs)
                    .all(|(mine, theirs)| mine.subsumes(theirs))
                && row
                    .rhs
                    .iter()
                    .zip(&other.rhs)
                    .all(|(mine, theirs)| matches!(mine, PatternValue::Any) || mine == theirs)
            {
                diagnostics.push(LintDiagnostic {
                    severity: LintSeverity::Warning,
                    code: "subsumed-pattern",
                    rules: vec![r],
                    message: format!(
                        "pattern row {k} ({row}) is enforced by the more general row {j} \
                         ({other}) and can be dropped"
                    ),
                });
            }
        }
    }
}
