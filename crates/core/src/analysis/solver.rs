//! The propagation-guided solver behind [`cfd_set_consistent`] and
//! [`cfd_implies_exact`](crate::implication::cfd_implies_exact).
//!
//! Both decision procedures share one shape.  The dependency set is compiled
//! into a *packed problem*: every constrained attribute position becomes a
//! slot with a finite candidate list (the whole domain for finite-domain
//! attributes, the mentioned constants plus fresh values otherwise), the
//! candidates are interned into a per-slot [`ValueInterner`] so a candidate
//! is a dense `u32` id, and every normalized rule becomes a handful of
//! `(slot, id)` literals.  The solve then runs in three layers:
//!
//! 1. the sound quadratic first pass — the propagation fixpoint for
//!    consistency ([`crate::consistency::cfd_set_consistent_propagation`]),
//!    the pattern closure for implication
//!    ([`crate::implication::cfd_implies_closure`]) — which *decides* the
//!    instance outright whenever no finite-domain attribute is involved
//!    (Theorem 4.3);
//! 2. a DPLL-style search for the finite-domain residue: unit propagation of
//!    forced constants, domain pruning (a rule one literal away from firing
//!    with an impossible conclusion forbids that literal), conflict
//!    rejection on partial assignments, and most-constrained-slot decision
//!    ordering;
//! 3. top-level branch fan-out across the first decision slot's candidates
//!    via [`parallel_map`], with deterministic first-witness selection: the
//!    lowest-indexed successful branch wins regardless of completion order,
//!    and a branch may abort early only once a *strictly earlier* branch has
//!    succeeded — so verdict *and* witness are identical at any thread
//!    count (only the node/conflict statistics vary).
//!
//! Every witness the search produces is validated against the naive leaf
//! predicates before it is returned, so a "consistent"/"not implied" verdict
//! can never disagree with the reference procedures; agreement in the other
//! direction is property-asserted in `tests/analysis_equivalence.rs`.
//!
//! [`cfd_set_consistent`]: crate::consistency::cfd_set_consistent

use crate::cfd::Cfd;
use crate::consistency::ConsistencyResult;
use crate::engine::parallel_map;
use crate::pattern::PatternValue;
use dq_relation::{RelationSchema, Tuple, Value, ValueId, ValueInterner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Statistics of one solver run (or of the quadratic fast path that made the
/// run unnecessary).  Purely informational: verdicts and witnesses are
/// deterministic at any thread count, the counters are not (aborted branches
/// stop counting at different points).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Decision nodes explored by the DPLL search.
    pub nodes: u64,
    /// Forced assignments and domain prunes made by unit propagation.
    pub propagations: u64,
    /// Dead ends rejected on partial assignments.
    pub conflicts: u64,
    /// Top-level branches fanned out across the thread pool.
    pub branches: u64,
    /// Did the sound quadratic first pass decide the instance by itself?
    pub fast_path: bool,
}

impl AnalysisStats {
    pub(crate) fn absorb(&mut self, other: &AnalysisStats) {
        self.nodes += other.nodes;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.branches += other.branches;
    }

    /// Publishes the counters to the process recorder under `analysis.*`.
    pub(crate) fn publish(&self) {
        dq_obs::add("analysis.nodes", self.nodes);
        dq_obs::add("analysis.propagations", self.propagations);
        dq_obs::add("analysis.conflicts", self.conflicts);
        dq_obs::add("analysis.branches", self.branches);
        if self.fast_path {
            dq_obs::inc("analysis.fast_path");
        }
    }
}

/// Result of an implication check: verdict, a two-tuple counterexample when
/// the search constructed one, and solver statistics.
#[derive(Clone, Debug)]
pub struct ImplicationResult {
    /// Does `Σ ⊨ ϕ` hold?
    pub implied: bool,
    /// A counterexample pair when not implied and the DPLL ran: a (≤ 2)-tuple
    /// instance satisfying `Σ` and violating `ϕ`.  `None` when the fast path
    /// already refuted the implication (no witness is materialized there).
    pub counterexample: Option<(Tuple, Tuple)>,
    /// Search statistics.
    pub stats: AnalysisStats,
}

// ---------------------------------------------------------------------------
// Packed problem representation
// ---------------------------------------------------------------------------

/// One solver variable: an attribute position holding one interned candidate.
struct Slot {
    attr: usize,
    /// Candidate dictionary; candidate index == interned id, because the
    /// candidates are interned in list order.
    interner: ValueInterner,
}

impl Slot {
    fn new(attr: usize, candidates: &[Value]) -> Self {
        let mut interner = ValueInterner::new();
        for v in candidates {
            interner.intern(v);
        }
        Slot { attr, interner }
    }

    fn width(&self) -> usize {
        self.interner.len()
    }

    /// The interned id of a pattern constant, if it is a candidate.
    fn id_of(&self, value: &Value) -> Option<u32> {
        self.interner.lookup(value).map(|id| id.index() as u32)
    }

    fn value(&self, cand: u32) -> &Value {
        self.interner.resolve(ValueId(cand))
    }
}

/// A normalized constant-RHS rule over packed slot/candidate ids:
/// `⋀ slot=id  →  rhs_slot=rhs_id`.  (Wildcard-RHS rules are trivially
/// satisfied by a single fixed tuple and compile away; wildcard LHS entries
/// constrain nothing on a fixed tuple side.)
struct PackedRule {
    lhs: Vec<(usize, u32)>,
    rhs: (usize, u32),
}

/// An agreement-carrying rule for the two-tuple implication search: if the
/// pair agrees on every `agree` slot pair and matches every LHS constant,
/// the pair must agree on the RHS (and match its constant, if bound).
struct PairRule {
    /// `(slot1, slot2)` pairs that must hold equal ids for the rule to fire
    /// (shared slots compile away — they agree by construction).
    agree: Vec<(usize, usize)>,
    /// `(slot, id)` constant literals on the `t1` side (mirrored on `t2` by
    /// the agreement above, exactly like the naive `pair_ok` closure).
    consts: Vec<(usize, u32)>,
    /// RHS slots of the two sides (equal when the RHS attribute is shared).
    rhs: (usize, usize),
    /// RHS constant id, if the pattern binds one.
    rhs_const: Option<u32>,
}

/// The negated goal of the implication search: the assignment must *violate*
/// `ϕ`'s normalized part.
enum Goal {
    /// Consistency mode: no goal, any satisfying assignment is a witness.
    None,
    /// RHS pattern `_`: the two sides must disagree, `slot1 ≠ slot2`.
    Diseq(usize, usize),
    /// RHS pattern constant `c`: not both sides may equal `c`.
    NotBothConst(usize, usize, u32),
}

struct Problem {
    slots: Vec<Slot>,
    rules: Vec<PackedRule>,
    pair_rules: Vec<PairRule>,
    goal: Goal,
}

/// How often a branch polls the shared best-branch index (every 64 nodes).
const ABORT_POLL_MASK: u64 = 0x3f;

// ---------------------------------------------------------------------------
// DPLL search
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Search {
    assign: Vec<Option<u32>>,
    /// `forbidden[slot][candidate]` — pruned values.
    forbidden: Vec<Vec<bool>>,
    /// Unpruned candidates per slot (assignment does not decrement).
    remaining: Vec<u32>,
}

enum Outcome {
    /// Full satisfying assignment found.
    Sat(Vec<Option<u32>>),
    /// Subtree exhausted without a satisfying assignment.
    Unsat,
    /// Search abandoned because an earlier branch already succeeded.
    Aborted,
}

/// Shared early-abort signal for the parallel top-level fan-out: a branch
/// may abandon its subtree only when a *strictly earlier* branch has already
/// succeeded, which keeps the selected (minimum-index) witness deterministic
/// at any thread count.
struct AbortCheck {
    best: Option<(usize, Arc<AtomicUsize>)>,
}

impl AbortCheck {
    fn none() -> Self {
        AbortCheck { best: None }
    }

    fn for_branch(index: usize, best: Arc<AtomicUsize>) -> Self {
        AbortCheck {
            best: Some((index, best)),
        }
    }

    fn should_abort(&self, nodes: u64) -> bool {
        match &self.best {
            Some((index, best)) if nodes & ABORT_POLL_MASK == 0 => {
                best.load(Ordering::Relaxed) < *index
            }
            _ => false,
        }
    }
}

impl Search {
    fn new(p: &Problem) -> Self {
        Search {
            assign: vec![None; p.slots.len()],
            forbidden: p.slots.iter().map(|s| vec![false; s.width()]).collect(),
            remaining: p.slots.iter().map(|s| s.width() as u32).collect(),
        }
    }

    /// Assigns `slot := cand`; false on an immediate conflict.
    fn assign(&mut self, slot: usize, cand: u32) -> bool {
        match self.assign[slot] {
            Some(v) => v == cand,
            None => {
                if self.forbidden[slot][cand as usize] {
                    return false;
                }
                self.assign[slot] = Some(cand);
                true
            }
        }
    }

    /// Prunes `cand` from `slot`'s domain; false on domain wipeout or when
    /// the slot is already assigned to `cand`.
    fn forbid(&mut self, slot: usize, cand: u32) -> bool {
        if self.assign[slot] == Some(cand) {
            return false;
        }
        if !self.forbidden[slot][cand as usize] {
            self.forbidden[slot][cand as usize] = true;
            self.remaining[slot] -= 1;
            if self.remaining[slot] == 0 && self.assign[slot].is_none() {
                return false;
            }
        }
        true
    }

    /// Is `slot = cand` already ruled out?
    fn impossible(&self, slot: usize, cand: u32) -> bool {
        match self.assign[slot] {
            Some(v) => v != cand,
            None => self.forbidden[slot][cand as usize],
        }
    }

    /// Runs unit propagation to fixpoint.  Returns false on conflict (the
    /// partial assignment cannot extend to a solution).
    fn propagate(&mut self, p: &Problem, stats: &mut AnalysisStats) -> bool {
        loop {
            let mut changed = false;
            for rule in &p.rules {
                if !self.propagate_packed_rule(rule, stats, &mut changed) {
                    stats.conflicts += 1;
                    return false;
                }
            }
            for rule in &p.pair_rules {
                if !self.propagate_pair_rule(rule, stats, &mut changed) {
                    stats.conflicts += 1;
                    return false;
                }
            }
            if !self.propagate_goal(&p.goal, stats, &mut changed) {
                stats.conflicts += 1;
                return false;
            }
            if !changed {
                return true;
            }
        }
    }

    fn propagate_packed_rule(
        &mut self,
        rule: &PackedRule,
        stats: &mut AnalysisStats,
        changed: &mut bool,
    ) -> bool {
        let mut open: Option<(usize, u32)> = None;
        let mut open_count = 0usize;
        for &(s, c) in &rule.lhs {
            if self.impossible(s, c) {
                return true; // the rule can no longer fire
            }
            if self.assign[s].is_none() {
                open_count += 1;
                open = Some((s, c));
            }
        }
        let (rs, rc) = rule.rhs;
        if open_count == 0 {
            // The rule fires: its RHS constant is forced.
            if self.assign[rs] == Some(rc) {
                return true;
            }
            if !self.assign(rs, rc) {
                return false;
            }
            stats.propagations += 1;
            *changed = true;
        } else if open_count == 1 && self.impossible(rs, rc) {
            // One literal away from firing an impossible conclusion: that
            // literal must be false.
            let (s, c) = open.expect("open literal recorded");
            if !self.forbid(s, c) {
                return false;
            }
            stats.propagations += 1;
            *changed = true;
        }
        true
    }

    fn propagate_pair_rule(
        &mut self,
        rule: &PairRule,
        stats: &mut AnalysisStats,
        changed: &mut bool,
    ) -> bool {
        // Propagate only once the rule *definitely* fires: every agreement
        // pair assigned equal, every constant literal assigned true.
        for &(s1, s2) in &rule.agree {
            match (self.assign[s1], self.assign[s2]) {
                (Some(a), Some(b)) if a == b => {}
                _ => return true,
            }
        }
        for &(s, c) in &rule.consts {
            if self.assign[s] != Some(c) {
                return true;
            }
        }
        let (r1, r2) = rule.rhs;
        if let Some(rc) = rule.rhs_const {
            for r in [r1, r2] {
                if self.assign[r] == Some(rc) {
                    continue;
                }
                if !self.assign(r, rc) {
                    return false;
                }
                stats.propagations += 1;
                *changed = true;
            }
            return true;
        }
        // Wildcard RHS: the two sides must agree.
        match (self.assign[r1], self.assign[r2]) {
            (Some(a), Some(b)) => a == b,
            (Some(a), None) => {
                if !self.assign(r2, a) {
                    return false;
                }
                stats.propagations += 1;
                *changed = true;
                true
            }
            (None, Some(b)) => {
                if !self.assign(r1, b) {
                    return false;
                }
                stats.propagations += 1;
                *changed = true;
                true
            }
            (None, None) => true, // pending equality, settled at full depth
        }
    }

    fn propagate_goal(
        &mut self,
        goal: &Goal,
        stats: &mut AnalysisStats,
        changed: &mut bool,
    ) -> bool {
        match *goal {
            Goal::None => true,
            Goal::Diseq(s1, s2) => match (self.assign[s1], self.assign[s2]) {
                (Some(a), Some(b)) => a != b,
                (Some(a), None) if !self.forbidden[s2][a as usize] => {
                    if !self.forbid(s2, a) {
                        return false;
                    }
                    stats.propagations += 1;
                    *changed = true;
                    true
                }
                (None, Some(b)) if !self.forbidden[s1][b as usize] => {
                    if !self.forbid(s1, b) {
                        return false;
                    }
                    stats.propagations += 1;
                    *changed = true;
                    true
                }
                _ => true,
            },
            Goal::NotBothConst(s1, s2, c) => {
                if s1 == s2 {
                    // Shared RHS slot: the single shared value must differ
                    // from the constant.
                    if self.assign[s1] == Some(c) {
                        return false;
                    }
                    if self.assign[s1].is_none() && !self.forbidden[s1][c as usize] {
                        if !self.forbid(s1, c) {
                            return false;
                        }
                        stats.propagations += 1;
                        *changed = true;
                    }
                    return true;
                }
                match (self.assign[s1], self.assign[s2]) {
                    (Some(a), Some(b)) => !(a == c && b == c),
                    (Some(a), None) if a == c && !self.forbidden[s2][c as usize] => {
                        if !self.forbid(s2, c) {
                            return false;
                        }
                        stats.propagations += 1;
                        *changed = true;
                        true
                    }
                    (None, Some(b)) if b == c && !self.forbidden[s1][c as usize] => {
                        if !self.forbid(s1, c) {
                            return false;
                        }
                        stats.propagations += 1;
                        *changed = true;
                        true
                    }
                    _ => true,
                }
            }
        }
    }

    /// The most-constrained unassigned slot (fewest remaining candidates,
    /// ties broken by lowest slot index), or `None` when fully assigned.
    fn pick_slot(&self) -> Option<usize> {
        (0..self.assign.len())
            .filter(|&s| self.assign[s].is_none())
            .min_by_key(|&s| (self.remaining[s], s))
    }

    /// Exhaustive DPLL below the current (already propagated) state.
    fn solve(&self, p: &Problem, stats: &mut AnalysisStats, abort: &AbortCheck) -> Outcome {
        stats.nodes += 1;
        if abort.should_abort(stats.nodes) {
            return Outcome::Aborted;
        }
        let Some(slot) = self.pick_slot() else {
            return Outcome::Sat(self.assign.clone());
        };
        for cand in 0..p.slots[slot].width() as u32 {
            if self.impossible(slot, cand) {
                continue;
            }
            let mut child = self.clone();
            child.assign[slot] = Some(cand);
            if child.propagate(p, stats) {
                match child.solve(p, stats, abort) {
                    Outcome::Unsat => {}
                    decided => return decided,
                }
            }
        }
        stats.conflicts += 1;
        Outcome::Unsat
    }
}

/// Runs the DPLL search from a seeded, not-yet-propagated root state,
/// fanning the first decision slot's branches across `threads` workers
/// (`0` = all cores).  Returns the satisfying assignment of the
/// lowest-indexed successful branch — deterministic at any thread count —
/// or `None`, plus merged statistics.
fn dpll(
    p: &Problem,
    mut root: Search,
    threads: usize,
) -> (Option<Vec<Option<u32>>>, AnalysisStats) {
    let mut stats = AnalysisStats::default();
    // A slot with no candidates at all can never be assigned.
    if root.remaining.contains(&0) {
        stats.conflicts += 1;
        return (None, stats);
    }
    if !root.propagate(p, &mut stats) {
        return (None, stats);
    }
    let Some(slot) = root.pick_slot() else {
        return (Some(root.assign), stats);
    };
    let branches: Vec<(usize, u32)> = (0..p.slots[slot].width() as u32)
        .filter(|&c| !root.impossible(slot, c))
        .enumerate()
        .collect();
    stats.branches = branches.len() as u64;
    if threads == 1 || branches.len() <= 1 {
        // Sequential: the first success wins, later branches never run.
        for &(_, cand) in &branches {
            let mut child = root.clone();
            child.assign[slot] = Some(cand);
            if child.propagate(p, &mut stats) {
                if let Outcome::Sat(a) = child.solve(p, &mut stats, &AbortCheck::none()) {
                    return (Some(a), stats);
                }
            }
        }
        return (None, stats);
    }
    let best = Arc::new(AtomicUsize::new(usize::MAX));
    let results = parallel_map(&branches, threads, |&(i, cand)| {
        let mut branch_stats = AnalysisStats::default();
        let mut child = root.clone();
        child.assign[slot] = Some(cand);
        let outcome = if child.propagate(p, &mut branch_stats) {
            child.solve(
                p,
                &mut branch_stats,
                &AbortCheck::for_branch(i, Arc::clone(&best)),
            )
        } else {
            Outcome::Unsat
        };
        if matches!(outcome, Outcome::Sat(_)) {
            best.fetch_min(i, Ordering::Relaxed);
        }
        (outcome, branch_stats)
    });
    let mut found = None;
    for (outcome, branch_stats) in results {
        stats.absorb(&branch_stats);
        if found.is_none() {
            if let Outcome::Sat(a) = outcome {
                found = Some(a);
            }
        }
    }
    (found, stats)
}

// ---------------------------------------------------------------------------
// Consistency
// ---------------------------------------------------------------------------

/// Compiles the CFD set into a single-tuple packed problem over the pattern
/// attributes.  Rules whose constants fall outside the candidate dictionary
/// cannot fire (constants are domain-validated at CFD construction, so this
/// only prunes degenerate cases) and compile away.
fn compile_consistency(cfds: &[Cfd], schema: &RelationSchema) -> Problem {
    let normalized: Vec<Cfd> = cfds.iter().flat_map(|c| c.normalize()).collect();
    let mentioned = crate::consistency::mentioned_constants(schema, cfds);
    let attrs = crate::consistency::pattern_attributes(schema, cfds);
    let mut slot_of = vec![usize::MAX; schema.arity()];
    let mut slots = Vec::with_capacity(attrs.len());
    for &a in &attrs {
        slot_of[a] = slots.len();
        slots.push(Slot::new(
            a,
            &crate::consistency::candidate_values(schema, a, &mentioned[a]),
        ));
    }
    let mut rules = Vec::new();
    'rule: for cfd in &normalized {
        let tp = &cfd.tableau()[0];
        let PatternValue::Const(rhs_const) = &tp.rhs[0] else {
            continue; // wildcard RHS: any single tuple satisfies it
        };
        let rhs_slot = slot_of[cfd.rhs()[0]];
        let Some(rhs_id) = slots[rhs_slot].id_of(rhs_const) else {
            continue;
        };
        let mut lhs = Vec::new();
        for (p, &a) in tp.lhs.iter().zip(cfd.lhs()) {
            if let PatternValue::Const(c) = p {
                let slot = slot_of[a];
                match slots[slot].id_of(c) {
                    Some(id) => lhs.push((slot, id)),
                    None => continue 'rule, // LHS can never match
                }
            }
        }
        rules.push(PackedRule {
            lhs,
            rhs: (rhs_slot, rhs_id),
        });
    }
    Problem {
        slots,
        rules,
        pair_rules: Vec::new(),
        goal: Goal::None,
    }
}

/// A fresh default value for attribute `a`: unmentioned when the domain has
/// room, the first domain element otherwise.
fn backdrop_value(schema: &RelationSchema, a: usize, mentioned: &[Value]) -> Value {
    schema
        .domain(a)
        .fresh_value(mentioned)
        .unwrap_or_else(|| schema.domain(a).enumerate().expect("finite domain")[0].clone())
}

/// The solver-backed consistency check: quadratic fixpoint first (decisive
/// without finite-domain pattern attributes), packed DPLL for the residue.
/// `threads = 0` uses all cores for the top-level fan-out; the verdict and
/// witness are identical at any thread count.
pub fn solve_cfd_consistency(cfds: &[Cfd], threads: usize) -> ConsistencyResult {
    let _span = dq_obs::span!("analysis.consistency", rules = cfds.len());
    let Some(first) = cfds.first() else {
        return ConsistencyResult::trivially_consistent();
    };
    let schema = Arc::clone(first.schema());

    // Sound quadratic first pass.
    let mut stats = AnalysisStats::default();
    let Some(forced) = crate::consistency::propagation_fixpoint(cfds) else {
        stats.fast_path = true;
        stats.publish();
        return ConsistencyResult::inconsistent().with_stats(stats);
    };
    let mentioned = crate::consistency::mentioned_constants(&schema, cfds);
    let attrs = crate::consistency::pattern_attributes(&schema, cfds);
    let finite_involved = attrs.iter().any(|&a| schema.domain(a).is_finite());
    if !finite_involved {
        // Theorem 4.3: the conflict-free fixpoint is complete, so it *is* a
        // witness — forced constants where derived, fresh values elsewhere.
        let values: Vec<Value> = (0..schema.arity())
            .map(|a| match forced.get(&a) {
                Some(v) => v.clone(),
                None => backdrop_value(&schema, a, &mentioned[a]),
            })
            .collect();
        let witness = Tuple::new(values);
        assert!(
            crate::consistency::tuple_satisfies(cfds, &witness),
            "fixpoint witness failed naive validation"
        );
        stats.fast_path = true;
        stats.publish();
        return ConsistencyResult::consistent_with(witness).with_stats(stats);
    }

    // Finite-domain residue: packed DPLL over the pattern attributes.
    let problem = compile_consistency(cfds, &schema);
    let (assignment, search_stats) = dpll(&problem, Search::new(&problem), threads);
    stats.absorb(&search_stats);
    stats.publish();
    match assignment {
        Some(assign) => {
            let mut values: Vec<Value> = (0..schema.arity())
                .map(|a| backdrop_value(&schema, a, &mentioned[a]))
                .collect();
            for (slot, cand) in problem.slots.iter().zip(&assign) {
                let id = cand.expect("full assignment");
                values[slot.attr] = slot.value(id).clone();
            }
            let witness = Tuple::new(values);
            // Belt and braces: a solver witness must satisfy the naive leaf
            // predicate, so a "consistent" verdict can never be wrong.
            assert!(
                crate::consistency::tuple_satisfies(cfds, &witness),
                "solver witness failed naive validation"
            );
            ConsistencyResult::consistent_with(witness).with_stats(stats)
        }
        None => ConsistencyResult::inconsistent().with_stats(stats),
    }
}

// ---------------------------------------------------------------------------
// Implication
// ---------------------------------------------------------------------------

/// Variable layout of the two-tuple counterexample search for one normalized
/// part of `ϕ`: shared slots for `ϕ`'s LHS attributes (a violating pair
/// agrees there, so sharing loses no counterexample), per-side slots for
/// every other attribute mentioned by `Σ` or the part.
struct PairLayout {
    /// `slot1[attr]` / `slot2[attr]`: slot seen by `t1` / `t2`, or
    /// `usize::MAX` when the attribute is not a variable.
    slot1: Vec<usize>,
    slot2: Vec<usize>,
}

/// The packed problem, the attribute→slot layout, and the shared slots
/// pre-assigned by a part's LHS pattern constants.
type CompiledPart = (Problem, PairLayout, Vec<(usize, u32)>);

/// Compiles the counterexample search for one normalized part of `ϕ`.
/// Returns `None` when the part can never be violated (shared-slot RHS, or
/// a pattern constant outside its candidate set).
fn compile_implication_part(
    sigma_normalized: &[Cfd],
    part: &Cfd,
    schema: &RelationSchema,
    mentioned: &[Vec<Value>],
) -> Option<CompiledPart> {
    let mut relevant = vec![false; schema.arity()];
    for cfd in sigma_normalized.iter().chain(std::iter::once(part)) {
        for &a in cfd.lhs().iter().chain(cfd.rhs()) {
            relevant[a] = true;
        }
    }
    let mut slots = Vec::new();
    let mut slot1 = vec![usize::MAX; schema.arity()];
    let mut slot2 = vec![usize::MAX; schema.arity()];
    for &a in part.lhs() {
        slot1[a] = slots.len();
        slot2[a] = slots.len();
        slots.push(Slot::new(
            a,
            &crate::implication::candidate_values(schema, a, &mentioned[a]),
        ));
    }
    for a in 0..schema.arity() {
        if relevant[a] && !part.lhs().contains(&a) {
            let candidates = crate::implication::candidate_values(schema, a, &mentioned[a]);
            slot1[a] = slots.len();
            slots.push(Slot::new(a, &candidates));
            slot2[a] = slots.len();
            slots.push(Slot::new(a, &candidates));
        }
    }

    // Pre-assignments: the shared slots bound by the part's LHS constants.
    let tp = &part.tableau()[0];
    let mut preassign: Vec<(usize, u32)> = Vec::new();
    for (p, &a) in tp.lhs.iter().zip(part.lhs()) {
        if let PatternValue::Const(c) = p {
            let slot = slot1[a];
            let id = slots[slot].id_of(c)?;
            preassign.push((slot, id));
        }
    }

    // Goal: violate the part's RHS on attribute b.
    let b = part.rhs()[0];
    let goal = match &tp.rhs[0] {
        PatternValue::Any => {
            if slot1[b] == slot2[b] {
                return None; // shared slot: the pair always agrees on b
            }
            Goal::Diseq(slot1[b], slot2[b])
        }
        PatternValue::Const(c) => {
            let id = slots[slot1[b]].id_of(c)?;
            Goal::NotBothConst(slot1[b], slot2[b], id)
        }
    };

    // Σ rules: single-tuple packed rules per side, plus agreement-carrying
    // pair rules (the two leaf predicates of the naive search).
    let mut rules = Vec::new();
    let mut pair_rules = Vec::new();
    for psi in sigma_normalized {
        let ptp = &psi.tableau()[0];
        let rb = psi.rhs()[0];
        // Single-tuple mode: only constant-RHS rules constrain a fixed side.
        if let PatternValue::Const(rc) = &ptp.rhs[0] {
            'side: for side in [&slot1, &slot2] {
                let rhs_slot = side[rb];
                let Some(rhs_id) = slots[rhs_slot].id_of(rc) else {
                    continue;
                };
                let mut lhs = Vec::new();
                for (p, &a) in ptp.lhs.iter().zip(psi.lhs()) {
                    if let PatternValue::Const(c) = p {
                        match slots[side[a]].id_of(c) {
                            Some(id) => lhs.push((side[a], id)),
                            None => continue 'side,
                        }
                    }
                }
                rules.push(PackedRule {
                    lhs,
                    rhs: (rhs_slot, rhs_id),
                });
            }
        }
        // Pair mode.
        let mut agree = Vec::new();
        let mut consts = Vec::new();
        let mut dead = false;
        for (p, &a) in ptp.lhs.iter().zip(psi.lhs()) {
            if slot1[a] != slot2[a] {
                agree.push((slot1[a], slot2[a]));
            }
            if let PatternValue::Const(c) = p {
                match slots[slot1[a]].id_of(c) {
                    Some(id) => consts.push((slot1[a], id)),
                    None => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            continue;
        }
        let rhs_const = match &ptp.rhs[0] {
            PatternValue::Any => None,
            PatternValue::Const(c) => match slots[slot1[rb]].id_of(c) {
                Some(id) => Some(id),
                None => continue,
            },
        };
        pair_rules.push(PairRule {
            agree,
            consts,
            rhs: (slot1[rb], slot2[rb]),
            rhs_const,
        });
    }

    Some((
        Problem {
            slots,
            rules,
            pair_rules,
            goal,
        },
        PairLayout { slot1, slot2 },
        preassign,
    ))
}

/// Materializes the two counterexample tuples for a full assignment, using
/// the same fresh-value backdrop as the naive search for attributes outside
/// the variable set.
fn materialize_pair(
    schema: &RelationSchema,
    mentioned: &[Vec<Value>],
    problem: &Problem,
    layout: &PairLayout,
    assign: &[Option<u32>],
) -> (Tuple, Tuple) {
    let mut t1: Vec<Value> = Vec::with_capacity(schema.arity());
    let mut t2: Vec<Value> = Vec::with_capacity(schema.arity());
    for (a, mentioned_a) in mentioned.iter().enumerate() {
        let candidates = crate::implication::candidate_values(schema, a, mentioned_a);
        let v1 = candidates.last().cloned().unwrap_or(Value::Null);
        let v2 = candidates
            .get(candidates.len().saturating_sub(2))
            .cloned()
            .unwrap_or_else(|| v1.clone());
        t1.push(v1);
        t2.push(v2);
    }
    for a in 0..schema.arity() {
        for (side, values) in [(&layout.slot1, &mut t1), (&layout.slot2, &mut t2)] {
            let slot = side[a];
            if slot != usize::MAX {
                let id = assign[slot].expect("full assignment");
                values[a] = problem.slots[slot].value(id).clone();
            }
        }
    }
    (Tuple::new(t1), Tuple::new(t2))
}

/// The solver-backed implication check: pattern closure first (decisive when
/// no involved attribute has a finite domain), packed DPLL counterexample
/// search for the residue.  `threads = 0` uses all cores; the verdict is
/// identical at any thread count.
pub fn solve_cfd_implication(sigma: &[Cfd], phi: &Cfd, threads: usize) -> ImplicationResult {
    let _span = dq_obs::span!("analysis.implication", rules = sigma.len());
    let mut stats = AnalysisStats::default();

    // Sound quadratic first pass: a closure success is always trustworthy.
    if crate::implication::cfd_implies_closure(sigma, phi) {
        stats.fast_path = true;
        stats.publish();
        return ImplicationResult {
            implied: true,
            counterexample: None,
            stats,
        };
    }
    // Completeness scope of the closure (Theorem 4.3): no *involved*
    // attribute ranges over a finite domain.  (Sharper than a schema-wide
    // test: a finite-domain attribute no rule mentions cannot change the
    // verdict.)
    let schema = Arc::clone(phi.schema());
    let mut involved = vec![false; schema.arity()];
    for cfd in sigma.iter().chain(std::iter::once(phi)) {
        for &a in cfd.lhs().iter().chain(cfd.rhs()) {
            involved[a] = true;
        }
    }
    let finite_involved = (0..schema.arity()).any(|a| involved[a] && schema.domain(a).is_finite());
    if !finite_involved {
        stats.fast_path = true;
        stats.publish();
        return ImplicationResult {
            implied: false,
            counterexample: None,
            stats,
        };
    }

    // Finite-domain residue: per normalized part, search for a two-tuple
    // counterexample.
    let sigma_normalized: Vec<Cfd> = sigma.iter().flat_map(|c| c.normalize()).collect();
    for part in phi.normalize() {
        let mentioned = crate::implication::mentioned_constants(&schema, sigma, Some(&part));
        let Some((problem, layout, preassign)) =
            compile_implication_part(&sigma_normalized, &part, &schema, &mentioned)
        else {
            continue; // this part can never be violated
        };
        let mut root = Search::new(&problem);
        let feasible = !root.remaining.contains(&0)
            && preassign.iter().all(|&(slot, id)| root.assign(slot, id));
        if !feasible {
            continue; // empty candidate set or conflicting constants
        }
        let (assignment, search_stats) = dpll(&problem, root, threads);
        stats.absorb(&search_stats);
        if let Some(assign) = assignment {
            let (t1, t2) = materialize_pair(&schema, &mentioned, &problem, &layout, &assign);
            // Belt and braces: a solver counterexample must pass the naive
            // leaf predicates, so a "not implied" verdict can never be wrong.
            assert!(
                crate::implication::single_tuple_ok(sigma, &t1)
                    && crate::implication::single_tuple_ok(sigma, &t2)
                    && crate::implication::pair_ok(sigma, &t1, &t2)
                    && crate::implication::pair_violates_part(&part, &t1, &t2),
                "solver counterexample failed naive validation"
            );
            stats.publish();
            return ImplicationResult {
                implied: false,
                counterexample: Some((t1, t2)),
                stats,
            };
        }
    }
    stats.publish();
    ImplicationResult {
        implied: true,
        counterexample: None,
        stats,
    }
}
