//! Error detection: finding all violations of a set of conditional
//! dependencies in a database.
//!
//! This is the "catching inconsistencies" step of the paper's programme
//! (Section 1): errors *are* violations of the dependencies.  The detectors
//! here aggregate per-dependency violations into a report that repairing
//! (`dq-repair`) and the experiment harness consume, and include an
//! incremental variant used when new tuples are appended to an already
//! checked instance.

use crate::cfd::{Cfd, CfdViolation};
use crate::cind::{Cind, CindViolation};
use crate::denial::DenialConstraint;
use crate::ecfd::{Ecfd, EcfdViolation};
use crate::interned::InternedEntry;
use dq_relation::{
    Column, Database, DqResult, HashIndex, InternedIndex, RelationInstance, TupleId, ValueId,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Violations of a set of CFDs over a single relation instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CfdViolationReport {
    per_dependency: Vec<Vec<CfdViolation>>,
}

impl CfdViolationReport {
    /// Assembles a report from per-dependency violation lists (positionally
    /// aligned with the dependency set that produced them).
    pub fn from_per_dependency(per_dependency: Vec<Vec<CfdViolation>>) -> Self {
        CfdViolationReport { per_dependency }
    }

    /// The per-dependency violation lists, in dependency order.
    pub fn per_dependency(&self) -> &[Vec<CfdViolation>] {
        &self.per_dependency
    }

    /// Violations of the `i`-th dependency.
    pub fn of(&self, i: usize) -> &[CfdViolation] {
        &self.per_dependency[i]
    }

    /// All `(dependency index, violation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CfdViolation)> {
        self.per_dependency
            .iter()
            .enumerate()
            .flat_map(|(i, vs)| vs.iter().map(move |v| (i, v)))
    }

    /// Total number of violations.
    pub fn total(&self) -> usize {
        self.per_dependency.iter().map(|v| v.len()).sum()
    }

    /// Is the instance clean with respect to every dependency?
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// The distinct tuples involved in at least one violation.
    pub fn violating_tuples(&self) -> Vec<TupleId> {
        let set: BTreeSet<TupleId> = self.iter().flat_map(|(_, v)| v.tuples()).collect();
        set.into_iter().collect()
    }

    /// Number of dependencies that are violated at least once.
    pub fn violated_dependencies(&self) -> usize {
        self.per_dependency.iter().filter(|v| !v.is_empty()).count()
    }
}

/// Detects all violations of `cfds` in `instance`.
pub fn detect_cfd_violations(instance: &RelationInstance, cfds: &[Cfd]) -> CfdViolationReport {
    CfdViolationReport {
        per_dependency: cfds.iter().map(|c| c.violations(instance)).collect(),
    }
}

/// Incremental detection: assuming `instance` minus the tuples in `added` was
/// already clean (or already reported), finds only the violations involving
/// at least one tuple of `added`.
///
/// Constant (single-tuple) violations are checked on the added tuples alone;
/// variable violations are found by probing the full index with the added
/// tuples' LHS keys, so the cost is proportional to the added data plus the
/// size of the touched groups rather than the whole instance being re-paired.
pub fn detect_cfd_violations_incremental(
    instance: &RelationInstance,
    cfds: &[Cfd],
    added: &[TupleId],
) -> CfdViolationReport {
    let per_dependency = cfds
        .iter()
        .map(|cfd| {
            let index = HashIndex::build(instance, cfd.lhs());
            incremental_cfd_violations_with_index(instance, cfd, added, &index)
        })
        .collect();
    CfdViolationReport { per_dependency }
}

/// The per-dependency core of incremental detection, probing a
/// caller-supplied index of `instance` on exactly the CFD's LHS.  Used both
/// by [`detect_cfd_violations_incremental`] (fresh index per CFD) and by
/// [`crate::engine::DetectionEngine`] (one shared index per distinct LHS).
pub fn incremental_cfd_violations_with_index(
    instance: &RelationInstance,
    cfd: &Cfd,
    added: &[TupleId],
    index: &HashIndex,
) -> Vec<CfdViolation> {
    debug_assert_eq!(index.attrs(), cfd.lhs(), "index keyed off the CFD's LHS");
    let mut violations = Vec::new();
    // Single-tuple violations among the added tuples.
    for (pattern_idx, tp) in cfd.tableau().iter().enumerate() {
        if tp.rhs.iter().all(|p| p.is_any()) {
            continue;
        }
        for &id in added {
            if let Some(tuple) = instance.tuple(id) {
                if tp.lhs_matches(tuple, cfd.lhs()) && !tp.rhs_matches(tuple, cfd.rhs()) {
                    violations.push(CfdViolation::SingleTuple {
                        pattern: pattern_idx,
                        tuple: id,
                    });
                }
            }
        }
    }
    // Pair violations involving an added tuple.
    {
        let mut seen_pairs: BTreeSet<(TupleId, TupleId)> = BTreeSet::new();
        for &id in added {
            let Some(tuple) = instance.tuple(id) else {
                continue;
            };
            let key = tuple.project(cfd.lhs());
            let matching_patterns: Vec<usize> = cfd
                .tableau()
                .iter()
                .enumerate()
                .filter(|(_, tp)| tp.lhs.iter().zip(key.iter()).all(|(p, v)| p.matches(v)))
                .map(|(i, _)| i)
                .collect();
            if matching_patterns.is_empty() {
                continue;
            }
            for &other in index.get(&key) {
                if other == id {
                    continue;
                }
                // Report each unordered pair once; pairs entirely inside the
                // old data never reach this loop because `id` is added.
                let pair = if other < id { (other, id) } else { (id, other) };
                if !seen_pairs.insert(pair) {
                    continue;
                }
                let a = instance.tuple(pair.0).expect("live tuple");
                let b = instance.tuple(pair.1).expect("live tuple");
                if !a.agree_on(b, cfd.rhs()) {
                    for &p in &matching_patterns {
                        violations.push(CfdViolation::TuplePair {
                            pattern: p,
                            first: pair.0,
                            second: pair.1,
                        });
                    }
                }
            }
        }
    }
    violations.sort();
    violations.dedup();
    violations
}

/// The interned counterpart of [`incremental_cfd_violations_with_index`]:
/// probes an [`InternedIndex`] of `instance` on exactly the CFD's LHS with
/// the added tuples' dictionary ids.  Output (after the canonical
/// sort-and-dedup) is identical.
pub fn incremental_cfd_violations_with_interned(
    instance: &RelationInstance,
    cfd: &Cfd,
    added: &[TupleId],
    index: &InternedIndex,
) -> Vec<CfdViolation> {
    debug_assert_eq!(index.attrs(), cfd.lhs(), "index keyed off the CFD's LHS");
    let store = index.store();
    let lhs_cols = index.columns();
    let rhs_cols: Vec<Arc<Column>> = cfd
        .rhs()
        .iter()
        .map(|&a| store.column(instance, a))
        .collect();
    let interned_tableau: Vec<(Vec<InternedEntry>, Vec<InternedEntry>)> = cfd
        .tableau()
        .iter()
        .map(|tp| {
            (
                InternedEntry::of_all(&tp.lhs, lhs_cols),
                InternedEntry::of_all(&tp.rhs, &rhs_cols),
            )
        })
        .collect();
    let mut violations = Vec::new();
    // Single-tuple violations among the added tuples.
    for (pattern_idx, (tp, (ilhs, irhs))) in cfd.tableau().iter().zip(&interned_tableau).enumerate()
    {
        if tp.rhs.iter().all(|p| p.is_any()) {
            continue;
        }
        for &id in added {
            let Some(row) = store.row_of(id) else {
                continue;
            };
            if InternedEntry::all_match_row(ilhs, lhs_cols, row)
                && !InternedEntry::all_match_row(irhs, &rhs_cols, row)
            {
                violations.push(CfdViolation::SingleTuple {
                    pattern: pattern_idx,
                    tuple: id,
                });
            }
        }
    }
    // Pair violations involving an added tuple.
    let mut seen_pairs: BTreeSet<(TupleId, TupleId)> = BTreeSet::new();
    let mut key: Vec<ValueId> = Vec::with_capacity(lhs_cols.len());
    for &id in added {
        let Some(row) = store.row_of(id) else {
            continue;
        };
        key.clear();
        key.extend(lhs_cols.iter().map(|c| c.id_at(row)));
        let matching_patterns: Vec<usize> = interned_tableau
            .iter()
            .enumerate()
            .filter(|(_, (ilhs, _))| InternedEntry::all_match_key(ilhs, &key))
            .map(|(i, _)| i)
            .collect();
        if matching_patterns.is_empty() {
            continue;
        }
        for &other_row in index.rows_for_ids(&key) {
            let other = index.tuple_id(other_row);
            if other == id {
                continue;
            }
            // Report each unordered pair once; pairs entirely inside the
            // old data never reach this loop because `id` is added.
            let pair = if other < id { (other, id) } else { (id, other) };
            if !seen_pairs.insert(pair) {
                continue;
            }
            let agree = rhs_cols
                .iter()
                .all(|c| c.id_at(other_row as usize) == c.id_at(row));
            if !agree {
                for &p in &matching_patterns {
                    violations.push(CfdViolation::TuplePair {
                        pattern: p,
                        first: pair.0,
                        second: pair.1,
                    });
                }
            }
        }
    }
    violations.sort();
    violations.dedup();
    violations
}

/// Violations of a set of CINDs over a database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CindViolationReport {
    per_dependency: Vec<Vec<CindViolation>>,
}

impl CindViolationReport {
    /// Assembles a report from per-dependency violation lists.
    pub fn from_per_dependency(per_dependency: Vec<Vec<CindViolation>>) -> Self {
        CindViolationReport { per_dependency }
    }

    /// Violations of the `i`-th dependency.
    pub fn of(&self, i: usize) -> &[CindViolation] {
        &self.per_dependency[i]
    }

    /// Total number of violations.
    pub fn total(&self) -> usize {
        self.per_dependency.iter().map(|v| v.len()).sum()
    }

    /// Is the database clean with respect to every CIND?
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// All `(dependency index, violation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CindViolation)> {
        self.per_dependency
            .iter()
            .enumerate()
            .flat_map(|(i, vs)| vs.iter().map(move |v| (i, v)))
    }
}

/// Detects all violations of `cinds` in `db`.
pub fn detect_cind_violations(db: &Database, cinds: &[Cind]) -> DqResult<CindViolationReport> {
    let per_dependency = cinds
        .iter()
        .map(|c| c.violations(db))
        .collect::<DqResult<Vec<_>>>()?;
    Ok(CindViolationReport { per_dependency })
}

/// Violations of a set of eCFDs over an instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EcfdViolationReport {
    per_dependency: Vec<Vec<EcfdViolation>>,
}

impl EcfdViolationReport {
    /// Assembles a report from per-dependency violation lists.
    pub fn from_per_dependency(per_dependency: Vec<Vec<EcfdViolation>>) -> Self {
        EcfdViolationReport { per_dependency }
    }

    /// Violations of the `i`-th dependency.
    pub fn of(&self, i: usize) -> &[EcfdViolation] {
        &self.per_dependency[i]
    }

    /// Total number of violations.
    pub fn total(&self) -> usize {
        self.per_dependency.iter().map(|v| v.len()).sum()
    }

    /// Is the instance clean?
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// Detects all violations of `ecfds` in `instance`.
pub fn detect_ecfd_violations(instance: &RelationInstance, ecfds: &[Ecfd]) -> EcfdViolationReport {
    EcfdViolationReport {
        per_dependency: ecfds.iter().map(|e| e.violations(instance)).collect(),
    }
}

/// Detects all violations of a set of denial constraints in `instance`.
/// Returns, per constraint, the violating tuple combinations.
pub fn detect_denial_violations(
    instance: &RelationInstance,
    constraints: &[DenialConstraint],
) -> Vec<Vec<Vec<TupleId>>> {
    constraints.iter().map(|d| d.violations(instance)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{cst, wild, PatternTuple};
    use dq_relation::{Domain, RelationSchema, Value};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    fn d0(schema: &Arc<RelationSchema>) -> RelationInstance {
        let mut inst = RelationInstance::new(Arc::clone(schema));
        for (cc, ac, phn, street, city, zip) in [
            (44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE"),
            (44, 131, 3456789, "Crichton", "NYC", "EH4 8LE"),
            (1, 908, 3456789, "Mtn Ave", "NYC", "07974"),
        ] {
            inst.insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(phn),
                Value::str(street),
                Value::str(city),
                Value::str(zip),
            ])
            .unwrap();
        }
        inst
    }

    fn paper_cfds(schema: &Arc<RelationSchema>) -> Vec<Cfd> {
        vec![
            Cfd::new(
                schema,
                &["CC", "zip"],
                &["street"],
                vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
            )
            .unwrap(),
            Cfd::new(
                schema,
                &["CC", "AC", "phn"],
                &["street", "city", "zip"],
                vec![
                    PatternTuple::all_wildcards(3, 3),
                    PatternTuple::new(
                        vec![cst(44), cst(131), wild()],
                        vec![wild(), cst("EDI"), wild()],
                    ),
                    PatternTuple::new(
                        vec![cst(1), cst(908), wild()],
                        vec![wild(), cst("MH"), wild()],
                    ),
                ],
            )
            .unwrap(),
            Cfd::new(
                schema,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn report_aggregates_the_paper_violations() {
        let s = schema();
        let d = d0(&s);
        let report = detect_cfd_violations(&d, &paper_cfds(&s));
        // ϕ1: one pair violation; ϕ2: three single-tuple violations; ϕ3: none.
        assert_eq!(report.of(0).len(), 1);
        assert_eq!(report.of(1).len(), 3);
        assert_eq!(report.of(2).len(), 0);
        assert_eq!(report.total(), 4);
        assert_eq!(report.violated_dependencies(), 2);
        assert!(!report.is_clean());
        // Every tuple of D0 is dirty.
        assert_eq!(report.violating_tuples().len(), 3);
    }

    #[test]
    fn clean_instance_yields_clean_report() {
        let s = schema();
        let mut inst = RelationInstance::new(Arc::clone(&s));
        inst.insert_values([
            Value::int(44),
            Value::int(131),
            Value::int(1),
            Value::str("Mayfield"),
            Value::str("EDI"),
            Value::str("EH4"),
        ])
        .unwrap();
        let report = detect_cfd_violations(&inst, &paper_cfds(&s));
        assert!(report.is_clean());
        assert!(report.violating_tuples().is_empty());
    }

    #[test]
    fn incremental_detection_matches_full_detection_on_new_tuples() {
        let s = schema();
        let mut d = d0(&s);
        let cfds = paper_cfds(&s);
        // Start from a clean projection: delete the two dirty UK tuples so the
        // remaining instance has only single-tuple violations already known.
        let baseline = detect_cfd_violations(&d, &cfds);
        // Add a new tuple that collides with t1 on [CC, zip] but has another
        // street, creating a new pair violation of ϕ1.
        let new_id = d
            .insert_values([
                Value::int(44),
                Value::int(131),
                Value::int(9999999),
                Value::str("Lauriston"),
                Value::str("EDI"),
                Value::str("EH4 8LE"),
            ])
            .unwrap();
        let incr = detect_cfd_violations_incremental(&d, &cfds, &[new_id]);
        let full = detect_cfd_violations(&d, &cfds);
        // Every incremental violation involves the new tuple and appears in
        // the full report.
        for (i, v) in incr.iter() {
            assert!(v.tuples().contains(&new_id));
            assert!(full.of(i).contains(v));
        }
        // The number of new violations is the difference between full and
        // baseline counts.
        assert_eq!(incr.total(), full.total() - baseline.total());
        assert!(incr.total() >= 2); // at least the two new ϕ1 pairs
    }

    #[test]
    fn denial_detection_wrapper() {
        let s = schema();
        let d = d0(&s);
        let fd = crate::fd::Fd::new(&s, &["zip"], &["street"]);
        let dcs = DenialConstraint::from_fd(&fd);
        let report = detect_denial_violations(&d, &dcs);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].len(), 1); // t1, t2 share zip but differ on street
    }
}
