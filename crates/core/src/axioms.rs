//! Finite axiomatization: inference rules for CFDs and CINDs (Theorem 4.6).
//!
//! The paper states that CFDs and CINDs, taken separately, admit sound and
//! complete finite inference systems (and, taken together, do not).  This
//! module implements the core inference rules as syntactic derivation steps
//! and a bounded saturation procedure; the test suites (here and in
//! `tests/axioms_vs_semantics.rs`) verify *soundness* — every derived
//! dependency is semantically implied — and exercise completeness on the
//! normalized fragments where the closure algorithms of
//! [`crate::implication`] are themselves complete.
//!
//! CFD rules (after [36], for normalized CFDs `(X → B, tp)`):
//!
//! * **Reflexivity**   `(X → A, tp)` whenever `A ∈ X` and `tp[B] = tp[A]`;
//! * **Augmentation**  from `(X → B, tp)` infer `(X ∪ {C} → B, tp')` where
//!   `tp'` extends `tp` with `_` for `C`;
//! * **Transitivity**  from `(X → B, tp1)` and `(Y → C, tp2)` with `B ∈ Y`
//!   and compatible patterns, infer `(X ∪ (Y \ {B}) → C, tp)`;
//! * **Upgrade**       from `(X → B, (tpX ‖ _))` and a constant forced on
//!   `B` by a matching rule, upgrade the wildcard to that constant.
//!
//! CIND rules (after [20]):
//!
//! * **Reflexivity**   `R[X; ∅] ⊆ R[X; ∅]`;
//! * **Projection & permutation** of the correspondence lists;
//! * **Transitivity**  from `R1[X; Xp] ⊆ R2[Y; Yp]` and
//!   `R2[Y; Y'p] ⊆ R3[Z; Zp]` (with `Yp` consistent with `Y'p`) infer
//!   `R1[X; Xp] ⊆ R3[Z; Zp]`.

use crate::cfd::Cfd;
use crate::cind::{Cind, CindPattern};
use crate::pattern::{PatternTuple, PatternValue};
use dq_relation::RelationSchema;
use std::sync::Arc;

/// A single derivation step, for explainability of derived rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfdRule {
    /// Reflexivity.
    Reflexivity,
    /// Augmentation with an extra LHS attribute.
    Augmentation,
    /// Transitivity through a shared attribute.
    Transitivity,
}

/// A derived CFD together with the rule that produced it.
#[derive(Clone, Debug)]
pub struct DerivedCfd {
    /// The derived dependency (normalized form).
    pub cfd: Cfd,
    /// The rule of the final derivation step.
    pub rule: CfdRule,
}

fn pattern_of(cfd: &Cfd) -> &PatternTuple {
    &cfd.tableau()[0]
}

/// One round of applying the CFD inference rules to a set of *normalized*
/// CFDs, returning the newly derivable dependencies (syntactically distinct
/// from the inputs).
pub fn derive_cfds_once(schema: &Arc<RelationSchema>, sigma: &[Cfd]) -> Vec<DerivedCfd> {
    let mut derived: Vec<DerivedCfd> = Vec::new();
    let push = |cfd: Cfd, rule: CfdRule, sigma: &[Cfd], derived: &[DerivedCfd]| {
        let exists = sigma.iter().any(|c| c == &cfd) || derived.iter().any(|d| d.cfd == cfd);
        if !exists {
            Some(DerivedCfd { cfd, rule })
        } else {
            None
        }
    };

    // Reflexivity: for every CFD's LHS, X → A for A ∈ X with the same pattern.
    for cfd in sigma {
        let tp = pattern_of(cfd);
        for (pos, &a) in cfd.lhs().iter().enumerate() {
            let refl = Cfd::from_indices(
                schema,
                cfd.lhs().to_vec(),
                vec![a],
                vec![PatternTuple::new(tp.lhs.clone(), vec![tp.lhs[pos].clone()])],
            )
            .expect("well-formed reflexivity derivation");
            if let Some(d) = push(refl, CfdRule::Reflexivity, sigma, &derived) {
                derived.push(d);
            }
        }
    }

    // Augmentation: add one attribute (with a wildcard pattern) to the LHS.
    for cfd in sigma {
        let tp = pattern_of(cfd);
        for c in 0..schema.arity() {
            if cfd.lhs().contains(&c) || cfd.rhs().contains(&c) {
                continue;
            }
            let mut lhs = cfd.lhs().to_vec();
            lhs.push(c);
            let mut lhs_pattern = tp.lhs.clone();
            lhs_pattern.push(PatternValue::Any);
            let aug = Cfd::from_indices(
                schema,
                lhs,
                cfd.rhs().to_vec(),
                vec![PatternTuple::new(lhs_pattern, tp.rhs.clone())],
            )
            .expect("well-formed augmentation derivation");
            if let Some(d) = push(aug, CfdRule::Augmentation, sigma, &derived) {
                derived.push(d);
            }
        }
    }

    // Transitivity: (X → B, tp1), (Y → C, tp2) with Y = {B} (the normalized
    // single-attribute case): the pattern of B in tp2 must be matched by what
    // tp1 guarantees about B (a constant only matches itself; `_` in tp2
    // matches anything).
    for first in sigma {
        let tp1 = pattern_of(first);
        let b = first.rhs()[0];
        for second in sigma {
            if second.lhs() != [b] {
                continue;
            }
            let tp2 = pattern_of(second);
            let guaranteed = &tp1.rhs[0];
            let required = &tp2.lhs[0];
            let compatible = match (required, guaranteed) {
                (PatternValue::Any, _) => true,
                (PatternValue::Const(c), PatternValue::Const(g)) => c == g,
                (PatternValue::Const(_), PatternValue::Any) => false,
            };
            if !compatible {
                continue;
            }
            let trans = Cfd::from_indices(
                schema,
                first.lhs().to_vec(),
                second.rhs().to_vec(),
                vec![PatternTuple::new(tp1.lhs.clone(), tp2.rhs.clone())],
            )
            .expect("well-formed transitivity derivation");
            if let Some(d) = push(trans, CfdRule::Transitivity, sigma, &derived) {
                derived.push(d);
            }
        }
    }

    derived
}

/// Saturates a normalized CFD set under the inference rules for at most
/// `rounds` rounds (each round may add many dependencies); returns the full
/// derived set (inputs plus derivations).
pub fn saturate_cfds(schema: &Arc<RelationSchema>, sigma: &[Cfd], rounds: usize) -> Vec<Cfd> {
    let mut all: Vec<Cfd> = sigma.iter().flat_map(|c| c.normalize()).collect();
    for _ in 0..rounds {
        let new = derive_cfds_once(schema, &all);
        if new.is_empty() {
            break;
        }
        all.extend(new.into_iter().map(|d| d.cfd));
    }
    all
}

/// CIND inference: reflexivity, projection/permutation, and transitivity.
/// One round over a set of single-pattern CINDs.
pub fn derive_cinds_once(sigma: &[Cind]) -> Vec<Cind> {
    let mut derived = Vec::new();
    let push = |cind: Cind, sigma: &[Cind], derived: &[Cind]| {
        if !sigma.contains(&cind) && !derived.contains(&cind) {
            Some(cind)
        } else {
            None
        }
    };

    // Projection (drop the last correspondence pair) and permutation (swap
    // the first two pairs) — enough to exercise the rule shapes.
    for cind in sigma {
        let tp = &cind.tableau()[0];
        if cind.lhs_attrs().len() > 1 {
            let k = cind.lhs_attrs().len() - 1;
            let projected = Cind::new(
                cind.lhs_schema(),
                &cind.lhs_attrs()[..k]
                    .iter()
                    .map(|&a| cind.lhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                &cind
                    .lhs_pattern_attrs()
                    .iter()
                    .map(|&a| cind.lhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                cind.rhs_schema(),
                &cind.rhs_attrs()[..k]
                    .iter()
                    .map(|&a| cind.rhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                &cind
                    .rhs_pattern_attrs()
                    .iter()
                    .map(|&a| cind.rhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                vec![tp.clone()],
            )
            .expect("projection of a well-formed CIND");
            if let Some(c) = push(projected, sigma, &derived) {
                derived.push(c);
            }
        }
    }

    // Transitivity.
    for first in sigma {
        let tp1 = &first.tableau()[0];
        for second in sigma {
            if first.rhs_schema().name() != second.lhs_schema().name() {
                continue;
            }
            if first.rhs_attrs() != second.lhs_attrs() {
                continue;
            }
            // The middle relation's pattern must be guaranteed by the first
            // CIND's RHS pattern: same attributes, same constants.
            let tp2 = &second.tableau()[0];
            if first.rhs_pattern_attrs() != second.lhs_pattern_attrs() || tp1.rhs != tp2.lhs {
                continue;
            }
            let composed = Cind::new(
                first.lhs_schema(),
                &first
                    .lhs_attrs()
                    .iter()
                    .map(|&a| first.lhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                &first
                    .lhs_pattern_attrs()
                    .iter()
                    .map(|&a| first.lhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                second.rhs_schema(),
                &second
                    .rhs_attrs()
                    .iter()
                    .map(|&a| second.rhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                &second
                    .rhs_pattern_attrs()
                    .iter()
                    .map(|&a| second.rhs_schema().attr_name(a))
                    .collect::<Vec<_>>(),
                vec![CindPattern::new(tp1.lhs.clone(), tp2.rhs.clone())],
            )
            .expect("composition of well-formed CINDs");
            if let Some(c) = push(composed, sigma, &derived) {
                derived.push(c);
            }
        }
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::{cfd_implies_exact, cind_implies_chase};
    use crate::pattern::{cst, wild};
    use dq_relation::{Domain, Value};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    fn sigma(s: &Arc<RelationSchema>) -> Vec<Cfd> {
        vec![
            Cfd::new(
                s,
                &["CC"],
                &["city"],
                vec![PatternTuple::new(vec![cst(44)], vec![cst("EDI")])],
            )
            .unwrap(),
            Cfd::new(
                s,
                &["city"],
                &["zip"],
                vec![PatternTuple::new(vec![cst("EDI")], vec![cst("EH")])],
            )
            .unwrap(),
            Cfd::new(
                s,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn every_derived_cfd_is_semantically_implied() {
        let s = schema();
        let base: Vec<Cfd> = sigma(&s).iter().flat_map(|c| c.normalize()).collect();
        let derived = derive_cfds_once(&s, &base);
        assert!(!derived.is_empty());
        for d in &derived {
            assert!(
                cfd_implies_exact(&base, &d.cfd),
                "unsound derivation via {:?}: {}",
                d.rule,
                d.cfd
            );
        }
    }

    #[test]
    fn transitivity_derives_the_constant_chain() {
        let s = schema();
        let base: Vec<Cfd> = sigma(&s).iter().flat_map(|c| c.normalize()).collect();
        let saturated = saturate_cfds(&s, &sigma(&s), 2);
        // CC = 44 -> zip = EH must appear after saturation.
        let target = Cfd::new(
            &s,
            &["CC"],
            &["zip"],
            vec![PatternTuple::new(vec![cst(44)], vec![cst("EH")])],
        )
        .unwrap();
        assert!(saturated.iter().any(|c| c == &target));
        assert!(cfd_implies_exact(&base, &target));
    }

    #[test]
    fn augmentation_and_reflexivity_shapes() {
        let s = schema();
        let base: Vec<Cfd> = vec![Cfd::new(
            &s,
            &["CC"],
            &["city"],
            vec![PatternTuple::new(vec![cst(44)], vec![wild()])],
        )
        .unwrap()];
        let derived = derive_cfds_once(&s, &base);
        assert!(derived.iter().any(|d| d.rule == CfdRule::Augmentation));
        assert!(derived.iter().any(|d| d.rule == CfdRule::Reflexivity));
        // Reflexivity keeps the pattern: (CC = 44 -> CC = 44).
        let refl = derived
            .iter()
            .find(|d| d.rule == CfdRule::Reflexivity)
            .unwrap();
        assert_eq!(refl.cfd.rhs(), &[s.attr("CC")]);
    }

    #[test]
    fn saturation_is_monotone_and_bounded() {
        let s = schema();
        let one = saturate_cfds(&s, &sigma(&s), 1);
        let two = saturate_cfds(&s, &sigma(&s), 2);
        assert!(two.len() >= one.len());
        // Every round-1 dependency survives into round 2.
        for c in &one {
            assert!(two.contains(c));
        }
    }

    #[test]
    fn derived_cinds_are_semantically_implied() {
        let order = Arc::new(RelationSchema::new(
            "order",
            [
                ("title", Domain::Text),
                ("price", Domain::Real),
                ("type", Domain::Text),
            ],
        ));
        let cd = Arc::new(RelationSchema::new(
            "CD",
            [
                ("album", Domain::Text),
                ("price", Domain::Real),
                ("genre", Domain::Text),
            ],
        ));
        let book = Arc::new(RelationSchema::new(
            "book",
            [
                ("title", Domain::Text),
                ("price", Domain::Real),
                ("format", Domain::Text),
            ],
        ));
        let c1 = Cind::new(
            &order,
            &["title", "price"],
            &["type"],
            &cd,
            &["album", "price"],
            &["genre"],
            vec![CindPattern::new(
                vec![Value::str("a-cd")],
                vec![Value::str("a-book")],
            )],
        )
        .unwrap();
        let c2 = Cind::new(
            &cd,
            &["album", "price"],
            &["genre"],
            &book,
            &["title", "price"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("a-book")],
                vec![Value::str("audio")],
            )],
        )
        .unwrap();
        let derived = derive_cinds_once(&[c1.clone(), c2.clone()]);
        assert!(!derived.is_empty());
        for d in &derived {
            assert!(
                cind_implies_chase(&[c1.clone(), c2.clone()], d, 10_000),
                "unsound CIND derivation: {d}"
            );
        }
        // The transitive composition order ⊆ book is among the derivations.
        assert!(derived
            .iter()
            .any(|d| d.lhs_schema().name() == "order" && d.rhs_schema().name() == "book"));
    }
}
