//! # dq-core
//!
//! The primary contribution of Fan, *"Dependencies Revisited for Improving
//! Data Quality"* (PODS 2008): conditional dependencies and their static
//! analyses.
//!
//! * [`pattern`] — pattern tableaux and the match operator `≍`;
//! * [`fd`] / [`ind`] — the traditional dependencies being revisited
//!   (closure, implication, minimal covers, candidate keys, chase);
//! * [`cfd`] — conditional functional dependencies (Section 2.1);
//! * [`cind`] — conditional inclusion dependencies (Section 2.2);
//! * [`ecfd`] — CFDs with disjunction and inequality (Section 2.3);
//! * [`denial`] — denial constraints (Sections 2.3, 5);
//! * [`detect`] — violation detection, batch and incremental;
//! * [`engine`] — shared-index, parallel detection over dependency sets;
//! * [`stream`] — shard-cursor detection over in-RAM or memory-mapped
//!   columnar shards, memory bounded by dictionaries plus one shard;
//! * [`consistency`] — consistency analysis (Theorem 4.1/4.3, Example 4.1);
//! * [`implication`] — implication analysis and minimal covers
//!   (Theorem 4.2/4.3);
//! * [`analysis`] — the propagation-guided solver behind the exact checks,
//!   the rule-lint pass, and the vetting entry points pipelines call before
//!   a rule set drives detection or repair;
//! * [`axioms`] — finite inference systems (Theorem 4.6);
//! * [`propagation`] — dependency propagation through SPCU views
//!   (Theorem 4.7, Example 4.2).

pub mod analysis;
pub mod axioms;
pub mod cfd;
pub mod cind;
pub mod consistency;
pub mod denial;
pub mod detect;
pub mod ecfd;
pub mod engine;
pub mod fd;
pub mod implication;
pub mod ind;
mod interned;
pub mod pattern;
pub mod propagation;
pub mod stream;

/// Frequently used items.
pub mod prelude {
    pub use crate::analysis::{
        analyze_cfds, ensure_consistent, lint_cfds, AnalysisOptions, AnalysisStats, AnalyzedCfds,
        ImplicationResult, LintDiagnostic, LintSeverity, RuleLintReport,
    };
    pub use crate::axioms::{derive_cfds_once, derive_cinds_once, saturate_cfds};
    pub use crate::cfd::{Cfd, CfdViolation};
    pub use crate::cind::{Cind, CindPattern, CindViolation};
    pub use crate::consistency::{
        cfd_cind_consistent_bounded, cfd_set_consistent, cfd_set_consistent_naive,
        cfd_set_consistent_propagation, cind_set_consistent, ecfd_set_consistent,
        ConsistencyResult, ConsistencyWitness,
    };
    pub use crate::denial::{DcPredicate, DcTerm, DenialConstraint};
    pub use crate::detect::{
        detect_cfd_violations, detect_cfd_violations_incremental, detect_cind_violations,
        detect_denial_violations, detect_ecfd_violations, CfdViolationReport, CindViolationReport,
        EcfdViolationReport,
    };
    pub use crate::ecfd::{Ecfd, EcfdPattern, SetPattern};
    pub use crate::engine::{
        parallel_map, try_parallel_map, DetectionEngine, MaintainedCfdViolations,
    };
    pub use crate::fd::{attribute_closure, candidate_keys, fd_implies, minimal_cover, Fd};
    pub use crate::implication::{
        cfd_implies, cfd_implies_closure, cfd_implies_exact, cfd_implies_exact_naive,
        cfd_minimal_cover, cind_implies_chase,
    };
    pub use crate::ind::{ind_implies, is_acyclic, Ind};
    pub use crate::pattern::{cst, wild, PatternTuple, PatternValue};
    pub use crate::propagation::{propagates, Propagation};
    pub use crate::stream::{cfd_violations_from_shards, denial_violations_from_shards};
}

pub use prelude::*;
