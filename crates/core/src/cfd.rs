//! Conditional functional dependencies (CFDs), Section 2.1.
//!
//! A CFD `ϕ = R(X → Y, Tp)` pairs a standard FD `X → Y` (the *embedded FD*)
//! with a *pattern tableau* `Tp` over `X ∪ Y` whose entries are constants or
//! the unnamed variable `_`.  An instance `D` satisfies `ϕ` iff for every
//! pattern tuple `tp ∈ Tp` and every pair of tuples `t1, t2 ∈ D`:
//! if `t1[X] = t2[X] ≍ tp[X]` then `t1[Y] = t2[Y] ≍ tp[Y]`.
//!
//! Because the pair `(t, t)` is allowed, a pattern tuple with a constant in
//! its RHS also constrains *single* tuples (e.g. `cfd2` of the paper forces
//! `city = EDI` for every UK/131 tuple), which is why CFD violations come in
//! two flavours: single-tuple (constant) violations and tuple-pair (variable)
//! violations.  Traditional FDs are the special case of a single all-`_`
//! pattern tuple.

use crate::fd::Fd;
use crate::interned::InternedEntry;
use crate::pattern::{PatternTuple, PatternValue};
use dq_relation::store::FxHashMap;
use dq_relation::{
    Column, DqError, DqResult, HashIndex, InternedIndex, KeyCodec, ProjectionKey, RelationInstance,
    RelationSchema, TupleId, Value,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A conditional functional dependency.
#[derive(Clone, Debug, PartialEq)]
pub struct Cfd {
    schema: Arc<RelationSchema>,
    lhs: Vec<usize>,
    rhs: Vec<usize>,
    tableau: Vec<PatternTuple>,
}

impl Cfd {
    /// Creates a CFD from attribute names and a pattern tableau.
    ///
    /// Validates that the tableau rows have the right widths and that every
    /// constant belongs to the domain of its attribute.
    pub fn new(
        schema: &Arc<RelationSchema>,
        lhs: &[&str],
        rhs: &[&str],
        tableau: Vec<PatternTuple>,
    ) -> DqResult<Self> {
        let lhs_idx: Vec<usize> = lhs
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<DqResult<_>>()?;
        let rhs_idx: Vec<usize> = rhs
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<DqResult<_>>()?;
        let cfd = Cfd {
            schema: Arc::clone(schema),
            lhs: lhs_idx,
            rhs: rhs_idx,
            tableau,
        };
        cfd.validate()?;
        Ok(cfd)
    }

    /// Creates a CFD from attribute positions.
    pub fn from_indices(
        schema: &Arc<RelationSchema>,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
        tableau: Vec<PatternTuple>,
    ) -> DqResult<Self> {
        let cfd = Cfd {
            schema: Arc::clone(schema),
            lhs,
            rhs,
            tableau,
        };
        cfd.validate()?;
        Ok(cfd)
    }

    /// Lifts a traditional FD into a CFD with a single all-`_` pattern tuple.
    pub fn from_fd(fd: &Fd) -> Self {
        Cfd {
            schema: Arc::clone(fd.schema()),
            lhs: fd.lhs().to_vec(),
            rhs: fd.rhs().to_vec(),
            tableau: vec![PatternTuple::all_wildcards(fd.lhs().len(), fd.rhs().len())],
        }
    }

    fn validate(&self) -> DqResult<()> {
        if self.lhs.is_empty() && self.rhs.is_empty() {
            return Err(DqError::MalformedDependency {
                reason: "CFD with empty LHS and RHS".into(),
            });
        }
        for tp in &self.tableau {
            if tp.lhs.len() != self.lhs.len() || tp.rhs.len() != self.rhs.len() {
                return Err(DqError::MalformedDependency {
                    reason: format!(
                        "pattern tuple {tp} has wrong width for X of size {} and Y of size {}",
                        self.lhs.len(),
                        self.rhs.len()
                    ),
                });
            }
            for (p, &attr) in tp
                .lhs
                .iter()
                .zip(&self.lhs)
                .chain(tp.rhs.iter().zip(&self.rhs))
            {
                if let PatternValue::Const(v) = p {
                    if !self.schema.domain(attr).contains(v) {
                        return Err(DqError::MalformedDependency {
                            reason: format!(
                                "pattern constant `{v}` outside the domain of `{}`",
                                self.schema.attr_name(attr)
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The relation schema the CFD is defined on.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// LHS attribute positions (`X`).
    pub fn lhs(&self) -> &[usize] {
        &self.lhs
    }

    /// RHS attribute positions (`Y`).
    pub fn rhs(&self) -> &[usize] {
        &self.rhs
    }

    /// The pattern tableau `Tp`.
    pub fn tableau(&self) -> &[PatternTuple] {
        &self.tableau
    }

    /// The embedded traditional FD `X → Y`.
    pub fn embedded_fd(&self) -> Fd {
        Fd::from_indices(&self.schema, self.lhs.clone(), self.rhs.clone())
    }

    /// Is this CFD a traditional FD (single all-`_` pattern tuple)?
    pub fn is_traditional_fd(&self) -> bool {
        self.tableau.len() == 1 && self.tableau[0].is_all_wildcards()
    }

    /// Is this a *constant* CFD (every pattern entry of every row a constant)?
    /// Constant CFDs are single-tuple assertions and play a special role in
    /// consistency analysis.
    pub fn is_constant(&self) -> bool {
        self.tableau
            .iter()
            .all(|tp| tp.lhs.iter().all(|p| !p.is_any()) && tp.rhs.iter().all(|p| !p.is_any()))
    }

    /// Total size of the CFD: number of attributes times number of pattern
    /// tuples (the `n` of Table 1).
    pub fn size(&self) -> usize {
        (self.lhs.len() + self.rhs.len()) * self.tableau.len().max(1)
    }

    /// Normalizes the CFD into an equivalent set of CFDs each having a single
    /// pattern tuple and a single RHS attribute — the normal form used by the
    /// consistency, implication and repair algorithms.
    pub fn normalize(&self) -> Vec<Cfd> {
        let mut out = Vec::with_capacity(self.tableau.len() * self.rhs.len());
        for tp in &self.tableau {
            for (k, &b) in self.rhs.iter().enumerate() {
                out.push(Cfd {
                    schema: Arc::clone(&self.schema),
                    lhs: self.lhs.clone(),
                    rhs: vec![b],
                    tableau: vec![PatternTuple::new(tp.lhs.clone(), vec![tp.rhs[k].clone()])],
                });
            }
        }
        out
    }

    /// Does `instance` satisfy this CFD (`D ⊨ ϕ`)?
    pub fn holds_on(&self, instance: &RelationInstance) -> bool {
        self.violations(instance).is_empty()
    }

    /// All violations of this CFD in `instance`.
    ///
    /// Detection follows the two-pass strategy of [36]: a scan finds
    /// single-tuple violations of constant RHS patterns, and a hash
    /// partitioning on `X` finds pairs that agree on `X`, match a pattern,
    /// and disagree on `Y`.  Builds a fresh index on `X`; detection over many
    /// dependencies should share indexes through
    /// [`crate::engine::DetectionEngine`] instead.
    pub fn violations(&self, instance: &RelationInstance) -> Vec<CfdViolation> {
        let index = HashIndex::build(instance, &self.lhs);
        self.violations_with_index(instance, &index)
    }

    /// All violations of this CFD in `instance`, probing a caller-supplied
    /// index of `instance` on exactly [`lhs`](Self::lhs).
    ///
    /// Violations are returned in canonical (sorted) order, so any two
    /// detection paths over the same instance produce identical reports
    /// regardless of index iteration order.
    pub fn violations_with_index(
        &self,
        instance: &RelationInstance,
        index: &HashIndex,
    ) -> Vec<CfdViolation> {
        debug_assert_eq!(
            index.attrs(),
            self.lhs.as_slice(),
            "index keyed off the CFD's LHS"
        );
        let mut out = Vec::new();
        // Pass 1: single-tuple (constant) violations.
        for (pattern_idx, tp) in self.tableau.iter().enumerate() {
            let has_rhs_constant = tp.rhs.iter().any(|p| !p.is_any());
            if !has_rhs_constant {
                continue;
            }
            for (id, tuple) in instance.iter() {
                if tp.lhs_matches(tuple, &self.lhs) && !tp.rhs_matches(tuple, &self.rhs) {
                    out.push(CfdViolation::SingleTuple {
                        pattern: pattern_idx,
                        tuple: id,
                    });
                }
            }
        }
        // Pass 2: tuple-pair (variable) violations, via grouping on X.
        //
        // Within a group, a pair violates iff the two tuples differ in their
        // Y-projection, so partitioning the group by that projection replaces
        // the quadratic pair scan with work linear in the group plus the
        // violations actually reported: clean groups (one sub-partition) cost
        // O(|group|), and only cross-partition pairs are enumerated.
        let mut by_rhs: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        for (key, group) in index.multi_groups() {
            let matching_patterns: Vec<usize> = self
                .tableau
                .iter()
                .enumerate()
                .filter(|(_, tp)| tp.lhs.iter().zip(key.iter()).all(|(p, v)| p.matches(v)))
                .map(|(i, _)| i)
                .collect();
            if matching_patterns.is_empty() {
                continue;
            }
            by_rhs.clear();
            for &id in group {
                let tuple = instance.tuple(id).expect("live tuple");
                by_rhs.entry(tuple.project(&self.rhs)).or_default().push(id);
            }
            if by_rhs.len() < 2 {
                continue; // the whole group agrees on Y
            }
            let partitions: Vec<&Vec<TupleId>> = by_rhs.values().collect();
            for (i, first_part) in partitions.iter().enumerate() {
                for second_part in &partitions[i + 1..] {
                    for &a in *first_part {
                        for &b in *second_part {
                            let (first, second) = if a < b { (a, b) } else { (b, a) };
                            for &p in &matching_patterns {
                                out.push(CfdViolation::TuplePair {
                                    pattern: p,
                                    first,
                                    second,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Canonical order: hash-map group iteration is nondeterministic, and
        // downstream equality of reports relies on a stable order.
        out.sort_unstable();
        out
    }

    /// All violations of this CFD, computed over the interned columnar
    /// representation: pattern constants are translated into the per-column
    /// dictionaries once, after which both detection passes compare `u32`
    /// ids instead of values.  Produces exactly
    /// [`violations_with_index`](Self::violations_with_index)'s report
    /// (same canonical order) — the equality of ids is the equality of
    /// values, per column.
    ///
    /// `index` must be an interned index of `instance` on exactly
    /// [`lhs`](Self::lhs), typically served by an
    /// [`dq_relation::IndexPool`] through
    /// [`crate::engine::DetectionEngine`].
    pub fn violations_with_interned(
        &self,
        instance: &RelationInstance,
        index: &InternedIndex,
    ) -> Vec<CfdViolation> {
        debug_assert_eq!(
            index.attrs(),
            self.lhs.as_slice(),
            "index keyed off the CFD's LHS"
        );
        let store = index.store();
        let lhs_cols = index.columns();
        let rhs_cols: Vec<Arc<Column>> = self
            .rhs
            .iter()
            .map(|&a| store.column(instance, a))
            .collect();
        let interned_tableau: Vec<(Vec<InternedEntry>, Vec<InternedEntry>)> = self
            .tableau
            .iter()
            .map(|tp| {
                (
                    InternedEntry::of_all(&tp.lhs, lhs_cols),
                    InternedEntry::of_all(&tp.rhs, &rhs_cols),
                )
            })
            .collect();
        let mut out = Vec::new();
        // Pass 1: single-tuple (constant) violations, scanned column-wise.
        for (pattern_idx, (tp, (ilhs, irhs))) in
            self.tableau.iter().zip(&interned_tableau).enumerate()
        {
            let has_rhs_constant = tp.rhs.iter().any(|p| !p.is_any());
            if !has_rhs_constant {
                continue;
            }
            // An LHS constant absent from its column matches no row at all —
            // skip the scan outright.
            if ilhs.iter().any(|e| matches!(e, InternedEntry::Absent)) {
                continue;
            }
            for row in 0..store.len() {
                if InternedEntry::all_match_row(ilhs, lhs_cols, row)
                    && !InternedEntry::all_match_row(irhs, &rhs_cols, row)
                {
                    out.push(CfdViolation::SingleTuple {
                        pattern: pattern_idx,
                        tuple: store.tuple_id(row),
                    });
                }
            }
        }
        // Pass 2: tuple-pair (variable) violations.  Same partition-by-RHS
        // strategy as the value path, but the per-tuple RHS projection packs
        // into a machine word instead of allocating a `Vec<Value>`.
        let rhs_codec = KeyCodec::new(rhs_cols);
        let mut by_rhs: FxHashMap<ProjectionKey, Vec<TupleId>> = FxHashMap::default();
        let mut matching_patterns: Vec<usize> = Vec::new();
        for (key, rows) in index.multi_groups() {
            matching_patterns.clear();
            matching_patterns.extend(
                interned_tableau
                    .iter()
                    .enumerate()
                    .filter(|(_, (ilhs, _))| InternedEntry::all_match_key(ilhs, &key))
                    .map(|(i, _)| i),
            );
            if matching_patterns.is_empty() {
                continue;
            }
            by_rhs.clear();
            for &row in rows {
                by_rhs
                    .entry(rhs_codec.pack_row(row as usize))
                    .or_default()
                    .push(index.tuple_id(row));
            }
            if by_rhs.len() < 2 {
                continue; // the whole group agrees on Y
            }
            let partitions: Vec<&Vec<TupleId>> = by_rhs.values().collect();
            for (i, first_part) in partitions.iter().enumerate() {
                for second_part in &partitions[i + 1..] {
                    for &a in *first_part {
                        for &b in *second_part {
                            let (first, second) = if a < b { (a, b) } else { (b, a) };
                            for &p in &matching_patterns {
                                out.push(CfdViolation::TuplePair {
                                    pattern: p,
                                    first,
                                    second,
                                });
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The set of tuples involved in at least one violation of this CFD.
    pub fn violating_tuples(&self, instance: &RelationInstance) -> Vec<TupleId> {
        let mut ids: Vec<TupleId> = self
            .violations(instance)
            .into_iter()
            .flat_map(|v| v.tuples())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |attrs: &[usize]| {
            attrs
                .iter()
                .map(|&a| self.schema.attr_name(a).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{}([{}] -> [{}], {{",
            self.schema.name(),
            names(&self.lhs),
            names(&self.rhs)
        )?;
        for (i, tp) in self.tableau.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{tp}")?;
        }
        write!(f, "}})")
    }
}

/// A violation of a single CFD.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CfdViolation {
    /// A single tuple matches a pattern's LHS but fails a constant binding of
    /// the pattern's RHS.
    SingleTuple {
        /// Index of the offending pattern tuple within the tableau.
        pattern: usize,
        /// The violating tuple.
        tuple: TupleId,
    },
    /// Two tuples agree on `X`, match a pattern's LHS, but disagree on `Y`.
    TuplePair {
        /// Index of the offending pattern tuple within the tableau.
        pattern: usize,
        /// First tuple of the pair.
        first: TupleId,
        /// Second tuple of the pair.
        second: TupleId,
    },
}

impl CfdViolation {
    /// The tuples involved in the violation.
    pub fn tuples(&self) -> Vec<TupleId> {
        match self {
            CfdViolation::SingleTuple { tuple, .. } => vec![*tuple],
            CfdViolation::TuplePair { first, second, .. } => vec![*first, *second],
        }
    }

    /// The index of the pattern tuple that is violated.
    pub fn pattern(&self) -> usize {
        match self {
            CfdViolation::SingleTuple { pattern, .. } => *pattern,
            CfdViolation::TuplePair { pattern, .. } => *pattern,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{cst, wild};
    use dq_relation::{Domain, Value};

    /// The customer schema of Fig. 1.
    pub fn customer_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("name", Domain::Text),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    /// The instance D0 of Fig. 1.
    pub fn d0(schema: &Arc<RelationSchema>) -> RelationInstance {
        let mut inst = RelationInstance::new(Arc::clone(schema));
        for (cc, ac, phn, name, street, city, zip) in [
            (44, 131, 1234567, "Mike", "Mayfield", "NYC", "EH4 8LE"),
            (44, 131, 3456789, "Rick", "Crichton", "NYC", "EH4 8LE"),
            (1, 908, 3456789, "Joe", "Mtn Ave", "NYC", "07974"),
        ] {
            inst.insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(phn),
                Value::str(name),
                Value::str(street),
                Value::str(city),
                Value::str(zip),
            ])
            .unwrap();
        }
        inst
    }

    /// ϕ1 of Fig. 2: ([CC, zip] → [street], {(44, _ ‖ _)}).
    fn phi1(schema: &Arc<RelationSchema>) -> Cfd {
        Cfd::new(
            schema,
            &["CC", "zip"],
            &["street"],
            vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
        )
        .unwrap()
    }

    /// ϕ2 of Fig. 2: ([CC, AC, phn] → [street, city, zip], T2).
    fn phi2(schema: &Arc<RelationSchema>) -> Cfd {
        Cfd::new(
            schema,
            &["CC", "AC", "phn"],
            &["street", "city", "zip"],
            vec![
                PatternTuple::all_wildcards(3, 3),
                PatternTuple::new(
                    vec![cst(44), cst(131), wild()],
                    vec![wild(), cst("EDI"), wild()],
                ),
                PatternTuple::new(
                    vec![cst(1), cst(908), wild()],
                    vec![wild(), cst("MH"), wild()],
                ),
            ],
        )
        .unwrap()
    }

    /// ϕ3 of Fig. 2: ([CC, AC] → [city], {(_, _ ‖ _)}).
    fn phi3(schema: &Arc<RelationSchema>) -> Cfd {
        Cfd::new(
            schema,
            &["CC", "AC"],
            &["city"],
            vec![PatternTuple::all_wildcards(2, 1)],
        )
        .unwrap()
    }

    #[test]
    fn d0_satisfies_phi3_but_not_phi1_or_phi2() {
        let s = customer_schema();
        let d = d0(&s);
        assert!(phi3(&s).holds_on(&d));
        assert!(!phi1(&s).holds_on(&d));
        assert!(!phi2(&s).holds_on(&d));
    }

    #[test]
    fn phi1_violation_is_the_pair_t1_t2() {
        let s = customer_schema();
        let d = d0(&s);
        let v = phi1(&s).violations(&d);
        assert_eq!(v.len(), 1);
        assert_eq!(
            v[0],
            CfdViolation::TuplePair {
                pattern: 0,
                first: TupleId(0),
                second: TupleId(1)
            }
        );
    }

    #[test]
    fn phi2_single_tuple_violations_cover_all_three_tuples() {
        let s = customer_schema();
        let d = d0(&s);
        let cfd = phi2(&s);
        let violating = cfd.violating_tuples(&d);
        // t1 and t2 violate the (44, 131, _) pattern; t3 violates (01, 908, _).
        assert_eq!(violating, vec![TupleId(0), TupleId(1), TupleId(2)]);
        let singles = cfd
            .violations(&d)
            .into_iter()
            .filter(|v| matches!(v, CfdViolation::SingleTuple { .. }))
            .count();
        assert_eq!(singles, 3);
    }

    #[test]
    fn traditional_fd_embedding_round_trips() {
        let s = customer_schema();
        let fd = Fd::new(&s, &["CC", "AC"], &["city"]);
        let cfd = Cfd::from_fd(&fd);
        assert!(cfd.is_traditional_fd());
        assert_eq!(cfd.embedded_fd().lhs(), fd.lhs());
        let d = d0(&s);
        assert_eq!(cfd.holds_on(&d), fd.holds_on(&d));
    }

    #[test]
    fn normalization_splits_patterns_and_rhs() {
        let s = customer_schema();
        let cfd = phi2(&s);
        let normalized = cfd.normalize();
        assert_eq!(normalized.len(), 3 * 3);
        for n in &normalized {
            assert_eq!(n.rhs().len(), 1);
            assert_eq!(n.tableau().len(), 1);
        }
        // Normalization preserves satisfaction.
        let d = d0(&s);
        assert_eq!(cfd.holds_on(&d), normalized.iter().all(|n| n.holds_on(&d)));
    }

    #[test]
    fn malformed_cfds_are_rejected() {
        let s = customer_schema();
        // Wrong pattern width.
        assert!(Cfd::new(
            &s,
            &["CC", "zip"],
            &["street"],
            vec![PatternTuple::new(vec![cst(44)], vec![wild()])]
        )
        .is_err());
        // Constant outside the attribute's domain.
        assert!(Cfd::new(
            &s,
            &["CC"],
            &["street"],
            vec![PatternTuple::new(vec![cst("not an int")], vec![wild()])]
        )
        .is_err());
        // Unknown attribute.
        assert!(Cfd::new(&s, &["CC", "zipcode"], &["street"], vec![]).is_err());
    }

    #[test]
    fn constant_cfd_classification() {
        let s = customer_schema();
        let constant = Cfd::new(
            &s,
            &["CC"],
            &["city"],
            vec![PatternTuple::new(vec![cst(44)], vec![cst("EDI")])],
        )
        .unwrap();
        assert!(constant.is_constant());
        assert!(!phi1(&s).is_constant());
    }

    #[test]
    fn fixing_the_city_attribute_repairs_phi2_constant_violations() {
        let s = customer_schema();
        let mut d = d0(&s);
        let city = s.attr("city");
        d.update_cell(
            dq_relation::instance::CellRef::new(TupleId(0), city),
            Value::str("EDI"),
        )
        .unwrap();
        d.update_cell(
            dq_relation::instance::CellRef::new(TupleId(1), city),
            Value::str("EDI"),
        )
        .unwrap();
        d.update_cell(
            dq_relation::instance::CellRef::new(TupleId(2), city),
            Value::str("MH"),
        )
        .unwrap();
        assert!(phi2(&s).holds_on(&d));
        // phi1 is still violated: same zip, different street in the UK.
        assert!(!phi1(&s).holds_on(&d));
    }

    #[test]
    fn interned_detection_equals_value_detection() {
        let s = customer_schema();
        let d = d0(&s);
        let store = d.columnar();
        for cfd in [phi1(&s), phi2(&s), phi3(&s)] {
            let index = InternedIndex::build(&d, &store, cfd.lhs(), 1);
            assert_eq!(
                cfd.violations_with_interned(&d, &index),
                cfd.violations(&d),
                "{cfd}"
            );
        }
        // A pattern constant absent from the instance matches nothing.
        let ghost = Cfd::new(
            &s,
            &["CC"],
            &["city"],
            vec![PatternTuple::new(vec![cst(999)], vec![cst("Nowhere")])],
        )
        .unwrap();
        let index = InternedIndex::build(&d, &store, ghost.lhs(), 1);
        assert_eq!(
            ghost.violations_with_interned(&d, &index),
            ghost.violations(&d)
        );
        assert!(ghost.violations_with_interned(&d, &index).is_empty());
    }

    #[test]
    fn display_mentions_tableau() {
        let s = customer_schema();
        let text = phi1(&s).to_string();
        assert!(text.contains("customer([CC, zip] -> [street]"));
        assert!(text.contains("44"));
    }

    #[test]
    fn size_counts_attributes_times_patterns() {
        let s = customer_schema();
        assert_eq!(phi2(&s).size(), 6 * 3);
    }
}
