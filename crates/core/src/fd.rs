//! Traditional functional dependencies and keys.
//!
//! FDs are the baseline the paper revisits: they are always satisfiable, their
//! implication problem is linear (Table 1), and Armstrong's axioms give a
//! finite axiomatization.  This module implements the classical machinery —
//! attribute closure, implication, minimal covers, candidate keys — both as a
//! baseline for the benchmarks and as a building block for CFD reasoning
//! (every CFD embeds a traditional FD).

use dq_relation::{HashIndex, RelationInstance, RelationSchema, TupleId};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A functional dependency `X → Y` over a relation schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    schema: Arc<RelationSchema>,
    lhs: Vec<usize>,
    rhs: Vec<usize>,
}

impl Fd {
    /// Creates an FD from attribute names.
    ///
    /// # Panics
    /// Panics if an attribute does not exist (dependencies are static program
    /// data).
    pub fn new(schema: &Arc<RelationSchema>, lhs: &[&str], rhs: &[&str]) -> Self {
        Fd {
            schema: Arc::clone(schema),
            lhs: schema.attrs(lhs),
            rhs: schema.attrs(rhs),
        }
    }

    /// Creates an FD from attribute positions.
    pub fn from_indices(schema: &Arc<RelationSchema>, lhs: Vec<usize>, rhs: Vec<usize>) -> Self {
        Fd {
            schema: Arc::clone(schema),
            lhs,
            rhs,
        }
    }

    /// The relation schema this FD is defined on.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// LHS attribute positions (`X`).
    pub fn lhs(&self) -> &[usize] {
        &self.lhs
    }

    /// RHS attribute positions (`Y`).
    pub fn rhs(&self) -> &[usize] {
        &self.rhs
    }

    /// Does the instance satisfy this FD?
    pub fn holds_on(&self, instance: &RelationInstance) -> bool {
        self.violations(instance).is_empty()
    }

    /// Pairs of tuples jointly violating the FD.
    pub fn violations(&self, instance: &RelationInstance) -> Vec<(TupleId, TupleId)> {
        let mut out = Vec::new();
        let index = HashIndex::build(instance, &self.lhs);
        for (_, group) in index.multi_groups() {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let a = instance.tuple(group[i]).expect("live tuple");
                    let b = instance.tuple(group[j]).expect("live tuple");
                    if !a.agree_on(b, &self.rhs) {
                        out.push((group[i], group[j]));
                    }
                }
            }
        }
        out
    }

    /// Is `X` a key of the instance (i.e. does `X → attr(R)` hold)?
    pub fn is_key_of(
        schema: &Arc<RelationSchema>,
        lhs: &[&str],
        instance: &RelationInstance,
    ) -> bool {
        let all: Vec<usize> = (0..schema.arity()).collect();
        let fd = Fd {
            schema: Arc::clone(schema),
            lhs: schema.attrs(lhs),
            rhs: all,
        };
        fd.holds_on(instance)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |attrs: &[usize]| {
            attrs
                .iter()
                .map(|&a| self.schema.attr_name(a).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{}: [{}] -> [{}]",
            self.schema.name(),
            names(&self.lhs),
            names(&self.rhs)
        )
    }
}

/// Computes the attribute closure `X⁺` of a set of attribute positions under
/// a set of FDs (all over the same schema), in time linear in the total size
/// of the FDs (times the number of passes, bounded by the number of FDs).
pub fn attribute_closure(attrs: &[usize], fds: &[Fd]) -> BTreeSet<usize> {
    let mut closure: BTreeSet<usize> = attrs.iter().copied().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs().iter().all(|a| closure.contains(a))
                && fd.rhs().iter().any(|a| !closure.contains(a))
            {
                closure.extend(fd.rhs().iter().copied());
                changed = true;
            }
        }
    }
    closure
}

/// Does `fds ⊨ fd` (finite implication of FDs, via attribute closure)?
pub fn fd_implies(fds: &[Fd], fd: &Fd) -> bool {
    let closure = attribute_closure(fd.lhs(), fds);
    fd.rhs().iter().all(|a| closure.contains(a))
}

/// Computes a minimal cover of a set of FDs: RHS split into single
/// attributes, redundant FDs removed, and extraneous LHS attributes removed.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    if fds.is_empty() {
        return Vec::new();
    }
    let schema = Arc::clone(fds[0].schema());
    // 1. Split RHS into single attributes.
    let mut cover: Vec<Fd> = Vec::new();
    for fd in fds {
        for &b in fd.rhs() {
            cover.push(Fd::from_indices(&schema, fd.lhs().to_vec(), vec![b]));
        }
    }
    // 2. Remove extraneous LHS attributes.
    let mut i = 0;
    while i < cover.len() {
        let mut lhs = cover[i].lhs().to_vec();
        let rhs = cover[i].rhs().to_vec();
        let mut j = 0;
        while lhs.len() > 1 && j < lhs.len() {
            let mut reduced = lhs.clone();
            reduced.remove(j);
            let candidate = Fd::from_indices(&schema, reduced.clone(), rhs.clone());
            if fd_implies(&cover, &candidate) {
                lhs = reduced;
            } else {
                j += 1;
            }
        }
        cover[i] = Fd::from_indices(&schema, lhs, rhs);
        i += 1;
    }
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i].clone();
        let mut rest = cover.clone();
        rest.remove(i);
        if fd_implies(&rest, &fd) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover
}

/// Enumerates the candidate keys of a schema under a set of FDs (attribute
/// sets that determine every attribute and are minimal with that property).
/// Exponential in the number of attributes; intended for the small schemas of
/// the paper's examples.
pub fn candidate_keys(schema: &Arc<RelationSchema>, fds: &[Fd]) -> Vec<Vec<usize>> {
    let n = schema.arity();
    let all: BTreeSet<usize> = (0..n).collect();
    let mut keys: Vec<Vec<usize>> = Vec::new();
    // Iterate subsets by increasing size so minimality is by construction.
    for mask in 1u64..(1u64 << n) {
        let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if keys.iter().any(|k| k.iter().all(|a| subset.contains(a))) {
            continue; // a subset of this set is already a key
        }
        if attribute_closure(&subset, fds) == all {
            keys.push(subset);
        }
    }
    keys.sort_by_key(|k| (k.len(), k.clone()));
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, Value};

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    fn paper_instance(schema: &Arc<RelationSchema>) -> RelationInstance {
        // The instance D0 of Fig. 1 (projected on the FD-relevant attributes).
        let mut inst = RelationInstance::new(Arc::clone(schema));
        for (cc, ac, phn, street, city, zip) in [
            (44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE"),
            (44, 131, 3456789, "Crichton", "NYC", "EH4 8LE"),
            (1, 908, 3456789, "Mtn Ave", "NYC", "07974"),
        ] {
            inst.insert_values([
                Value::int(cc),
                Value::int(ac),
                Value::int(phn),
                Value::str(street),
                Value::str(city),
                Value::str(zip),
            ])
            .unwrap();
        }
        inst
    }

    #[test]
    fn paper_instance_satisfies_f1_and_f2() {
        let s = schema();
        let d0 = paper_instance(&s);
        let f1 = Fd::new(&s, &["CC", "AC", "phn"], &["street", "city", "zip"]);
        let f2 = Fd::new(&s, &["CC", "AC"], &["city"]);
        assert!(f1.holds_on(&d0));
        assert!(f2.holds_on(&d0));
    }

    #[test]
    fn violations_are_reported_pairwise() {
        let s = schema();
        let mut d = paper_instance(&s);
        // Make t1 and t2 disagree on city while sharing CC, AC.
        d.update_cell(
            dq_relation::instance::CellRef::new(TupleId(1), 4),
            Value::str("EDI"),
        )
        .unwrap();
        let f2 = Fd::new(&s, &["CC", "AC"], &["city"]);
        let v = f2.violations(&d);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], (TupleId(0), TupleId(1)));
    }

    #[test]
    fn closure_and_implication() {
        let s = schema();
        let fds = vec![
            Fd::new(&s, &["CC", "AC", "phn"], &["street", "city", "zip"]),
            Fd::new(&s, &["CC", "AC"], &["city"]),
            Fd::new(&s, &["zip"], &["street"]),
        ];
        let closure = attribute_closure(&s.attrs(&["CC", "AC", "phn"]), &fds);
        assert_eq!(closure.len(), 6);
        assert!(fd_implies(
            &fds,
            &Fd::new(&s, &["CC", "AC", "phn"], &["street"])
        ));
        assert!(!fd_implies(&fds, &Fd::new(&s, &["zip"], &["city"])));
        // Reflexivity: X -> X' for X' subset of X.
        assert!(fd_implies(&[], &Fd::new(&s, &["CC", "AC"], &["AC"])));
        // Transitivity through zip -> street.
        assert!(fd_implies(
            &fds,
            &Fd::new(&s, &["CC", "AC", "phn"], &["street"])
        ));
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let s = schema();
        let fds = vec![
            Fd::new(&s, &["CC", "AC"], &["city"]),
            // Redundant: implied by the one above.
            Fd::new(&s, &["CC", "AC", "phn"], &["city"]),
            Fd::new(&s, &["zip"], &["street", "city"]),
        ];
        let cover = minimal_cover(&fds);
        // zip -> street, zip -> city, [CC,AC] -> city remain.
        assert_eq!(cover.len(), 3);
        for fd in &cover {
            assert_eq!(fd.rhs().len(), 1);
        }
        // Everything in the original set is still implied by the cover.
        for fd in &fds {
            assert!(fd_implies(&cover, fd));
        }
        // Extraneous LHS attribute is removed.
        assert!(cover
            .iter()
            .all(|fd| fd.lhs() != s.attrs(&["CC", "AC", "phn"]).as_slice()));
    }

    #[test]
    fn candidate_keys_of_example_schema() {
        let s = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Int), ("C", Domain::Int)],
        ));
        let fds = vec![Fd::new(&s, &["A"], &["B"]), Fd::new(&s, &["B"], &["C"])];
        let keys = candidate_keys(&s, &fds);
        assert_eq!(keys, vec![vec![0]]);

        let fds2 = vec![Fd::new(&s, &["A"], &["B"]), Fd::new(&s, &["B"], &["A"])];
        let keys2 = candidate_keys(&s, &fds2);
        // Both {A, C} and {B, C} are candidate keys.
        assert_eq!(keys2.len(), 2);
    }

    #[test]
    fn is_key_of_detects_duplicates() {
        let s = schema();
        let d0 = paper_instance(&s);
        assert!(!Fd::is_key_of(&s, &["phn"], &d0) || d0.len() < 2);
        assert!(Fd::is_key_of(&s, &["CC", "AC", "phn"], &d0));
    }

    #[test]
    fn display_shows_attribute_names() {
        let s = schema();
        let fd = Fd::new(&s, &["CC", "AC"], &["city"]);
        assert_eq!(fd.to_string(), "customer: [CC, AC] -> [city]");
    }
}
