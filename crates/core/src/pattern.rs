//! Pattern tableaux and the match operator `≍`.
//!
//! Conditional dependencies (Section 2) extend their traditional
//! counterparts with a *pattern tableau*: each pattern tuple constrains the
//! dependency to the subset of tuples matching the pattern, and may in
//! addition bind attributes to constants.  A pattern entry is either a
//! constant `a` from the attribute's domain or the unnamed variable `_`.
//!
//! The operator `≍` ("matches") is defined by: `η1 ≍ η2` iff `η1 = η2` or one
//! of them is `_`.  It extends componentwise to tuples.

use dq_relation::{Tuple, Value};
use std::fmt;

/// A single entry of a pattern tuple: a constant or the unnamed variable `_`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternValue {
    /// The unnamed variable `_`, matching any constant of the domain.
    Any,
    /// A constant of the attribute's domain.
    Const(Value),
}

impl PatternValue {
    /// The unnamed variable `_`.
    pub fn any() -> Self {
        PatternValue::Any
    }

    /// A constant pattern entry.
    pub fn constant(v: impl Into<Value>) -> Self {
        PatternValue::Const(v.into())
    }

    /// Is this the unnamed variable?
    pub fn is_any(&self) -> bool {
        matches!(self, PatternValue::Any)
    }

    /// The constant, if this entry is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            PatternValue::Const(v) => Some(v),
            PatternValue::Any => None,
        }
    }

    /// The match operator `≍` against a data value.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternValue::Any => true,
            PatternValue::Const(c) => c == v,
        }
    }

    /// The match operator `≍` between two pattern entries (used by
    /// implication analysis: `η1 ≍ η2` iff equal or one is `_`).
    pub fn matches_pattern(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (PatternValue::Any, _) | (_, PatternValue::Any) => true,
            (PatternValue::Const(a), PatternValue::Const(b)) => a == b,
        }
    }

    /// Is `self` at least as restrictive as `other`?  A constant is more
    /// restrictive than `_`; constants only subsume themselves.
    pub fn subsumes(&self, other: &PatternValue) -> bool {
        match (other, self) {
            (PatternValue::Any, _) => true,
            (PatternValue::Const(b), PatternValue::Const(a)) => a == b,
            (PatternValue::Const(_), PatternValue::Any) => false,
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Any => write!(f, "_"),
            PatternValue::Const(v) => write!(f, "{v}"),
        }
    }
}

impl<V: Into<Value>> From<V> for PatternValue {
    fn from(v: V) -> Self {
        PatternValue::Const(v.into())
    }
}

/// A pattern tuple of a CFD tableau: entries for the LHS attributes `X` and
/// the RHS attributes `Y` of the embedded FD, separated by `‖` in the paper's
/// notation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternTuple {
    /// Pattern entries for the LHS attributes, positionally aligned with the
    /// dependency's LHS attribute list.
    pub lhs: Vec<PatternValue>,
    /// Pattern entries for the RHS attributes.
    pub rhs: Vec<PatternValue>,
}

impl PatternTuple {
    /// Creates a pattern tuple.
    pub fn new(lhs: Vec<PatternValue>, rhs: Vec<PatternValue>) -> Self {
        PatternTuple { lhs, rhs }
    }

    /// A pattern tuple consisting solely of `_` entries — the pattern of a
    /// traditional FD embedded as a CFD.
    pub fn all_wildcards(lhs_len: usize, rhs_len: usize) -> Self {
        PatternTuple {
            lhs: vec![PatternValue::Any; lhs_len],
            rhs: vec![PatternValue::Any; rhs_len],
        }
    }

    /// Does a data tuple's projection onto the LHS attributes match the LHS
    /// pattern (`t[X] ≍ tp[X]`)?
    pub fn lhs_matches(&self, tuple: &Tuple, lhs_attrs: &[usize]) -> bool {
        self.lhs
            .iter()
            .zip(lhs_attrs)
            .all(|(p, &a)| p.matches(tuple.get(a)))
    }

    /// Does a data tuple's projection onto the RHS attributes match the RHS
    /// pattern (`t[Y] ≍ tp[Y]`)?
    pub fn rhs_matches(&self, tuple: &Tuple, rhs_attrs: &[usize]) -> bool {
        self.rhs
            .iter()
            .zip(rhs_attrs)
            .all(|(p, &a)| p.matches(tuple.get(a)))
    }

    /// RHS positions whose constant pattern the tuple fails to match.
    pub fn rhs_mismatches(&self, tuple: &Tuple, rhs_attrs: &[usize]) -> Vec<usize> {
        self.rhs
            .iter()
            .zip(rhs_attrs)
            .enumerate()
            .filter(|(_, (p, &a))| !p.matches(tuple.get(a)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Is this pattern tuple free of constants (i.e. a traditional FD row)?
    pub fn is_all_wildcards(&self) -> bool {
        self.lhs.iter().all(PatternValue::is_any) && self.rhs.iter().all(PatternValue::is_any)
    }

    /// Does this pattern tuple subsume `other` (match at least every tuple
    /// `other` matches, and impose at most the same RHS bindings)?  Used to
    /// prune redundant pattern tuples when computing minimal covers.
    pub fn subsumes(&self, other: &PatternTuple) -> bool {
        self.lhs.len() == other.lhs.len()
            && self.rhs.len() == other.rhs.len()
            && self
                .lhs
                .iter()
                .zip(&other.lhs)
                .all(|(a, b)| b.subsumes(a) || a == b)
            && self.rhs.iter().zip(&other.rhs).all(|(a, b)| a == b)
    }
}

impl fmt::Display for PatternTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " ‖ ")?;
        for (i, p) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// Shorthand used by examples and tests: turns `Some(value)`-like inputs into
/// pattern entries.  `wild()` stands for `_`.
pub fn wild() -> PatternValue {
    PatternValue::Any
}

/// Shorthand for a constant pattern entry.
pub fn cst(v: impl Into<Value>) -> PatternValue {
    PatternValue::Const(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_operator_on_values() {
        assert!(wild().matches(&Value::str("Mayfield")));
        assert!(cst("EDI").matches(&Value::str("EDI")));
        assert!(!cst("EDI").matches(&Value::str("NYC")));
        assert!(cst(44).matches(&Value::int(44)));
    }

    #[test]
    fn match_operator_between_patterns_mirrors_paper_examples() {
        // (Mayfield, EDI) ≍ (_, EDI) but (Mayfield, EDI) !≍ (_, NYC)
        let a = [cst("Mayfield"), cst("EDI")];
        let b = [wild(), cst("EDI")];
        let c = [wild(), cst("NYC")];
        assert!(a.iter().zip(&b).all(|(x, y)| x.matches_pattern(y)));
        assert!(!a.iter().zip(&c).all(|(x, y)| x.matches_pattern(y)));
    }

    #[test]
    fn subsumption_ordering() {
        assert!(cst(1).subsumes(&wild()));
        assert!(cst(1).subsumes(&cst(1)));
        assert!(!cst(1).subsumes(&cst(2)));
        assert!(!wild().subsumes(&cst(1)));
        assert!(wild().subsumes(&wild()));
    }

    #[test]
    fn tuple_matching_against_attribute_lists() {
        let t = Tuple::from_values([Value::int(44), Value::int(131), Value::str("EDI")]);
        let tp = PatternTuple::new(vec![cst(44), wild()], vec![cst("EDI")]);
        assert!(tp.lhs_matches(&t, &[0, 1]));
        assert!(tp.rhs_matches(&t, &[2]));
        let tp2 = PatternTuple::new(vec![cst(1), wild()], vec![cst("EDI")]);
        assert!(!tp2.lhs_matches(&t, &[0, 1]));
    }

    #[test]
    fn rhs_mismatch_positions() {
        let t = Tuple::from_values([Value::str("NYC"), Value::str("EH4")]);
        let tp = PatternTuple::new(vec![], vec![cst("EDI"), wild()]);
        assert_eq!(tp.rhs_mismatches(&t, &[0, 1]), vec![0]);
    }

    #[test]
    fn all_wildcards_is_a_traditional_fd_row() {
        let tp = PatternTuple::all_wildcards(2, 1);
        assert!(tp.is_all_wildcards());
        let t = Tuple::from_values([Value::int(1), Value::int(2), Value::int(3)]);
        assert!(tp.lhs_matches(&t, &[0, 1]) && tp.rhs_matches(&t, &[2]));
    }

    #[test]
    fn pattern_tuple_subsumption() {
        // (44, _ || _) subsumes (44, 131 || _): it matches strictly more.
        let general = PatternTuple::new(vec![cst(44), wild()], vec![wild()]);
        let specific = PatternTuple::new(vec![cst(44), cst(131)], vec![wild()]);
        assert!(general.subsumes(&specific));
        assert!(!specific.subsumes(&general));
        // Differing RHS bindings are never subsumed.
        let bound = PatternTuple::new(vec![cst(44), wild()], vec![cst("EDI")]);
        assert!(!general.subsumes(&bound));
    }

    #[test]
    fn display_uses_paper_notation() {
        let tp = PatternTuple::new(vec![cst(44), wild()], vec![cst("EDI")]);
        assert_eq!(tp.to_string(), "(44, _ ‖ EDI)");
    }

    // --- match-operator edge cases ------------------------------------------

    /// A wildcard-only row matches every tuple on both sides: it is exactly
    /// the embedded traditional FD and never produces a constant mismatch.
    #[test]
    fn wildcard_only_rows_match_everything_and_mismatch_nothing() {
        let tp = PatternTuple::all_wildcards(3, 2);
        for values in [
            vec![
                Value::int(0),
                Value::int(0),
                Value::int(0),
                Value::int(0),
                Value::int(0),
            ],
            vec![
                Value::str(""),
                Value::str("x"),
                Value::bool(true),
                Value::real(1.5),
                Value::int(-7),
            ],
        ] {
            let t = Tuple::from_values(values);
            assert!(tp.lhs_matches(&t, &[0, 1, 2]));
            assert!(tp.rhs_matches(&t, &[3, 4]));
            assert!(tp.rhs_mismatches(&t, &[3, 4]).is_empty());
        }
    }

    /// A constant-RHS row with a wildcard LHS constrains *every* tuple: the
    /// LHS side always matches, so the RHS constant must hold unconditionally
    /// (the single-tuple violation class of Section 2.1).
    #[test]
    fn constant_rhs_with_wildcard_lhs_applies_to_every_tuple() {
        let tp = PatternTuple::new(vec![wild()], vec![cst("EDI")]);
        let conforming = Tuple::from_values([Value::str("anything"), Value::str("EDI")]);
        let violating = Tuple::from_values([Value::str("anything"), Value::str("NYC")]);
        assert!(tp.lhs_matches(&conforming, &[0]) && tp.rhs_matches(&conforming, &[1]));
        assert!(tp.lhs_matches(&violating, &[0]) && !tp.rhs_matches(&violating, &[1]));
        assert_eq!(tp.rhs_mismatches(&violating, &[1]), vec![0]);
    }

    /// Finite-domain values (booleans) behave like any other constant under
    /// `≍`: equality on the nose, wildcard for free — and the two domain
    /// elements never match each other.
    #[test]
    fn finite_domain_values_match_by_equality_only() {
        assert!(cst(true).matches(&Value::bool(true)));
        assert!(!cst(true).matches(&Value::bool(false)));
        assert!(cst(false).matches(&Value::bool(false)));
        assert!(wild().matches(&Value::bool(true)) && wild().matches(&Value::bool(false)));
        // Cross-domain constants never match: `true` is not the string "true".
        assert!(!cst(true).matches(&Value::str("true")));
        assert!(!cst(1).matches(&Value::bool(true)));
    }

    /// The asymmetry Section 2.1 relies on: `≍` itself is symmetric
    /// (`a ≍ _` and `_ ≍ a`), but its two *uses* are not interchangeable —
    /// a data value is only consumed on the left of `t[X] ≍ tp[X]`, so a
    /// constant pattern entry accepts exactly one value while the wildcard
    /// accepts all, and consequently subsumption between entries is a strict
    /// one-way order (`a` refines `_`, never the reverse).
    #[test]
    fn match_operator_asymmetry_between_constants_and_wildcards() {
        // Symmetric as a relation between pattern entries...
        assert!(cst("EDI").matches_pattern(&wild()));
        assert!(wild().matches_pattern(&cst("EDI")));
        // ...but directional as a constraint: the constant pins data, the
        // wildcard does not, and the refinement order is strict.
        assert!(cst("EDI").subsumes(&wild()));
        assert!(!wild().subsumes(&cst("EDI")));
        // Two distinct constants match neither way, and matching a value is
        // not matching a pattern: `_` as a pattern entry matches the value
        // "EDI", yet no value exists that `≍`-matches both "EDI" and "NYC".
        assert!(!cst("EDI").matches_pattern(&cst("NYC")));
        let candidates = [Value::str("EDI"), Value::str("NYC"), Value::str("_")];
        assert!(!candidates
            .iter()
            .any(|v| cst("EDI").matches(v) && cst("NYC").matches(v)));
    }

    /// `rhs_mismatches` pinpoints only constant mismatches, in position
    /// order, across mixed wildcard/constant rows.
    #[test]
    fn rhs_mismatch_positions_across_mixed_rows() {
        let t = Tuple::from_values([Value::str("NYC"), Value::int(212), Value::bool(false)]);
        let tp = PatternTuple::new(vec![], vec![cst("EDI"), wild(), cst(true)]);
        assert_eq!(tp.rhs_mismatches(&t, &[0, 1, 2]), vec![0, 2]);
        let all_wild = PatternTuple::new(vec![], vec![wild(), wild(), wild()]);
        assert!(all_wild.rhs_mismatches(&t, &[0, 1, 2]).is_empty());
    }
}
