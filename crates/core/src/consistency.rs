//! Consistency analysis of conditional dependencies (Section 4.1).
//!
//! Unlike traditional FDs and INDs, a set of CFDs may be *inconsistent*: no
//! nonempty instance satisfies it (Example 4.1).  The consistency problem is
//! NP-complete for CFDs, trivial (O(1)) for CINDs, and undecidable for CFDs
//! and CINDs taken together (Theorem 4.1); in the absence of finite-domain
//! attributes it drops to quadratic time for CFDs (Theorem 4.3).
//!
//! This module implements:
//!
//! * [`cfd_set_consistent`] — the exact decision procedure, delegating to the
//!   propagation-guided solver in [`crate::analysis`] (sound quadratic first
//!   pass, then a DPLL-style search over packed candidate ids);
//! * [`cfd_set_consistent_naive`] — the seed's blind backtracking search over
//!   the witness-tuple characterization, kept as the reference the solver is
//!   property-asserted against;
//! * [`cfd_set_consistent_propagation`] — the quadratic fixpoint propagation
//!   that is sound in general and complete when no pattern attribute ranges
//!   over a finite domain;
//! * [`ecfd_set_consistent`] — the analogous procedure for eCFDs (which can
//!   force finite ranges even over infinite domains, Section 4.1);
//! * [`cind_set_consistent`] — constantly `true`, with a witness constructed
//!   by a bounded chase;
//! * [`cfd_cind_consistent_bounded`] — the bounded-chase *heuristic* for CFDs
//!   and CINDs taken together (the exact problem being undecidable).

use crate::analysis::AnalysisStats;
use crate::cfd::Cfd;
use crate::cind::Cind;
use crate::detect::detect_cfd_violations;
use crate::ecfd::Ecfd;
use crate::pattern::PatternValue;
use dq_relation::{Database, RelationInstance, RelationSchema, Tuple, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A satisfying witness produced by a consistency check: a single tuple for
/// one-relation dependency classes (CFDs, eCFDs), a database for
/// multi-relation ones (CINDs).
#[derive(Clone, Debug)]
pub enum ConsistencyWitness {
    /// A single tuple whose one-tuple instance satisfies the set.
    Tuple(Tuple),
    /// A database satisfying the set (built by the bounded chase).
    Database(Database),
}

/// Result of a consistency check — the one result struct shared by every
/// consistency entry point (CFD, eCFD, CIND): verdict, optional witness, and
/// the solver statistics that produced it.
#[derive(Clone, Debug)]
pub struct ConsistencyResult {
    /// Is the dependency set consistent (satisfiable by a nonempty instance)?
    pub consistent: bool,
    /// A witness when consistent and one was constructed.
    pub witness: Option<ConsistencyWitness>,
    /// Search statistics (all zero for the trivial and naive procedures).
    pub stats: AnalysisStats,
}

impl ConsistencyResult {
    pub(crate) fn inconsistent() -> Self {
        ConsistencyResult {
            consistent: false,
            witness: None,
            stats: AnalysisStats::default(),
        }
    }

    pub(crate) fn consistent_with(witness: Tuple) -> Self {
        ConsistencyResult {
            consistent: true,
            witness: Some(ConsistencyWitness::Tuple(witness)),
            stats: AnalysisStats::default(),
        }
    }

    pub(crate) fn trivially_consistent() -> Self {
        ConsistencyResult {
            consistent: true,
            witness: None,
            stats: AnalysisStats::default(),
        }
    }

    pub(crate) fn with_stats(mut self, stats: AnalysisStats) -> Self {
        self.stats = stats;
        self
    }

    /// The witness tuple, when the witness is a single tuple.
    pub fn witness_tuple(&self) -> Option<&Tuple> {
        match &self.witness {
            Some(ConsistencyWitness::Tuple(t)) => Some(t),
            _ => None,
        }
    }

    /// The witness database, when the witness is a database.
    pub fn witness_database(&self) -> Option<&Database> {
        match &self.witness {
            Some(ConsistencyWitness::Database(db)) => Some(db),
            _ => None,
        }
    }
}

/// Candidate values for attribute `attr` when searching for a witness tuple:
/// for a finite domain, the whole domain; otherwise the constants mentioned
/// in the dependencies for that attribute plus one fresh constant.
pub(crate) fn candidate_values(
    schema: &RelationSchema,
    attr: usize,
    mentioned: &[Value],
) -> Vec<Value> {
    let domain = schema.domain(attr);
    if let Some(values) = domain.enumerate() {
        return values;
    }
    let mut candidates: Vec<Value> = mentioned.to_vec();
    candidates.sort();
    candidates.dedup();
    if let Some(fresh) = domain.fresh_value(&candidates) {
        candidates.push(fresh);
    }
    candidates
}

/// Constants mentioned by the (normalized) CFDs, per attribute.
pub(crate) fn mentioned_constants(schema: &RelationSchema, cfds: &[Cfd]) -> Vec<Vec<Value>> {
    let mut mentioned: Vec<Vec<Value>> = vec![Vec::new(); schema.arity()];
    for cfd in cfds {
        for tp in cfd.tableau() {
            for (p, &a) in tp
                .lhs
                .iter()
                .zip(cfd.lhs())
                .chain(tp.rhs.iter().zip(cfd.rhs()))
            {
                if let PatternValue::Const(v) = p {
                    mentioned[a].push(v.clone());
                }
            }
        }
    }
    mentioned
}

/// Attributes that occur in some pattern of the CFD set.
pub(crate) fn pattern_attributes(schema: &RelationSchema, cfds: &[Cfd]) -> Vec<usize> {
    let mut used = vec![false; schema.arity()];
    for cfd in cfds {
        for &a in cfd.lhs().iter().chain(cfd.rhs()) {
            used[a] = true;
        }
    }
    (0..schema.arity()).filter(|&a| used[a]).collect()
}

/// Does the single tuple `t` satisfy every CFD of `cfds` (as a one-tuple
/// instance)?  Only the constant-binding part of the semantics matters.
pub(crate) fn tuple_satisfies(cfds: &[Cfd], t: &Tuple) -> bool {
    cfds.iter().all(|cfd| {
        cfd.tableau()
            .iter()
            .all(|tp| !tp.lhs_matches(t, cfd.lhs()) || tp.rhs_matches(t, cfd.rhs()))
    })
}

/// Exact consistency check for a set of CFDs over one relation schema.
///
/// Delegates to the propagation-guided solver of [`crate::analysis`]: the
/// sound quadratic fixpoint runs first (and is complete without
/// finite-domain pattern attributes, Theorem 4.3), then a DPLL-style search
/// over packed candidate ids with unit propagation, partial-assignment
/// conflict rejection and most-constrained-attribute ordering decides the
/// finite-domain case.  The verdict is identical to
/// [`cfd_set_consistent_naive`] on every input (property-asserted in
/// `tests/analysis_equivalence.rs`); the worst case remains exponential —
/// the NP-completeness of Theorem 4.1 — but pruning collapses it on real
/// rule sets.
pub fn cfd_set_consistent(cfds: &[Cfd]) -> ConsistencyResult {
    crate::analysis::solver::solve_cfd_consistency(cfds, 0)
}

/// The seed's exact consistency check: blind backtracking over the witness
/// candidate sets, testing satisfaction only at full depth.  Kept as the
/// reference procedure the solver is asserted against.
///
/// Uses the witness-tuple characterization: the set is consistent iff there
/// exists a single tuple satisfying every pattern constraint.  The search
/// assigns the attributes that occur in the dependencies, drawing from the
/// finite candidate sets described in Section 4.1 (whole domain for
/// finite-domain attributes, mentioned constants plus a fresh value
/// otherwise); the remaining attributes are filled with fresh values.
pub fn cfd_set_consistent_naive(cfds: &[Cfd]) -> ConsistencyResult {
    let Some(first) = cfds.first() else {
        return ConsistencyResult::trivially_consistent();
    };
    let schema = Arc::clone(first.schema());
    let mentioned = mentioned_constants(&schema, cfds);
    let attrs = pattern_attributes(&schema, cfds);

    // Pre-compute candidates per constrained attribute.
    let candidates: BTreeMap<usize, Vec<Value>> = attrs
        .iter()
        .map(|&a| (a, candidate_values(&schema, a, &mentioned[a])))
        .collect();

    // Default (fresh) value for every attribute, used for unconstrained
    // attributes and as the starting point of the search.
    let mut base: Vec<Value> = (0..schema.arity())
        .map(|a| {
            schema
                .domain(a)
                .fresh_value(&mentioned[a])
                .unwrap_or_else(|| schema.domain(a).enumerate().expect("finite domain")[0].clone())
        })
        .collect();

    fn search(
        cfds: &[Cfd],
        attrs: &[usize],
        candidates: &BTreeMap<usize, Vec<Value>>,
        values: &mut Vec<Value>,
        depth: usize,
    ) -> Option<Tuple> {
        if depth == attrs.len() {
            let t = Tuple::new(values.clone());
            return tuple_satisfies(cfds, &t).then_some(t);
        }
        let attr = attrs[depth];
        for candidate in &candidates[&attr] {
            values[attr] = candidate.clone();
            if let Some(t) = search(cfds, attrs, candidates, values, depth + 1) {
                return Some(t);
            }
        }
        None
    }

    match search(cfds, &attrs, &candidates, &mut base, 0) {
        Some(witness) => ConsistencyResult::consistent_with(witness),
        None => ConsistencyResult::inconsistent(),
    }
}

/// The quadratic-time propagation check (Theorem 4.3): sound for every CFD
/// set, and complete when no attribute occurring in a pattern has a finite
/// domain.
///
/// The procedure looks for a single witness tuple by *forcing* constants: a
/// normalized CFD whose LHS pattern constants are all already forced (and
/// whose wildcard LHS attributes are unconstrained) must have its RHS
/// constant satisfied, so that constant is forced too.  Two distinct forced
/// constants for the same attribute mean no witness exists under those
/// forcings; with infinite domains the only unavoidable forcings are the ones
/// derived here, so a conflict-free fixpoint implies consistency.
pub fn cfd_set_consistent_propagation(cfds: &[Cfd]) -> bool {
    propagation_fixpoint(cfds).is_some()
}

/// The propagation fixpoint underlying [`cfd_set_consistent_propagation`]:
/// `None` on a forced-constant conflict (the set is inconsistent), otherwise
/// the map of forced constants — which the solver turns into a witness when
/// the fixpoint is complete (no finite-domain pattern attribute).
pub(crate) fn propagation_fixpoint(cfds: &[Cfd]) -> Option<BTreeMap<usize, Value>> {
    let normalized: Vec<Cfd> = cfds.iter().flat_map(|c| c.normalize()).collect();
    let Some(first) = normalized.first() else {
        return Some(BTreeMap::new());
    };
    let schema = Arc::clone(first.schema());
    let mut forced: BTreeMap<usize, Value> = BTreeMap::new();
    loop {
        let mut changed = false;
        for cfd in &normalized {
            let tp = &cfd.tableau()[0];
            // Does the hypothesis necessarily hold for the witness tuple we
            // are constructing?  A wildcard always matches; a constant
            // matches only if that constant has already been forced.
            let fires = tp.lhs.iter().zip(cfd.lhs()).all(|(p, &a)| match p {
                PatternValue::Any => true,
                PatternValue::Const(c) => forced.get(&a) == Some(c),
            });
            if !fires {
                continue;
            }
            let b = cfd.rhs()[0];
            match &tp.rhs[0] {
                PatternValue::Any => {}
                PatternValue::Const(c) => match forced.get(&b) {
                    Some(existing) if existing != c => return None,
                    Some(_) => {}
                    None => {
                        // Forcing a constant on a finite domain must stay
                        // inside the domain; constants were validated at
                        // construction so this always succeeds.
                        debug_assert!(schema.domain(b).contains(c));
                        forced.insert(b, c.clone());
                        changed = true;
                    }
                },
            }
        }
        if !changed {
            return Some(forced);
        }
    }
}

/// Consistency of an eCFD set, by witness-tuple search with the generalized
/// pattern semantics.  eCFDs can restrict an attribute to a finite set even
/// when its domain is infinite (Theorem 4.4), so the candidate sets always
/// include every mentioned constant plus a fresh value.
pub fn ecfd_set_consistent(ecfds: &[Ecfd]) -> ConsistencyResult {
    let Some(first) = ecfds.first() else {
        return ConsistencyResult::trivially_consistent();
    };
    let schema = Arc::clone(first.schema());
    let mut mentioned: Vec<Vec<Value>> = vec![Vec::new(); schema.arity()];
    let mut used = vec![false; schema.arity()];
    for e in ecfds {
        for &a in e.lhs().iter().chain(e.rhs()) {
            used[a] = true;
            mentioned[a].extend(e.constants_for(a));
        }
    }
    let attrs: Vec<usize> = (0..schema.arity()).filter(|&a| used[a]).collect();
    let candidates: BTreeMap<usize, Vec<Value>> = attrs
        .iter()
        .map(|&a| (a, candidate_values(&schema, a, &mentioned[a])))
        .collect();
    let mut base: Vec<Value> = (0..schema.arity())
        .map(|a| {
            schema
                .domain(a)
                .fresh_value(&mentioned[a])
                .unwrap_or_else(|| schema.domain(a).enumerate().expect("finite domain")[0].clone())
        })
        .collect();

    fn satisfies(ecfds: &[Ecfd], t: &Tuple) -> bool {
        ecfds.iter().all(|e| {
            e.tableau().iter().all(|tp| {
                let lhs_ok = tp
                    .lhs
                    .iter()
                    .zip(e.lhs())
                    .all(|(p, &a)| p.matches(t.get(a)));
                !lhs_ok
                    || tp
                        .rhs
                        .iter()
                        .zip(e.rhs())
                        .all(|(p, &a)| p.matches(t.get(a)))
            })
        })
    }

    fn search(
        ecfds: &[Ecfd],
        attrs: &[usize],
        candidates: &BTreeMap<usize, Vec<Value>>,
        values: &mut Vec<Value>,
        depth: usize,
    ) -> Option<Tuple> {
        if depth == attrs.len() {
            let t = Tuple::new(values.clone());
            return satisfies(ecfds, &t).then_some(t);
        }
        let attr = attrs[depth];
        for candidate in &candidates[&attr] {
            values[attr] = candidate.clone();
            if let Some(t) = search(ecfds, attrs, candidates, values, depth + 1) {
                return Some(t);
            }
        }
        None
    }

    match search(ecfds, &attrs, &candidates, &mut base, 0) {
        Some(w) => ConsistencyResult::consistent_with(w),
        None => ConsistencyResult::inconsistent(),
    }
}

/// Consistency of a CIND set.  Per Theorem 4.1 this is O(1): any set of
/// CINDs is satisfiable by a nonempty database.  For convenience the function
/// also constructs a small witness database by chasing a single seed tuple.
pub fn cind_set_consistent(cinds: &[Cind]) -> ConsistencyResult {
    let Some(first) = cinds.first() else {
        return ConsistencyResult::trivially_consistent();
    };
    // Seed: one tuple in the LHS relation of the first CIND, with pattern
    // constants where required and fresh values elsewhere, then chase.
    let mut db = Database::new();
    let seed_schema = Arc::clone(first.lhs_schema());
    let mut seed_values: Vec<Value> = (0..seed_schema.arity())
        .map(|a| {
            seed_schema
                .domain(a)
                .fresh_value(&[])
                .unwrap_or_else(|| seed_schema.domain(a).enumerate().expect("finite")[0].clone())
        })
        .collect();
    if let Some(tp) = first.tableau().first() {
        for (&a, v) in first.lhs_pattern_attrs().iter().zip(&tp.lhs) {
            seed_values[a] = v.clone();
        }
    }
    let mut seed = RelationInstance::new(Arc::clone(&seed_schema));
    seed.insert(Tuple::new(seed_values))
        .expect("seed tuple in domains");
    db.add_relation(seed);
    // Register empty instances for every other schema mentioned.
    for cind in cinds {
        for schema in [cind.lhs_schema(), cind.rhs_schema()] {
            if db.relation(schema.name()).is_none() {
                db.add_relation(RelationInstance::new(Arc::clone(schema)));
            }
        }
    }
    let satisfied = chase_cinds(&mut db, cinds, 10_000);
    ConsistencyResult {
        consistent: true,
        witness: satisfied.then_some(ConsistencyWitness::Database(db)),
        stats: AnalysisStats::default(),
    }
}

/// Applies the CIND chase to `db` until it satisfies every CIND or the step
/// bound is exhausted.  Returns whether a fixpoint (satisfying database) was
/// reached.  Each chase step adds the "missing" RHS tuple demanded by a
/// violated CIND, with fresh values for unconstrained attributes.
pub fn chase_cinds(db: &mut Database, cinds: &[Cind], max_steps: usize) -> bool {
    for _ in 0..max_steps {
        let mut fired = false;
        for cind in cinds {
            let violations = match cind.violations(db) {
                Ok(v) => v,
                Err(_) => return false,
            };
            if violations.is_empty() {
                continue;
            }
            let v = violations[0];
            let lhs = db
                .relation(cind.lhs_schema().name())
                .expect("lhs relation present");
            let tuple = lhs.tuple(v.tuple).expect("violating tuple").clone();
            let pattern = &cind.tableau()[v.pattern];
            let rhs_schema = Arc::clone(cind.rhs_schema());
            let mut values: Vec<Value> = (0..rhs_schema.arity())
                .map(|a| {
                    rhs_schema.domain(a).fresh_value(&[]).unwrap_or_else(|| {
                        rhs_schema.domain(a).enumerate().expect("finite")[0].clone()
                    })
                })
                .collect();
            for (&y, &x) in cind.rhs_attrs().iter().zip(cind.lhs_attrs()) {
                values[y] = tuple.get(x).clone();
            }
            for (&yp, v) in cind.rhs_pattern_attrs().iter().zip(&pattern.rhs) {
                values[yp] = v.clone();
            }
            if db.relation(rhs_schema.name()).is_none() {
                db.add_relation(RelationInstance::new(Arc::clone(&rhs_schema)));
            }
            let target = db.relation_mut(rhs_schema.name()).expect("target relation");
            if target.insert(Tuple::new(values)).is_err() {
                return false;
            }
            fired = true;
            break;
        }
        if !fired {
            return true;
        }
    }
    false
}

/// Bounded heuristic for the (undecidable) consistency of CFDs and CINDs
/// taken together: starting from a CFD witness tuple, chase the CINDs and
/// re-check the CFDs on the resulting database.  Returns `Some(true)` when a
/// consistent witness database was built, `Some(false)` when the CFDs alone
/// are already inconsistent, and `None` when the bound was exhausted without
/// a verdict (the undecidability of Theorem 4.1 manifesting as
/// non-termination of the chase).
pub fn cfd_cind_consistent_bounded(cfds: &[Cfd], cinds: &[Cind], max_steps: usize) -> Option<bool> {
    let cfd_result = cfd_set_consistent(cfds);
    if !cfd_result.consistent {
        return Some(false);
    }
    let Some(first) = cfds.first() else {
        // No CFDs: CINDs alone are always consistent.
        return Some(true);
    };
    let mut db = Database::new();
    let schema = Arc::clone(first.schema());
    let mut seed = RelationInstance::new(Arc::clone(&schema));
    if let Some(w) = cfd_result.witness_tuple() {
        seed.insert(w.clone()).expect("witness tuple in domains");
    }
    db.add_relation(seed);
    for cind in cinds {
        for s in [cind.lhs_schema(), cind.rhs_schema()] {
            if db.relation(s.name()).is_none() {
                db.add_relation(RelationInstance::new(Arc::clone(s)));
            }
        }
    }
    if !chase_cinds(&mut db, cinds, max_steps) {
        return None;
    }
    // The chase may have introduced tuples violating the CFDs; re-check.
    let relation = db.relation(schema.name()).expect("seed relation");
    let report = detect_cfd_violations(relation, cfds);
    if report.is_clean() {
        Some(true)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecfd::SetPattern;
    use crate::pattern::{cst, wild, PatternTuple};
    use dq_relation::Domain;

    fn bool_schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Bool), ("B", Domain::Text)],
        ))
    }

    /// Example 4.1: ψ1 = ([A] → [B], {(true ‖ b1), (false ‖ b2)}),
    /// ψ2 = ([B] → [A], {(b1 ‖ false), (b2 ‖ true)}).
    fn example_4_1() -> Vec<Cfd> {
        let s = bool_schema();
        vec![
            Cfd::new(
                &s,
                &["A"],
                &["B"],
                vec![
                    PatternTuple::new(vec![cst(true)], vec![cst("b1")]),
                    PatternTuple::new(vec![cst(false)], vec![cst("b2")]),
                ],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["B"],
                &["A"],
                vec![
                    PatternTuple::new(vec![cst("b1")], vec![cst(false)]),
                    PatternTuple::new(vec![cst("b2")], vec![cst(true)]),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn example_4_1_is_inconsistent() {
        let result = cfd_set_consistent(&example_4_1());
        assert!(!result.consistent);
        assert!(result.witness.is_none());
        let naive = cfd_set_consistent_naive(&example_4_1());
        assert!(!naive.consistent);
        assert!(naive.witness.is_none());
    }

    #[test]
    fn example_4_1_fools_the_propagation_check() {
        // The quadratic fixpoint is incomplete in the presence of finite
        // domains: it reports "consistent" here, exactly the gap that makes
        // the general problem NP-complete.
        assert!(cfd_set_consistent_propagation(&example_4_1()));
    }

    #[test]
    fn consistent_cfds_yield_a_witness() {
        let s = Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("city", Domain::Text),
            ],
        ));
        let cfds = vec![
            Cfd::new(
                &s,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::new(vec![cst(44), cst(131)], vec![cst("EDI")])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["CC"],
                &["city"],
                vec![PatternTuple::new(vec![cst(1)], vec![cst("NYC")])],
            )
            .unwrap(),
        ];
        let result = cfd_set_consistent(&cfds);
        assert!(result.consistent);
        let witness = result.witness_tuple().expect("witness tuple");
        assert!(tuple_satisfies(&cfds, witness));
        let naive = cfd_set_consistent_naive(&cfds);
        assert!(naive.consistent);
        assert!(tuple_satisfies(&cfds, naive.witness_tuple().unwrap()));
        assert!(cfd_set_consistent_propagation(&cfds));
    }

    #[test]
    fn conflicting_constant_cfds_without_finite_domains_are_caught_by_propagation() {
        // ([] ≅ all-wildcard LHS) forces city = EDI and city = NYC at once.
        let s = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("city", Domain::Text)],
        ));
        let cfds = vec![
            Cfd::new(
                &s,
                &["A"],
                &["city"],
                vec![PatternTuple::new(vec![wild()], vec![cst("EDI")])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["A"],
                &["city"],
                vec![PatternTuple::new(vec![wild()], vec![cst("NYC")])],
            )
            .unwrap(),
        ];
        assert!(!cfd_set_consistent_propagation(&cfds));
        assert!(!cfd_set_consistent(&cfds).consistent);
    }

    #[test]
    fn propagation_agrees_with_exact_check_on_infinite_domains() {
        let s = Arc::new(RelationSchema::new(
            "r",
            [
                ("A", Domain::Text),
                ("B", Domain::Text),
                ("C", Domain::Text),
            ],
        ));
        // Chain: (_ -> a) on B given A = a1; (a -> b) on C given B = a.
        let cfds = vec![
            Cfd::new(
                &s,
                &["A"],
                &["B"],
                vec![PatternTuple::new(vec![wild()], vec![cst("b0")])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["B"],
                &["C"],
                vec![PatternTuple::new(vec![cst("b0")], vec![cst("c0")])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["C"],
                &["B"],
                vec![PatternTuple::new(vec![cst("c0")], vec![cst("b0")])],
            )
            .unwrap(),
        ];
        assert_eq!(
            cfd_set_consistent(&cfds).consistent,
            cfd_set_consistent_propagation(&cfds)
        );
        // Now make it contradictory: C = c0 forces B = b1 instead.
        let cfds_bad = {
            let mut v = cfds.clone();
            v[2] = Cfd::new(
                &s,
                &["C"],
                &["B"],
                vec![PatternTuple::new(vec![cst("c0")], vec![cst("b1")])],
            )
            .unwrap();
            v
        };
        assert!(!cfd_set_consistent_propagation(&cfds_bad));
        assert!(!cfd_set_consistent(&cfds_bad).consistent);
    }

    #[test]
    fn empty_set_is_consistent() {
        assert!(cfd_set_consistent(&[]).consistent);
        assert!(cfd_set_consistent_naive(&[]).consistent);
        assert!(cfd_set_consistent_propagation(&[]));
        assert!(cind_set_consistent(&[]).consistent);
    }

    #[test]
    fn ecfd_consistency_detects_forced_finite_ranges() {
        use crate::ecfd::EcfdPattern;
        let s = Arc::new(RelationSchema::new(
            "r",
            [("CT", Domain::Text), ("AC", Domain::Int)],
        ));
        // AC must be in {1, 2} whenever CT is anything (wildcard), and AC
        // must not be in {1, 2} whenever CT = 'NYC': contradiction only for
        // NYC tuples — still consistent because a non-NYC witness exists.
        let e1 = Ecfd::new(
            &s,
            &["CT"],
            &["AC"],
            vec![EcfdPattern::new(
                vec![SetPattern::any()],
                vec![SetPattern::in_set([1i64, 2])],
            )],
        )
        .unwrap();
        let e2 = Ecfd::new(
            &s,
            &["CT"],
            &["AC"],
            vec![EcfdPattern::new(
                vec![SetPattern::eq("NYC")],
                vec![SetPattern::not_in([1i64, 2])],
            )],
        )
        .unwrap();
        assert!(ecfd_set_consistent(&[e1.clone(), e2.clone()]).consistent);
        // Forcing every tuple to be NYC makes the set inconsistent.
        let e3 = Ecfd::new(
            &s,
            &["AC"],
            &["CT"],
            vec![EcfdPattern::new(
                vec![SetPattern::any()],
                vec![SetPattern::in_set(["NYC"])],
            )],
        )
        .unwrap();
        assert!(!ecfd_set_consistent(&[e1, e2, e3]).consistent);
    }

    #[test]
    fn cind_sets_are_always_consistent_and_yield_a_witness() {
        use crate::cind::CindPattern;
        let order = Arc::new(RelationSchema::new(
            "order",
            [("title", Domain::Text), ("type", Domain::Text)],
        ));
        let book = Arc::new(RelationSchema::new(
            "book",
            [("title", Domain::Text), ("format", Domain::Text)],
        ));
        let cind = Cind::new(
            &order,
            &["title"],
            &["type"],
            &book,
            &["title"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("book")],
                vec![Value::str("audio")],
            )],
        )
        .unwrap();
        let result = cind_set_consistent(std::slice::from_ref(&cind));
        assert!(result.consistent);
        let db = result.witness_database().expect("witness database");
        assert!(cind.holds_on(db).unwrap());
    }

    #[test]
    fn cfd_cind_bounded_heuristic() {
        use crate::cind::CindPattern;
        let order = Arc::new(RelationSchema::new(
            "order",
            [("title", Domain::Text), ("type", Domain::Text)],
        ));
        let book = Arc::new(RelationSchema::new(
            "book",
            [("title", Domain::Text), ("format", Domain::Text)],
        ));
        let cfd = Cfd::new(
            &order,
            &["type"],
            &["title"],
            vec![PatternTuple::new(vec![cst("book")], vec![wild()])],
        )
        .unwrap();
        let cind = Cind::new(
            &order,
            &["title"],
            &["type"],
            &book,
            &["title"],
            &[],
            vec![CindPattern::new(vec![Value::str("book")], vec![])],
        )
        .unwrap();
        assert_eq!(
            cfd_cind_consistent_bounded(&[cfd], &[cind], 1_000),
            Some(true)
        );
        // Inconsistent CFDs short-circuit to Some(false).
        let bad = example_4_1();
        assert_eq!(cfd_cind_consistent_bounded(&bad, &[], 1_000), Some(false));
    }
}
