//! Traditional inclusion dependencies (INDs).
//!
//! An IND `R1[X] ⊆ R2[Y]` requires every `X`-projection of an `R1` tuple to
//! appear as a `Y`-projection of some `R2` tuple.  INDs are always
//! satisfiable (by empty or carefully constructed instances); their
//! implication problem is PSPACE-complete (Table 1).  We implement
//! satisfaction checking, violation detection and a chase-based implication
//! procedure that is exact for acyclic IND sets and bounded (sound,
//! possibly incomplete) in general.

use dq_relation::{
    Database, DistinctSet, DqError, DqResult, HashIndex, IdTranslation, InternedIndex,
    RelationSchema, TupleId, Value, ValueId,
};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// An inclusion dependency `R1[X] ⊆ R2[Y]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ind {
    lhs_relation: String,
    rhs_relation: String,
    lhs_attrs: Vec<usize>,
    rhs_attrs: Vec<usize>,
}

impl Ind {
    /// Creates an IND from schemas and attribute names.
    pub fn new(
        lhs_schema: &Arc<RelationSchema>,
        lhs_attrs: &[&str],
        rhs_schema: &Arc<RelationSchema>,
        rhs_attrs: &[&str],
    ) -> DqResult<Self> {
        if lhs_attrs.len() != rhs_attrs.len() {
            return Err(DqError::MalformedDependency {
                reason: format!(
                    "IND with {} LHS attributes but {} RHS attributes",
                    lhs_attrs.len(),
                    rhs_attrs.len()
                ),
            });
        }
        Ok(Ind {
            lhs_relation: lhs_schema.name().to_string(),
            rhs_relation: rhs_schema.name().to_string(),
            lhs_attrs: lhs_attrs
                .iter()
                .map(|a| lhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
            rhs_attrs: rhs_attrs
                .iter()
                .map(|a| rhs_schema.require_attr(a))
                .collect::<DqResult<_>>()?,
        })
    }

    /// Creates an IND directly from relation names and attribute positions.
    pub fn from_indices(
        lhs_relation: impl Into<String>,
        lhs_attrs: Vec<usize>,
        rhs_relation: impl Into<String>,
        rhs_attrs: Vec<usize>,
    ) -> Self {
        Ind {
            lhs_relation: lhs_relation.into(),
            rhs_relation: rhs_relation.into(),
            lhs_attrs,
            rhs_attrs,
        }
    }

    /// Left-hand (including) relation name.
    pub fn lhs_relation(&self) -> &str {
        &self.lhs_relation
    }

    /// Right-hand (included-in) relation name.
    pub fn rhs_relation(&self) -> &str {
        &self.rhs_relation
    }

    /// Left-hand attribute positions.
    pub fn lhs_attrs(&self) -> &[usize] {
        &self.lhs_attrs
    }

    /// Right-hand attribute positions.
    pub fn rhs_attrs(&self) -> &[usize] {
        &self.rhs_attrs
    }

    /// Tuples of the LHS relation with no matching RHS tuple.
    pub fn violations(&self, db: &Database) -> DqResult<Vec<TupleId>> {
        self.violations_with(db, false)
    }

    /// [`violations`](Self::violations) with a null-semantics switch: when
    /// `ignore_nulls` is set, LHS tuples carrying `NULL` in any `X` position
    /// are exempt (SQL's foreign-key semantics) instead of counting as
    /// violations — without it, one null LHS cell falsifies the IND because
    /// the projection `(…, NULL, …)` matches no RHS tuple.
    pub fn violations_with(&self, db: &Database, ignore_nulls: bool) -> DqResult<Vec<TupleId>> {
        let lhs = db.require_relation(&self.lhs_relation)?;
        let rhs = db.require_relation(&self.rhs_relation)?;
        let index = HashIndex::build(rhs, &self.rhs_attrs);
        let mut out = Vec::new();
        for (id, tuple) in lhs.iter() {
            if ignore_nulls && self.lhs_attrs.iter().any(|&a| tuple.get(a).is_null()) {
                continue;
            }
            let key = tuple.project(&self.lhs_attrs);
            if !index.contains_key(&key) {
                out.push(id);
            }
        }
        Ok(out)
    }

    /// Does the database satisfy this IND?
    pub fn holds_on(&self, db: &Database) -> DqResult<bool> {
        self.holds_on_with(db, false)
    }

    /// [`holds_on`](Self::holds_on) with the `ignore_nulls` switch of
    /// [`violations_with`](Self::violations_with).
    pub fn holds_on_with(&self, db: &Database, ignore_nulls: bool) -> DqResult<bool> {
        Ok(self.violations_with(db, ignore_nulls)?.is_empty())
    }

    /// Violations computed against a caller-supplied *interned* index of the
    /// LHS relation on exactly `X` and distinct-projection set of the RHS
    /// relation on exactly `Y` (both usually served by a shared
    /// [`IndexPool`](dq_relation::IndexPool)).  Each distinct LHS projection
    /// is translated into the RHS dictionaries once — via
    /// [`IdTranslation`], `O(distinct values)` setup — and probed once, so
    /// the cost is per *distinct key*, not per tuple.  Output (ascending
    /// tuple ids) equals [`violations_with`](Self::violations_with).
    pub fn violations_with_interned(
        &self,
        lhs_index: &InternedIndex,
        rhs: &DistinctSet,
        ignore_nulls: bool,
    ) -> Vec<TupleId> {
        debug_assert_eq!(lhs_index.attrs(), self.lhs_attrs.as_slice());
        debug_assert_eq!(rhs.attrs(), self.rhs_attrs.as_slice());
        let translation = IdTranslation::new(lhs_index.columns(), rhs.columns());
        let null_ids: Vec<Option<ValueId>> = lhs_index
            .columns()
            .iter()
            .map(|c| c.interner().lookup(&Value::Null))
            .collect();
        let mut bad_rows: Vec<u32> = Vec::new();
        let mut translated = Vec::with_capacity(self.lhs_attrs.len());
        for (ids, rows) in lhs_index.groups() {
            if ignore_nulls
                && ids
                    .iter()
                    .zip(&null_ids)
                    .any(|(id, null)| Some(*id) == *null)
            {
                continue;
            }
            if translation.translate(&ids, &mut translated) && rhs.contains_ids(&translated) {
                continue;
            }
            bad_rows.extend_from_slice(rows);
        }
        // Store rows are in insertion order, so sorted rows give the
        // ascending tuple-id order of the naive scan.
        bad_rows.sort_unstable();
        bad_rows
            .into_iter()
            .map(|r| lhs_index.tuple_id(r))
            .collect()
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{:?}] ⊆ {}[{:?}]",
            self.lhs_relation, self.lhs_attrs, self.rhs_relation, self.rhs_attrs
        )
    }
}

/// Is the IND set acyclic (no cycle among relation names in the "included
/// in" graph)?  Repair checking for FDs + acyclic INDs is PTIME
/// (Theorem 5.1), and the chase below is guaranteed to terminate for acyclic
/// sets.
pub fn is_acyclic(inds: &[Ind]) -> bool {
    if inds.iter().any(|i| i.lhs_relation() == i.rhs_relation()) {
        return false;
    }
    let nodes: BTreeSet<&str> = inds
        .iter()
        .flat_map(|i| [i.lhs_relation(), i.rhs_relation()])
        .collect();
    let edges: Vec<(&str, &str)> = inds
        .iter()
        .map(|i| (i.lhs_relation(), i.rhs_relation()))
        .collect();
    // Depth-first search with colouring: a back edge means a cycle.
    fn visit<'a>(
        node: &'a str,
        edges: &[(&'a str, &'a str)],
        visiting: &mut BTreeSet<&'a str>,
        done: &mut BTreeSet<&'a str>,
    ) -> bool {
        if done.contains(node) {
            return true;
        }
        if !visiting.insert(node) {
            return false;
        }
        for (from, to) in edges {
            if *from == node && !visit(to, edges, visiting, done) {
                return false;
            }
        }
        visiting.remove(node);
        done.insert(node);
        true
    }
    let mut visiting = BTreeSet::new();
    let mut done = BTreeSet::new();
    nodes
        .iter()
        .all(|n| visit(n, &edges, &mut visiting, &mut done))
}

/// Chase-based implication for INDs: does `sigma ⊨ target`?
///
/// The procedure follows the classical pebbling argument: start from the
/// abstract tuple of the target's LHS and repeatedly apply INDs of `sigma`,
/// tracking which positions of which relation carry which "pebbles" (the
/// distinguished LHS attributes).  It is exact for acyclic `sigma` and
/// bounded by `max_steps` otherwise (returning `false` — "not provably
/// implied" — when the bound is hit).
pub fn ind_implies(sigma: &[Ind], target: &Ind, max_steps: usize) -> bool {
    // A configuration is a relation name plus, for each pebble (index into
    // the target LHS list), the attribute position of that relation where the
    // pebble currently sits (or None).
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Config {
        relation: String,
        pebbles: Vec<Option<usize>>,
    }

    let k = target.lhs_attrs().len();
    let start = Config {
        relation: target.lhs_relation().to_string(),
        pebbles: target.lhs_attrs().iter().map(|&a| Some(a)).collect(),
    };
    let goal = |c: &Config| {
        c.relation == target.rhs_relation()
            && (0..k).all(|i| c.pebbles[i] == Some(target.rhs_attrs()[i]))
    };
    if goal(&start) {
        return true;
    }
    let mut seen: BTreeSet<(String, Vec<Option<usize>>)> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert((start.relation.clone(), start.pebbles.clone()));
    queue.push_back(start);
    let mut steps = 0usize;
    while let Some(config) = queue.pop_front() {
        steps += 1;
        if steps > max_steps {
            return false;
        }
        for ind in sigma {
            if ind.lhs_relation() != config.relation {
                continue;
            }
            // Every pebble must sit on an attribute exported by the IND; a
            // pebble that sits elsewhere is lost, and losing a pebble means
            // we can no longer certify the target's equality for it.
            let mut pebbles = vec![None; k];
            let mut ok = true;
            for (i, pebble) in config.pebbles.iter().enumerate() {
                match *pebble {
                    None => {
                        ok = false;
                        break;
                    }
                    Some(attr) => match ind.lhs_attrs().iter().position(|&a| a == attr) {
                        Some(pos) => pebbles[i] = Some(ind.rhs_attrs()[pos]),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok {
                continue;
            }
            let next = Config {
                relation: ind.rhs_relation().to_string(),
                pebbles,
            };
            if goal(&next) {
                return true;
            }
            if seen.insert((next.relation.clone(), next.pebbles.clone())) {
                queue.push_back(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_relation::{Domain, RelationInstance, Value};

    fn schemas() -> (
        Arc<RelationSchema>,
        Arc<RelationSchema>,
        Arc<RelationSchema>,
    ) {
        let order = Arc::new(RelationSchema::new(
            "order",
            [
                ("asin", Domain::Text),
                ("title", Domain::Text),
                ("type", Domain::Text),
                ("price", Domain::Real),
            ],
        ));
        let book = Arc::new(RelationSchema::new(
            "book",
            [
                ("isbn", Domain::Text),
                ("title", Domain::Text),
                ("price", Domain::Real),
                ("format", Domain::Text),
            ],
        ));
        let cd = Arc::new(RelationSchema::new(
            "CD",
            [
                ("id", Domain::Text),
                ("album", Domain::Text),
                ("price", Domain::Real),
                ("genre", Domain::Text),
            ],
        ));
        (order, book, cd)
    }

    fn db() -> Database {
        let (order, book, cd) = schemas();
        let mut oi = RelationInstance::new(order);
        oi.insert_values([
            Value::str("a23"),
            Value::str("Snow White"),
            Value::str("CD"),
            Value::real(7.99),
        ])
        .unwrap();
        oi.insert_values([
            Value::str("a12"),
            Value::str("Harry Potter"),
            Value::str("book"),
            Value::real(17.99),
        ])
        .unwrap();
        let mut bi = RelationInstance::new(book);
        bi.insert_values([
            Value::str("b32"),
            Value::str("Harry Potter"),
            Value::real(17.99),
            Value::str("hard-cover"),
        ])
        .unwrap();
        bi.insert_values([
            Value::str("b65"),
            Value::str("Snow White"),
            Value::real(7.99),
            Value::str("paper-cover"),
        ])
        .unwrap();
        let mut ci = RelationInstance::new(cd);
        ci.insert_values([
            Value::str("c12"),
            Value::str("J. Denver"),
            Value::real(7.94),
            Value::str("country"),
        ])
        .unwrap();
        ci.insert_values([
            Value::str("c58"),
            Value::str("Snow White"),
            Value::real(7.99),
            Value::str("a-book"),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_relation(oi);
        db.add_relation(bi);
        db.add_relation(ci);
        db
    }

    #[test]
    fn unconditional_ind_of_section_2_2_fails_on_fig3() {
        let (order, book, _) = schemas();
        let db = db();
        // order(title, price) ⊆ book(title, price): the CD order "Snow White"
        // happens to have a matching book here, so construct the violating
        // case explicitly: order(asin) ⊆ book(isbn) clearly fails.
        let ind = Ind::new(&order, &["asin"], &book, &["isbn"]).unwrap();
        assert!(!ind.holds_on(&db).unwrap());
        assert_eq!(ind.violations(&db).unwrap().len(), 2);
    }

    #[test]
    fn satisfied_ind_has_no_violations() {
        let (order, book, _) = schemas();
        let db = db();
        let ind = Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
        assert!(ind.holds_on(&db).unwrap());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let (order, book, _) = schemas();
        assert!(Ind::new(&order, &["title"], &book, &["title", "price"]).is_err());
    }

    #[test]
    fn ignore_nulls_exempts_null_lhs_cells() {
        // Regression test: one NULL LHS cell used to kill every IND because
        // the projection (…, NULL, …) matches no RHS tuple.
        let (order, book, _) = schemas();
        let mut db = db();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a77"),
                Value::Null,
                Value::str("book"),
                Value::real(17.99),
            ])
            .unwrap();
        let ind = Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
        assert!(!ind.holds_on(&db).unwrap(), "default semantics unchanged");
        assert_eq!(ind.violations(&db).unwrap().len(), 1);
        assert!(
            ind.holds_on_with(&db, true).unwrap(),
            "SQL-style semantics skip the null projection"
        );
        assert!(ind.violations_with(&db, true).unwrap().is_empty());
    }

    #[test]
    fn interned_violations_equal_naive() {
        let (order, book, _) = schemas();
        let mut db = db();
        db.relation_mut("order")
            .unwrap()
            .insert_values([
                Value::str("a77"),
                Value::Null,
                Value::str("book"),
                Value::real(99.0),
            ])
            .unwrap();
        for ind in [
            Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap(),
            Ind::new(&order, &["asin"], &book, &["isbn"]).unwrap(),
            Ind::new(&order, &["title"], &book, &["title"]).unwrap(),
        ] {
            let lhs = db.require_relation(ind.lhs_relation()).unwrap();
            let rhs = db.require_relation(ind.rhs_relation()).unwrap();
            let index = InternedIndex::build(lhs, &lhs.columnar(), ind.lhs_attrs(), 1);
            let distinct = DistinctSet::build(rhs, &rhs.columnar(), ind.rhs_attrs(), 1);
            for ignore_nulls in [false, true] {
                assert_eq!(
                    ind.violations_with_interned(&index, &distinct, ignore_nulls),
                    ind.violations_with(&db, ignore_nulls).unwrap(),
                    "{ind} (ignore_nulls {ignore_nulls})"
                );
            }
        }
    }

    #[test]
    fn acyclicity_detection() {
        let (order, book, cd) = schemas();
        let a = Ind::new(&order, &["title"], &book, &["title"]).unwrap();
        let b = Ind::new(&cd, &["album"], &book, &["title"]).unwrap();
        assert!(is_acyclic(&[a.clone(), b.clone()]));
        let back = Ind::new(&book, &["title"], &order, &["title"]).unwrap();
        assert!(!is_acyclic(&[a, back]));
        let self_loop = Ind::new(&book, &["title"], &book, &["isbn"]).unwrap();
        assert!(!is_acyclic(&[self_loop]));
    }

    #[test]
    fn implication_by_transitivity() {
        let (order, book, cd) = schemas();
        let a = Ind::new(&order, &["title", "price"], &cd, &["album", "price"]).unwrap();
        let b = Ind::new(&cd, &["album", "price"], &book, &["title", "price"]).unwrap();
        let target = Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
        assert!(ind_implies(&[a.clone(), b.clone()], &target, 10_000));
        // Not implied the other way round.
        let reverse = Ind::new(&book, &["title"], &order, &["title"]).unwrap();
        assert!(!ind_implies(&[a, b], &reverse, 10_000));
    }

    #[test]
    fn implication_by_projection_and_permutation() {
        let (order, book, _) = schemas();
        let given = Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
        // Projection: order[title] ⊆ book[title].
        let projected = Ind::new(&order, &["title"], &book, &["title"]).unwrap();
        assert!(ind_implies(
            std::slice::from_ref(&given),
            &projected,
            10_000
        ));
        // Permutation: order[price, title] ⊆ book[price, title].
        let permuted = Ind::new(&order, &["price", "title"], &book, &["price", "title"]).unwrap();
        assert!(ind_implies(std::slice::from_ref(&given), &permuted, 10_000));
        // Not implied: order[price] ⊆ book[isbn].
        let wrong = Ind::new(&order, &["price"], &book, &["isbn"]).unwrap();
        assert!(!ind_implies(&[given], &wrong, 10_000));
    }

    #[test]
    fn reflexive_target_is_trivially_implied() {
        let (order, _, _) = schemas();
        let refl = Ind::new(&order, &["title"], &order, &["title"]).unwrap();
        assert!(ind_implies(&[], &refl, 10));
    }
}
