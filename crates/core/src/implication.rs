//! Implication analysis for conditional dependencies (Section 4.1).
//!
//! Implication (`Σ ⊨ ϕ`) underlies minimal covers, rule discovery and the
//! interaction analysis of cleaning rules.  Table 1: coNP-complete for CFDs
//! (quadratic without finite-domain attributes), EXPTIME-complete for CINDs
//! (PSPACE without finite domains), undecidable for the two taken together.
//!
//! We provide:
//!
//! * [`cfd_implies_exact`] — a complete decision procedure, delegating to
//!   the propagation-guided counterexample solver in [`crate::analysis`]
//!   (closure first pass, then DPLL over packed two-tuple assignments);
//! * [`cfd_implies_exact_naive`] — the seed's blind two-tuple backtracking
//!   search, kept as the reference the solver is property-asserted against;
//! * [`cfd_implies_closure`] — the quadratic pattern-closure procedure,
//!   sound in general and complete in the absence of finite-domain
//!   attributes;
//! * [`cind_implies_chase`] — a bounded pattern-aware chase for CIND
//!   implication (exact for acyclic CIND sets);
//! * [`cfd_minimal_cover`] — canonical redundancy removal using implication.

use crate::cfd::Cfd;
use crate::cind::Cind;
use crate::consistency::chase_cinds;
use crate::pattern::PatternValue;
use dq_relation::{Database, RelationInstance, RelationSchema, Tuple, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Collects, per attribute, the constants mentioned by any pattern of
/// `cfds ∪ {extra}`.
pub(crate) fn mentioned_constants(
    schema: &RelationSchema,
    cfds: &[Cfd],
    extra: Option<&Cfd>,
) -> Vec<Vec<Value>> {
    let mut mentioned: Vec<Vec<Value>> = vec![Vec::new(); schema.arity()];
    let mut note = |cfd: &Cfd| {
        for tp in cfd.tableau() {
            for (p, &a) in tp
                .lhs
                .iter()
                .zip(cfd.lhs())
                .chain(tp.rhs.iter().zip(cfd.rhs()))
            {
                if let PatternValue::Const(v) = p {
                    mentioned[a].push(v.clone());
                }
            }
        }
    };
    cfds.iter().for_each(&mut note);
    if let Some(cfd) = extra {
        note(cfd);
    }
    for m in &mut mentioned {
        m.sort();
        m.dedup();
    }
    mentioned
}

/// Candidate values for one tuple position in the counterexample search: the
/// finite domain if there is one, otherwise the mentioned constants plus two
/// fresh values (two, so that the pair of tuples can disagree on the
/// attribute without touching any pattern constant).
pub(crate) fn candidate_values(
    schema: &RelationSchema,
    attr: usize,
    mentioned: &[Value],
) -> Vec<Value> {
    if let Some(values) = schema.domain(attr).enumerate() {
        return values;
    }
    let mut candidates = mentioned.to_vec();
    let mut used = candidates.clone();
    for _ in 0..2 {
        if let Some(fresh) = schema.domain(attr).fresh_value(&used) {
            used.push(fresh.clone());
            candidates.push(fresh);
        }
    }
    candidates
}

/// Exact CFD implication: `Σ ⊨ ϕ` iff there is no instance of at most two
/// tuples that satisfies `Σ` (restricted to those two tuples) and violates
/// `ϕ`.  The two-tuple bound follows from the CFD semantics: a violation of
/// `ϕ` involves at most two tuples, and removing every other tuple preserves
/// satisfaction of `Σ`.
///
/// Delegates to the propagation-guided solver of [`crate::analysis`]: the
/// sound quadratic closure runs first (complete when no involved attribute
/// has a finite domain, Theorem 4.3), then a DPLL-style counterexample
/// search over packed two-tuple assignments decides the finite-domain case.
/// The verdict is identical to [`cfd_implies_exact_naive`] on every input
/// (property-asserted in `tests/analysis_equivalence.rs`).
pub fn cfd_implies_exact(sigma: &[Cfd], phi: &Cfd) -> bool {
    crate::analysis::solver::solve_cfd_implication(sigma, phi, 0).implied
}

/// The seed's exact implication check: blind backtracking over the two-tuple
/// candidate assignments, testing the `Σ`-satisfaction and `ϕ`-violation
/// closures only at full depth.  Kept as the reference procedure the solver
/// is asserted against.
pub fn cfd_implies_exact_naive(sigma: &[Cfd], phi: &Cfd) -> bool {
    let schema = Arc::clone(phi.schema());
    for part in phi.normalize() {
        if !cfd_part_implied_exact(sigma, &part, &schema) {
            return false;
        }
    }
    true
}

/// Does the single tuple `t` satisfy every CFD of `sigma` as a one-tuple
/// instance?  (Leaf predicate of the counterexample search, shared with the
/// solver's witness validation.)
pub(crate) fn single_tuple_ok(sigma: &[Cfd], t: &Tuple) -> bool {
    sigma.iter().all(|cfd| {
        cfd.tableau()
            .iter()
            .all(|tp| !tp.lhs_matches(t, cfd.lhs()) || tp.rhs_matches(t, cfd.rhs()))
    })
}

/// Does the (unordered) pair satisfy the two-tuple part of every CFD of
/// `sigma`?
pub(crate) fn pair_ok(sigma: &[Cfd], t1: &Tuple, t2: &Tuple) -> bool {
    sigma.iter().all(|cfd| {
        cfd.tableau().iter().all(|tp| {
            let agree = t1.agree_on(t2, cfd.lhs());
            if !agree || !tp.lhs_matches(t1, cfd.lhs()) {
                return true;
            }
            t1.agree_on(t2, cfd.rhs())
                && tp.rhs_matches(t1, cfd.rhs())
                && tp.rhs_matches(t2, cfd.rhs())
        })
    })
}

/// Does the pair violate the normalized single-pattern CFD `part`?
pub(crate) fn pair_violates_part(part: &Cfd, t1: &Tuple, t2: &Tuple) -> bool {
    debug_assert_eq!(part.tableau().len(), 1);
    debug_assert_eq!(part.rhs().len(), 1);
    let tp = &part.tableau()[0];
    let b = part.rhs()[0];
    if !tp.lhs_matches(t1, part.lhs()) || !t1.agree_on(t2, part.lhs()) {
        return false;
    }
    let equal = t1.get(b) == t2.get(b);
    let matches_const = tp.rhs[0].matches(t1.get(b)) && tp.rhs[0].matches(t2.get(b));
    !(equal && matches_const)
}

fn cfd_part_implied_exact(sigma: &[Cfd], phi: &Cfd, schema: &Arc<RelationSchema>) -> bool {
    debug_assert_eq!(phi.tableau().len(), 1);
    debug_assert_eq!(phi.rhs().len(), 1);
    let mentioned = mentioned_constants(schema, sigma, Some(phi));

    // Attributes that matter: anything mentioned by sigma or phi.
    let mut relevant = vec![false; schema.arity()];
    for cfd in sigma.iter().chain(std::iter::once(phi)) {
        for &a in cfd.lhs().iter().chain(cfd.rhs()) {
            relevant[a] = true;
        }
    }
    let relevant: Vec<usize> = (0..schema.arity()).filter(|&a| relevant[a]).collect();

    // Variables of the search: a shared value for each LHS attribute of phi
    // (the pair must agree there), plus per-tuple values for the remaining
    // relevant attributes.
    #[derive(Clone, Copy, PartialEq)]
    enum Var {
        Shared(usize),
        T1(usize),
        T2(usize),
    }
    let mut vars: Vec<Var> = Vec::new();
    for &a in phi.lhs() {
        vars.push(Var::Shared(a));
    }
    for &a in &relevant {
        if !phi.lhs().contains(&a) {
            vars.push(Var::T1(a));
            vars.push(Var::T2(a));
        }
    }

    // Base tuples: fresh values everywhere (distinct between t1 and t2 where
    // possible, so unconstrained attributes never accidentally collide).
    let mut t1: Vec<Value> = Vec::with_capacity(schema.arity());
    let mut t2: Vec<Value> = Vec::with_capacity(schema.arity());
    for (a, mentioned_a) in mentioned.iter().enumerate() {
        let candidates = candidate_values(schema, a, mentioned_a);
        let v1 = candidates.last().cloned().unwrap_or(Value::Null);
        let v2 = candidates
            .get(candidates.len().saturating_sub(2))
            .cloned()
            .unwrap_or_else(|| v1.clone());
        t1.push(v1);
        t2.push(v2);
    }

    // Does the pair (t1, t2) violate phi?
    let violates_phi = |t1: &Tuple, t2: &Tuple| pair_violates_part(phi, t1, t2);

    #[allow(clippy::too_many_arguments)] // recursive backtracking state
    fn search(
        sigma: &[Cfd],
        schema: &RelationSchema,
        mentioned: &[Vec<Value>],
        vars: &[Var],
        t1: &mut Vec<Value>,
        t2: &mut Vec<Value>,
        depth: usize,
        violates_phi: &dyn Fn(&Tuple, &Tuple) -> bool,
    ) -> bool {
        if depth == vars.len() {
            let a = Tuple::new(t1.clone());
            let bt = Tuple::new(t2.clone());
            return single_tuple_ok(sigma, &a)
                && single_tuple_ok(sigma, &bt)
                && pair_ok(sigma, &a, &bt)
                && violates_phi(&a, &bt);
        }
        let (attr, both) = match vars[depth] {
            Var::Shared(a) => (a, true),
            Var::T1(a) | Var::T2(a) => (a, false),
        };
        let candidates = candidate_values(schema, attr, &mentioned[attr]);
        for candidate in candidates {
            match vars[depth] {
                Var::Shared(_) => {
                    t1[attr] = candidate.clone();
                    t2[attr] = candidate;
                }
                Var::T1(_) => t1[attr] = candidate,
                Var::T2(_) => t2[attr] = candidate,
            }
            let _ = both;
            if search(
                sigma,
                schema,
                mentioned,
                vars,
                t1,
                t2,
                depth + 1,
                violates_phi,
            ) {
                return true;
            }
        }
        false
    }

    // A counterexample exists iff the search succeeds; implication holds iff
    // no counterexample exists.
    !search(
        sigma,
        schema,
        &mentioned,
        &vars,
        &mut t1,
        &mut t2,
        0,
        &violates_phi,
    )
}

/// The closure entry for an attribute during [`cfd_implies_closure`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum ClosureVal {
    /// The pair of hypothetical tuples agree on this attribute, value unknown.
    Equal,
    /// The pair agree on this attribute and the shared value is this constant.
    Const(Value),
}

/// Quadratic pattern-closure implication check: sound for all CFD sets and
/// complete when no attribute involved has a finite domain (Theorem 4.3).
///
/// The procedure reasons about an arbitrary pair of tuples agreeing on
/// `ϕ`'s LHS according to `ϕ`'s LHS pattern, and closes the set of
/// "agreed" attributes under the normalized CFDs of `Σ`: a CFD fires when
/// each of its LHS attributes is already agreed and each LHS constant is
/// *known* to be the shared value.  Firing adds the RHS attribute (with its
/// constant, if any).  Two distinct constants forced on the same attribute
/// mean the hypothesis is unsatisfiable, so `ϕ` holds vacuously.
pub fn cfd_implies_closure(sigma: &[Cfd], phi: &Cfd) -> bool {
    // An inconsistent Σ implies everything; the closure below reasons only
    // from ϕ's premise and would miss conflicts that are unconditional (e.g.
    // two all-wildcard rules forcing different constants on one attribute),
    // so the global consistency check comes first.
    if !crate::consistency::cfd_set_consistent_propagation(sigma) {
        return true;
    }
    let normalized_sigma: Vec<Cfd> = sigma.iter().flat_map(|c| c.normalize()).collect();
    for part in phi.normalize() {
        let tp = &part.tableau()[0];
        let b = part.rhs()[0];
        // `closure` records what is known about the hypothetical pair
        // (t1, t2) agreeing on ϕ's LHS per its pattern: Equal means the two
        // tuples agree on the attribute (value unknown), Const means they
        // agree *and* the shared value is that constant.  Constant knowledge
        // additionally holds for each tuple individually, which lets rules
        // fire in "single-tuple mode": a rule whose LHS constants are all
        // known constants of the pair forces its RHS constant on both tuples
        // even when its wildcard LHS attributes are not known to agree.
        let mut closure: BTreeMap<usize, ClosureVal> = BTreeMap::new();
        for (&a, p) in part.lhs().iter().zip(&tp.lhs) {
            let entry = match p {
                PatternValue::Any => ClosureVal::Equal,
                PatternValue::Const(c) => ClosureVal::Const(c.clone()),
            };
            closure.insert(a, entry);
        }
        let mut vacuous = false;
        loop {
            let mut changed = false;
            for psi in &normalized_sigma {
                let ptp = &psi.tableau()[0];
                // Pair mode: every LHS attribute is known to be shared, and
                // every LHS constant is the known shared value.
                let fires_pair =
                    psi.lhs()
                        .iter()
                        .zip(&ptp.lhs)
                        .all(|(&a, p)| match (closure.get(&a), p) {
                            (None, _) => false,
                            (Some(_), PatternValue::Any) => true,
                            (Some(ClosureVal::Const(v)), PatternValue::Const(c)) => v == c,
                            (Some(ClosureVal::Equal), PatternValue::Const(_)) => false,
                        });
                // Single-tuple mode: only the constant LHS entries need to be
                // known (wildcards match any single tuple trivially).
                let fires_single = psi.lhs().iter().zip(&ptp.lhs).all(|(&a, p)| match p {
                    PatternValue::Any => true,
                    PatternValue::Const(c) => {
                        matches!(closure.get(&a), Some(ClosureVal::Const(v)) if v == c)
                    }
                });
                if !fires_pair && !fires_single {
                    continue;
                }
                let rb = psi.rhs()[0];
                let incoming = match &ptp.rhs[0] {
                    PatternValue::Any if fires_pair => Some(ClosureVal::Equal),
                    PatternValue::Any => None, // single-tuple mode forces nothing
                    PatternValue::Const(c) => Some(ClosureVal::Const(c.clone())),
                };
                let Some(incoming) = incoming else { continue };
                match (closure.get(&rb), &incoming) {
                    (None, _) => {
                        closure.insert(rb, incoming);
                        changed = true;
                    }
                    (Some(ClosureVal::Equal), ClosureVal::Const(_)) => {
                        closure.insert(rb, incoming);
                        changed = true;
                    }
                    (Some(ClosureVal::Const(v)), ClosureVal::Const(c)) if v != c => {
                        vacuous = true;
                    }
                    _ => {}
                }
            }
            if vacuous || !changed {
                break;
            }
        }
        if vacuous {
            continue;
        }
        let implied = match (&tp.rhs[0], closure.get(&b)) {
            (_, None) => false,
            (PatternValue::Any, Some(_)) => true,
            (PatternValue::Const(c), Some(ClosureVal::Const(v))) => v == c,
            (PatternValue::Const(_), Some(ClosureVal::Equal)) => false,
        };
        if !implied {
            return false;
        }
    }
    true
}

/// CFD implication with automatic algorithm selection.  The selection now
/// lives inside the solver ([`cfd_implies_exact`]): the quadratic closure
/// decides every case where it is complete (no involved finite-domain
/// attribute), the DPLL counterexample search the rest; this function is the
/// stable front-end name.
pub fn cfd_implies(sigma: &[Cfd], phi: &Cfd) -> bool {
    cfd_implies_exact(sigma, phi)
}

/// Computes a minimal cover of a CFD set: normalize, sort into canonical
/// order, then drop every member implied by the remaining ones.  Since CFDs
/// tend to be much larger than FDs (pattern tableaux), removing redundant
/// rules directly reduces the cost of detection and repair (Section 4.1).
///
/// Greedy redundancy removal is input-order-dependent, so the normalized
/// candidates are first sorted into a documented canonical order —
/// ascending by (LHS attribute list, RHS attribute list, LHS pattern
/// entries, RHS pattern entries), with exact duplicates removed — making the
/// cover a function of the rule *set*, not of the order rules were supplied
/// in.  Permutation invariance is regression-tested in
/// `tests/analysis_equivalence.rs`.
pub fn cfd_minimal_cover(sigma: &[Cfd]) -> Vec<Cfd> {
    let _span = dq_obs::span!("analysis.cover", rules = sigma.len());
    let mut cover: Vec<Cfd> = sigma.iter().flat_map(|c| c.normalize()).collect();
    cover.sort_by(canonical_cfd_order);
    cover.dedup();
    let normalized = cover.len();
    let mut i = 0;
    while i < cover.len() {
        let candidate = cover[i].clone();
        let mut rest = cover.clone();
        rest.remove(i);
        if cfd_implies(&rest, &candidate) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    dq_obs::add("analysis.cover.dropped", (normalized - cover.len()) as u64);
    cover
}

/// The canonical order minimal covers are computed in: ascending by LHS
/// attribute list, then RHS attribute list, then the (single) pattern row's
/// LHS entries, then its RHS entries.  Total on normalized CFDs over one
/// schema, so sorting makes the greedy pass deterministic under input
/// permutation.
fn canonical_cfd_order(a: &Cfd, b: &Cfd) -> std::cmp::Ordering {
    (a.lhs(), a.rhs(), &a.tableau()[0].lhs, &a.tableau()[0].rhs).cmp(&(
        b.lhs(),
        b.rhs(),
        &b.tableau()[0].lhs,
        &b.tableau()[0].rhs,
    ))
}

/// Bounded chase-based implication for CINDs: `Σ ⊨ ψ`?
///
/// Builds the canonical database for `ψ`'s premise (a single LHS tuple with
/// the pattern constants and fresh values elsewhere), chases it with `Σ`
/// (adding tuples demanded by the CINDs), and checks whether the chased
/// database satisfies `ψ`.  Exact when the chase terminates within
/// `max_steps` (always the case for acyclic CIND sets); returns `false`
/// ("not provably implied") otherwise, mirroring the EXPTIME lower bound of
/// Theorem 4.2.
pub fn cind_implies_chase(sigma: &[Cind], psi: &Cind, max_steps: usize) -> bool {
    // Canonical premise database.
    let mut db = Database::new();
    let lhs_schema = Arc::clone(psi.lhs_schema());
    let mut values: Vec<Value> = (0..lhs_schema.arity())
        .map(|a| {
            lhs_schema
                .domain(a)
                .fresh_value(&[])
                .unwrap_or_else(|| lhs_schema.domain(a).enumerate().expect("finite")[0].clone())
        })
        .collect();
    let Some(tp) = psi.tableau().first() else {
        return true;
    };
    for (&a, v) in psi.lhs_pattern_attrs().iter().zip(&tp.lhs) {
        values[a] = v.clone();
    }
    // Give the correspondence attributes pairwise-distinct fresh labels so a
    // coincidental equality cannot fake an implication.
    for (i, &a) in psi.lhs_attrs().iter().enumerate() {
        if psi.lhs_pattern_attrs().contains(&a) {
            continue;
        }
        if matches!(lhs_schema.domain(a), dq_relation::Domain::Text) {
            values[a] = Value::str(format!("_premise_{i}"));
        }
    }
    let mut seed = RelationInstance::new(Arc::clone(&lhs_schema));
    if seed.insert(Tuple::new(values)).is_err() {
        return false;
    }
    db.add_relation(seed);
    for cind in sigma.iter().chain(std::iter::once(psi)) {
        for s in [cind.lhs_schema(), cind.rhs_schema()] {
            if db.relation(s.name()).is_none() {
                db.add_relation(RelationInstance::new(Arc::clone(s)));
            }
        }
    }
    if !chase_cinds(&mut db, sigma, max_steps) {
        return false;
    }
    psi.holds_on(&db).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cind::CindPattern;
    use crate::pattern::{cst, wild, PatternTuple};
    use dq_relation::Domain;

    fn customer() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::new(
            "customer",
            [
                ("CC", Domain::Int),
                ("AC", Domain::Int),
                ("phn", Domain::Int),
                ("street", Domain::Text),
                ("city", Domain::Text),
                ("zip", Domain::Text),
            ],
        ))
    }

    #[test]
    fn embedded_fd_implication_lifts_to_cfds() {
        let s = customer();
        // [CC, AC] -> [city] and [city] -> [zip] imply [CC, AC] -> [zip]
        // (all-wildcard patterns, i.e. plain FDs).
        let sigma = vec![
            Cfd::new(
                &s,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["city"],
                &["zip"],
                vec![PatternTuple::all_wildcards(1, 1)],
            )
            .unwrap(),
        ];
        let target = Cfd::new(
            &s,
            &["CC", "AC"],
            &["zip"],
            vec![PatternTuple::all_wildcards(2, 1)],
        )
        .unwrap();
        assert!(cfd_implies_closure(&sigma, &target));
        assert!(cfd_implies_exact(&sigma, &target));
        let not_implied = Cfd::new(
            &s,
            &["zip"],
            &["city"],
            vec![PatternTuple::all_wildcards(1, 1)],
        )
        .unwrap();
        assert!(!cfd_implies_closure(&sigma, &not_implied));
        assert!(!cfd_implies_exact(&sigma, &not_implied));
    }

    #[test]
    fn pattern_weakening_is_implied() {
        let s = customer();
        // The unconditional FD [zip] -> [street] implies its restriction to
        // UK tuples ([CC, zip] -> [street] with CC = 44).
        let sigma = vec![Cfd::new(
            &s,
            &["zip"],
            &["street"],
            vec![PatternTuple::all_wildcards(1, 1)],
        )
        .unwrap()];
        let uk_only = Cfd::new(
            &s,
            &["CC", "zip"],
            &["street"],
            vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
        )
        .unwrap();
        assert!(cfd_implies_closure(&sigma, &uk_only));
        assert!(cfd_implies_exact(&sigma, &uk_only));
        // The converse does not hold.
        let general = Cfd::new(
            &s,
            &["zip"],
            &["street"],
            vec![PatternTuple::all_wildcards(1, 1)],
        )
        .unwrap();
        let sigma_uk = vec![uk_only];
        assert!(!cfd_implies_closure(&sigma_uk, &general));
        assert!(!cfd_implies_exact(&sigma_uk, &general));
    }

    #[test]
    fn constant_transitivity() {
        let s = customer();
        // CC = 44 forces city = EDI; city = EDI forces zip = EH.
        let sigma = vec![
            Cfd::new(
                &s,
                &["CC"],
                &["city"],
                vec![PatternTuple::new(vec![cst(44)], vec![cst("EDI")])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["city"],
                &["zip"],
                vec![PatternTuple::new(vec![cst("EDI")], vec![cst("EH")])],
            )
            .unwrap(),
        ];
        let target = Cfd::new(
            &s,
            &["CC"],
            &["zip"],
            vec![PatternTuple::new(vec![cst(44)], vec![cst("EH")])],
        )
        .unwrap();
        assert!(cfd_implies_closure(&sigma, &target));
        assert!(cfd_implies_exact(&sigma, &target));
        // A different constant is not implied.
        let wrong = Cfd::new(
            &s,
            &["CC"],
            &["zip"],
            vec![PatternTuple::new(vec![cst(44)], vec![cst("XX")])],
        )
        .unwrap();
        assert!(!cfd_implies_closure(&sigma, &wrong));
        assert!(!cfd_implies_exact(&sigma, &wrong));
    }

    #[test]
    fn closure_and_exact_agree_on_infinite_domain_examples() {
        let s = customer();
        let sigma = vec![
            Cfd::new(
                &s,
                &["CC", "zip"],
                &["street"],
                vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
        ];
        let candidates = vec![
            Cfd::new(
                &s,
                &["CC", "AC", "zip"],
                &["street"],
                vec![PatternTuple::new(
                    vec![cst(44), wild(), wild()],
                    vec![wild()],
                )],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["CC", "zip"],
                &["city"],
                vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
            )
            .unwrap(),
        ];
        for c in &candidates {
            assert_eq!(cfd_implies_closure(&sigma, c), cfd_implies_exact(&sigma, c));
        }
    }

    #[test]
    fn finite_domain_implication_needs_the_exact_check() {
        // dom(A) = bool.  Sigma: (A = true -> B = b) and (A = false -> B = b).
        // Together they imply the unconditional (_ -> B = b), but the closure
        // cannot see it because neither rule fires without knowing A.
        let s = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Bool), ("B", Domain::Text)],
        ));
        let sigma = vec![
            Cfd::new(
                &s,
                &["A"],
                &["B"],
                vec![PatternTuple::new(vec![cst(true)], vec![cst("b")])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["A"],
                &["B"],
                vec![PatternTuple::new(vec![cst(false)], vec![cst("b")])],
            )
            .unwrap(),
        ];
        let target = Cfd::new(
            &s,
            &["A"],
            &["B"],
            vec![PatternTuple::new(vec![wild()], vec![cst("b")])],
        )
        .unwrap();
        assert!(cfd_implies_exact(&sigma, &target));
        assert!(!cfd_implies_closure(&sigma, &target));
        // The dispatching front-end picks the exact algorithm here.
        assert!(cfd_implies(&sigma, &target));
    }

    #[test]
    fn minimal_cover_drops_redundant_cfds() {
        let s = customer();
        let sigma = vec![
            Cfd::new(
                &s,
                &["zip"],
                &["street"],
                vec![PatternTuple::all_wildcards(1, 1)],
            )
            .unwrap(),
            // Redundant: restriction of the first to CC = 44.
            Cfd::new(
                &s,
                &["CC", "zip"],
                &["street"],
                vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
            )
            .unwrap(),
            Cfd::new(
                &s,
                &["CC", "AC"],
                &["city"],
                vec![PatternTuple::all_wildcards(2, 1)],
            )
            .unwrap(),
        ];
        let cover = cfd_minimal_cover(&sigma);
        assert_eq!(cover.len(), 2);
        for original in &sigma {
            assert!(cfd_implies(&cover, original));
        }
    }

    #[test]
    fn cind_implication_by_transitivity_via_chase() {
        let order = Arc::new(RelationSchema::new(
            "order",
            [
                ("title", Domain::Text),
                ("type", Domain::Text),
                ("price", Domain::Real),
            ],
        ));
        let cd = Arc::new(RelationSchema::new(
            "CD",
            [
                ("album", Domain::Text),
                ("genre", Domain::Text),
                ("price", Domain::Real),
            ],
        ));
        let book = Arc::new(RelationSchema::new(
            "book",
            [
                ("title", Domain::Text),
                ("format", Domain::Text),
                ("price", Domain::Real),
            ],
        ));
        // order(title; type='a-cd') ⊆ CD(album; genre='a-book') and
        // CD(album; genre='a-book') ⊆ book(title; format='audio')
        let c1 = Cind::new(
            &order,
            &["title"],
            &["type"],
            &cd,
            &["album"],
            &["genre"],
            vec![CindPattern::new(
                vec![Value::str("a-cd")],
                vec![Value::str("a-book")],
            )],
        )
        .unwrap();
        let c2 = Cind::new(
            &cd,
            &["album"],
            &["genre"],
            &book,
            &["title"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("a-book")],
                vec![Value::str("audio")],
            )],
        )
        .unwrap();
        // Implied: order(title; type='a-cd') ⊆ book(title; format='audio').
        let target = Cind::new(
            &order,
            &["title"],
            &["type"],
            &book,
            &["title"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("a-cd")],
                vec![Value::str("audio")],
            )],
        )
        .unwrap();
        assert!(cind_implies_chase(
            &[c1.clone(), c2.clone()],
            &target,
            10_000
        ));
        // Not implied with a different RHS pattern constant.
        let wrong = Cind::new(
            &order,
            &["title"],
            &["type"],
            &book,
            &["title"],
            &["format"],
            vec![CindPattern::new(
                vec![Value::str("a-cd")],
                vec![Value::str("paper")],
            )],
        )
        .unwrap();
        assert!(!cind_implies_chase(&[c1, c2], &wrong, 10_000));
    }

    #[test]
    fn cind_self_implication_and_empty_sigma() {
        let order = Arc::new(RelationSchema::new(
            "order",
            [("title", Domain::Text), ("type", Domain::Text)],
        ));
        let book = Arc::new(RelationSchema::new(
            "book",
            [("title", Domain::Text), ("format", Domain::Text)],
        ));
        let psi = Cind::new(
            &order,
            &["title"],
            &["type"],
            &book,
            &["title"],
            &[],
            vec![CindPattern::new(vec![Value::str("book")], vec![])],
        )
        .unwrap();
        assert!(cind_implies_chase(std::slice::from_ref(&psi), &psi, 1_000));
        assert!(!cind_implies_chase(&[], &psi, 1_000));
    }
}
