//! # dataquality
//!
//! A dependency-based data quality toolkit reproducing the framework of
//! Wenfei Fan, *"Dependencies Revisited for Improving Data Quality"*
//! (PODS 2008).
//!
//! The workspace implements, from scratch:
//!
//! * an in-memory typed **relational substrate** ([`relation`]): schemas with
//!   finite and infinite domains, instances, hash indexes, relational algebra
//!   and conjunctive queries;
//! * **conditional dependencies** ([`core`]): conditional functional
//!   dependencies (CFDs), conditional inclusion dependencies (CINDs), eCFDs
//!   with disjunction/inequality, denial constraints, and the traditional
//!   FDs/INDs they extend — together with violation detection and the static
//!   analyses of the paper (consistency, implication, finite axiomatization,
//!   dependency propagation through views);
//! * **matching dependencies** ([`matching`]): domain-specific similarity
//!   operators, MDs, relative (candidate) keys, the sound-and-complete
//!   inference system with its PTIME implication algorithm, and an object
//!   identification engine driven by derived RCKs;
//! * **inconsistency handling**: data repairing ([`repair`]), consistent
//!   query answering ([`cqa`]) and condensed representations of all repairs
//!   ([`repr`]);
//! * **dependency discovery and profiling** ([`discovery`]): stripped
//!   partitions, TANE-style FD discovery, constant/variable CFD tableau
//!   mining, IND/CIND condition discovery;
//! * **unified cleaning** ([`cleaning`]): master-data matching via relative
//!   candidate keys, fusion of master values, and CFD repair in one
//!   pipeline;
//! * **workload generators** ([`gen`]) for the paper's customer,
//!   order/book/CD and card/billing scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use dataquality::prelude::*;
//!
//! // The customer schema of Fig. 1 and the CFDs of Fig. 2.
//! let schema = dq_gen::customer::customer_schema();
//! let d0 = dq_gen::customer::paper_instance();
//! let cfds = dq_gen::customer::paper_cfds();
//!
//! // Every tuple of D0 violates one of the CFDs, although D0 satisfies the
//! // embedded traditional FDs.
//! let violations = detect_cfd_violations(&d0, &cfds);
//! assert_eq!(violations.violating_tuples().len(), 3);
//! ```
//!
//! See `examples/` for end-to-end cleaning, integration and record-matching
//! scenarios, and `crates/bench` for the experiment harness.

pub use dq_cleaning as cleaning;
pub use dq_core as core;
pub use dq_cqa as cqa;
pub use dq_discovery as discovery;
pub use dq_gen as gen;
pub use dq_match as matching;
pub use dq_relation as relation;
pub use dq_repair as repair;
pub use dq_repr as repr;

/// Convenience prelude re-exporting the most frequently used items of every
/// sub-crate.
pub mod prelude {
    pub use dq_cleaning::prelude::*;
    pub use dq_core::prelude::*;
    pub use dq_cqa::prelude::*;
    pub use dq_discovery::prelude::*;
    pub use dq_gen as gen_crate;
    pub use dq_match::prelude::*;
    pub use dq_relation::prelude::*;
    pub use dq_repair::prelude::*;
    pub use dq_repr::prelude::*;
    pub use {
        dq_cleaning, dq_core, dq_cqa, dq_discovery, dq_gen, dq_match, dq_relation, dq_repair,
        dq_repr,
    };
}
