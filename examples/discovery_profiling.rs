//! Dependency discovery and data profiling: mine the cleaning rules from a
//! trusted sample of the data instead of writing them by hand, then enforce
//! them on a dirty instance.
//!
//! Run with `cargo run --example discovery_profiling`.

use dataquality::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Profile a trusted (clean) sample of the customer data.
    // ------------------------------------------------------------------
    let sample = dq_gen::customer::generate_customers(&dq_gen::customer::CustomerConfig {
        tuples: 2_000,
        error_rate: 0.0,
        seed: 7,
        ..Default::default()
    });
    let profile = profile_relation(&sample.clean);
    println!(
        "profile of `{}` ({} tuples):",
        profile.relation, profile.tuples
    );
    for column in &profile.columns {
        println!(
            "  {:<8} distinct = {:<6} uniqueness = {:.2}  categorical = {}",
            column.name,
            column.distinct,
            column.uniqueness,
            column.is_categorical(16)
        );
    }
    let identifiers = profile.identifier_attributes();
    println!("identifier attributes excluded from discovery: {identifiers:?}");

    // ------------------------------------------------------------------
    // 2. Discover FDs and CFDs from the clean sample.
    // ------------------------------------------------------------------
    let config = CfdDiscoveryConfig {
        min_support: 10,
        max_lhs: 2,
        exclude: identifiers,
        ..CfdDiscoveryConfig::default()
    };
    let discovered = discover_cfds(&sample.clean, &config);
    println!(
        "\ndiscovered {} variable CFDs and {} constant CFDs ({} candidates checked)",
        discovered.variable_cfds.len(),
        discovered.constant_cfds.len(),
        discovered.candidates_checked
    );
    for cfd in discovered.constant_cfds.iter().take(5) {
        println!(
            "  constant CFD on {:?} -> {:?} with {} pattern tuples",
            cfd.lhs(),
            cfd.rhs(),
            cfd.tableau().len()
        );
    }

    // Every discovered rule holds on the sample it was mined from.
    let self_check = detect_cfd_violations(&sample.clean, &discovered.all());
    assert!(self_check.is_clean());

    // ------------------------------------------------------------------
    // 3. Enforce the mined rules on a dirty instance of the same source.
    // ------------------------------------------------------------------
    let dirty = dq_gen::customer::generate_customers(&dq_gen::customer::CustomerConfig {
        tuples: 2_000,
        error_rate: 0.05,
        seed: 7,
        ..Default::default()
    });
    let report = detect_cfd_violations(&dirty.dirty, &discovered.all());
    println!(
        "\non the dirty instance the mined rules produce {} violation witnesses (tuple pairs / pattern \
         mismatches) touching {} tuples; {} cells were corrupted",
        report.total(),
        report.violating_tuples().len(),
        dirty.corrupted_cells.len()
    );

    // ------------------------------------------------------------------
    // 4. Discover CIND conditions across the order/book/CD database.
    // ------------------------------------------------------------------
    let db = dq_gen::orders::generate_orders(&dq_gen::orders::OrderConfig {
        orders: 500,
        violation_rate: 0.0,
        seed: 7,
    })
    .db;
    let inds = discover_inds(&db, &IndDiscoveryConfig::default()).unwrap();
    println!(
        "\ndiscovered {} unconditional INDs across order/book/CD",
        inds.inds.len()
    );
    let order = db.relation("order").unwrap().schema().clone();
    let book = db.relation("book").unwrap().schema().clone();
    let embedded =
        dq_core::ind::Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
    let cinds = discover_cind_conditions(&db, &embedded, &IndDiscoveryConfig::default()).unwrap();
    for cind in &cinds {
        println!(
            "  order(title, price) ⊆ book(title, price) holds under {} condition value(s) of attribute {:?}",
            cind.tableau().len(),
            cind.lhs_pattern_attrs()
        );
    }
}
