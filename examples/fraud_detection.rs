//! Object identification for credit-card fraud detection (Section 3): match
//! `card` and `billing` records that refer to the same holder, using
//! matching dependencies and the relative candidate keys derived from them.
//!
//! Run with `cargo run --release --example fraud_detection`.

use dataquality::prelude::*;
use dq_gen::cards::{generate_cards, CardConfig};

fn main() {
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let yc = ["FN", "LN", "addr", "tel", "email"];
    let yb = ["FN", "SN", "post", "phn", "email"];

    // ------------------------------------------------------------------
    // 1. The MDs φ1–φ4 of Example 3.1 and the RCKs derivable from them
    //    (Example 4.3 / Theorem 4.8).
    // ------------------------------------------------------------------
    let sigma = example_3_1_mds(&card, &billing);
    for md in &sigma {
        println!("given MD: {md}");
    }
    let space = vec![
        ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("tel", "phn", vec![SimilarityOp::Equality]),
        ComparisonSpace::new(
            "FN",
            "FN",
            vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
        ),
    ];
    let rcks = derive_rcks(&sigma, &card, &billing, &space, &yc, &yb, 3);
    println!("\nderived relative candidate keys:");
    for rck in &rcks {
        println!("  {rck}");
    }

    // ------------------------------------------------------------------
    // 2. Matching quality with and without the derived rules.
    // ------------------------------------------------------------------
    let workload = generate_cards(&CardConfig {
        holders: 2_000,
        billing_rate: 0.8,
        abbreviate_rate: 0.4,
        phone_change_rate: 0.4,
        email_change_rate: 0.4,
        distractors: 200,
        seed: 11,
    });

    // Baseline: exact equality on every compared attribute (the "key"-style
    // rule a traditional approach would use).
    let exact_rule = RelativeKey::new(
        &card,
        &billing,
        vec![
            ("LN", "SN", SimilarityOp::Equality),
            ("addr", "post", SimilarityOp::Equality),
            ("FN", "FN", SimilarityOp::Equality),
        ],
        &yc,
        &yb,
    )
    .expect("well-formed rule");
    let baseline = Matcher::new(vec![exact_rule]);
    let (b_result, b_quality) =
        baseline.evaluate(&workload.card, &workload.billing, &workload.truth);

    // Dependency-derived rules.
    let derived = Matcher::new(rcks);
    let (d_result, d_quality) =
        derived.evaluate(&workload.card, &workload.billing, &workload.truth);

    println!("\n                      pairs  comparisons  precision  recall     f1");
    println!(
        "exact-equality rule  {:>6}  {:>11}  {:>9.3}  {:>6.3}  {:>5.3}",
        b_result.len(),
        b_result.comparisons,
        b_quality.precision,
        b_quality.recall,
        b_quality.f1
    );
    println!(
        "derived RCKs         {:>6}  {:>11}  {:>9.3}  {:>6.3}  {:>5.3}",
        d_result.len(),
        d_result.comparisons,
        d_quality.precision,
        d_quality.recall,
        d_quality.f1
    );
    assert!(d_quality.recall >= b_quality.recall);
}
