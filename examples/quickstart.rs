//! Quickstart: declare conditional dependencies, detect violations, repair
//! them, and reason about the rules themselves.
//!
//! Run with `cargo run --example quickstart`.

use dataquality::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The customer relation of Fig. 1 and the CFDs of Fig. 2.
    // ------------------------------------------------------------------
    let d0 = dq_gen::customer::paper_instance();
    let fds = dq_gen::customer::paper_fds();
    let cfds = dq_gen::customer::paper_cfds();

    // The traditional FDs are satisfied: D0 looks clean to them.
    assert!(fds.iter().all(|fd| fd.holds_on(&d0)));
    println!("traditional FDs f1, f2: satisfied — no errors visible");

    // The conditional dependencies catch every tuple.
    let report = detect_cfd_violations(&d0, &cfds);
    println!(
        "CFDs ϕ1–ϕ3: {} violations involving {} of {} tuples",
        report.total(),
        report.violating_tuples().len(),
        d0.len()
    );

    // ------------------------------------------------------------------
    // 2. Repair the instance by value modification (Section 5.1).
    // ------------------------------------------------------------------
    let outcome =
        repair_cfd_violations(&d0, &cfds, &RepairCost::uniform(), &RepairConfig::default())
            .expect("consistent rule set");
    println!(
        "repair: {} cell changes, cost {:.2}, consistent = {}",
        outcome.log.change_count(),
        outcome.log.cost,
        outcome.consistent
    );
    for (id, attr, old, new) in &outcome.log.modified {
        println!(
            "  {}[{}]: {} -> {}",
            id,
            d0.schema().attr_name(*attr),
            old,
            new
        );
    }

    // ------------------------------------------------------------------
    // 3. Reason about the rules: consistency and implication (Section 4.1).
    // ------------------------------------------------------------------
    let consistency = cfd_set_consistent(&cfds);
    println!(
        "the CFD set itself is consistent: {}",
        consistency.consistent
    );

    let schema = dq_gen::customer::customer_schema();
    let implied = Cfd::new(
        &schema,
        &["CC", "AC", "zip"],
        &["street"],
        vec![PatternTuple::new(
            vec![cst(44), wild(), wild()],
            vec![wild()],
        )],
    )
    .expect("well-formed CFD");
    println!(
        "ϕ1 implies its augmentation with AC: {}",
        cfd_implies(&cfds, &implied)
    );
}
