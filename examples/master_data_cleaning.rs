//! Unified cleaning with master data: identify dirty records with their
//! master counterparts (object identification, Section 3), correct them from
//! the master (Section 5.1's master-data remark), and repair the rest
//! heuristically — then compare against repair without master data.
//!
//! Run with `cargo run --example master_data_cleaning`.

use dataquality::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A master relation and a dirty source referring to the same people.
    // ------------------------------------------------------------------
    let workload = dq_gen::master::generate_master_workload(&dq_gen::master::MasterConfig {
        entities: 1_000,
        error_rate: 0.25,
        name_variation_rate: 0.4,
        seed: 4,
    });
    let cfds = dq_gen::customer::paper_cfds();
    println!(
        "dirty source: {} records, {} corrupted cells, {} CFD violations",
        workload.dirty.len(),
        workload.corrupted_cells.len(),
        detect_cfd_violations(&workload.dirty, &cfds).total()
    );

    // ------------------------------------------------------------------
    // 2. The matching rule: same phone, similar name (an RCK, Section 3.3).
    // ------------------------------------------------------------------
    let schema = dq_gen::customer::customer_schema();
    let rule = RelativeKey::new(
        &schema,
        &schema,
        vec![
            ("phn", "phn", SimilarityOp::Equality),
            ("name", "name", SimilarityOp::edit(12)),
        ],
        &["street", "city", "zip"],
        &["street", "city", "zip"],
    )
    .expect("well-formed relative key");
    let fusion_attrs = vec![
        schema.attr("street"),
        schema.attr("city"),
        schema.attr("zip"),
    ];

    // ------------------------------------------------------------------
    // 3. Run the unified pipeline and the repair-only baseline.
    // ------------------------------------------------------------------
    let unified = CleaningPipeline::with_master(
        cfds.clone(),
        MasterData::new(workload.master.clone()),
        vec![rule],
        fusion_attrs,
    );
    let report = unified.run(&workload.dirty).expect("consistent rule set");
    println!("\nunified pipeline:");
    for stage in &report.stages {
        println!(
            "  stage {:<7} violations remaining = {:<5} changes = {}",
            stage.stage, stage.violations, stage.changes
        );
    }
    println!(
        "  matched {} of {} records against the master ({} ambiguous)",
        report.master_matches,
        workload.dirty.len(),
        report.ambiguous_matches
    );

    let baseline = CleaningPipeline::repair_only(cfds)
        .run(&workload.dirty)
        .expect("consistent rule set");

    // ------------------------------------------------------------------
    // 4. Score both against the ground truth.
    // ------------------------------------------------------------------
    let unified_quality = score_repair(&workload.clean, &workload.dirty, &report.cleaned);
    let baseline_quality = score_repair(&workload.clean, &workload.dirty, &baseline.cleaned);
    println!("\nrepair quality (precision / recall / F1):");
    println!(
        "  with master data: {:.3} / {:.3} / {:.3}",
        unified_quality.precision, unified_quality.recall, unified_quality.f1
    );
    println!(
        "  repair only:      {:.3} / {:.3} / {:.3}",
        baseline_quality.precision, baseline_quality.recall, baseline_quality.f1
    );
    assert!(unified_quality.f1 >= baseline_quality.f1);
}
