//! Consistent query answering and condensed representations (Sections 5.2
//! and 5.3): query an inconsistent database without repairing it, and
//! contrast the PTIME rewriting with the exponential repair-enumeration
//! oracle and with the nucleus representation.
//!
//! Run with `cargo run --example cqa_demo`.

use dataquality::prelude::*;
use dq_relation::{
    Atom, ConjunctiveQuery, Database, Domain, RelationInstance, RelationSchema, Term, Value,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A customer-account relation whose key (account number) is violated by
    // conflicting rows coming from two sources.
    let schema = Arc::new(RelationSchema::new(
        "account",
        [
            ("acct", Domain::Text),
            ("owner", Domain::Text),
            ("tier", Domain::Text),
        ],
    ));
    let mut instance = RelationInstance::new(Arc::clone(&schema));
    for (a, o, t) in [
        ("A1", "ann", "gold"),
        ("A1", "ann", "silver"), // conflicting tier for A1
        ("A2", "bob", "gold"),
        ("A3", "carol", "bronze"),
        ("A3", "carla", "bronze"), // conflicting owner for A3
    ] {
        instance
            .insert_values([Value::str(a), Value::str(o), Value::str(t)])
            .expect("tuple fits the schema");
    }
    let key_fd = Fd::new(&schema, &["acct"], &["owner", "tier"]);
    let constraints = DenialConstraint::from_fd(&key_fd);
    let keys = vec![KeySpec::new("account", vec![0])];
    let mut db = Database::new();
    db.add_relation(instance.clone());

    // q(a, o) :- account(a, o, t)
    let query = ConjunctiveQuery::new(
        vec!["a", "o"],
        vec![Atom::new(
            "account",
            vec![Term::var("a"), Term::var("o"), Term::var("t")],
        )],
        vec![],
    );

    let start = Instant::now();
    let oracle = certain_answers_oracle(&db, "account", &constraints, &query)
        .expect("oracle evaluation succeeds");
    let oracle_time = start.elapsed();

    let start = Instant::now();
    let rewritten = certain_answers_rewriting(&db, &keys, &query)
        .expect("the query is in the supported tree class");
    let rewriting_time = start.elapsed();

    assert_eq!(oracle, rewritten);
    println!("certain answers to q(acct, owner):");
    for row in &rewritten {
        println!("  {} owned by {}", row[0], row[1]);
    }
    println!(
        "\noracle over {} repairs: {:?}; rewriting: {:?}",
        repair_count(&db, "account", &constraints).expect("repair enumeration"),
        oracle_time,
        rewriting_time
    );

    // The explicit first-order rewriting of the single-atom query.
    let fo = rewrite_single_atom(&query, &keys).expect("single-atom query");
    println!(
        "\nrewritten FO query evaluates to the same answers: {}",
        fo.evaluate(&db).expect("FO evaluation") == rewritten
    );

    // Condensed representation: the nucleus merges each conflicting key group
    // into one tuple with variables, and naive evaluation returns the same
    // certain answers.
    let nucleus = nucleus_for_fd(&instance, &key_fd);
    println!(
        "\nnucleus: {} tuples, {} variables (original instance: {} tuples, {} repairs)",
        nucleus.len(),
        nucleus.variables().len(),
        instance.len(),
        count_repairs(&instance, &constraints)
    );
    let via_nucleus = evaluate_on_nucleus(&nucleus, "account", &query);
    assert_eq!(via_nucleus, rewritten);
    println!("nucleus evaluation agrees with the certain answers: true");

    // World-set decomposition: product representation of all repairs.
    let wsd = WorldSetDecomposition::for_key(&instance, &key_fd);
    println!(
        "world-set decomposition: {} components, {} stored tuples, {} worlds",
        wsd.components().len(),
        wsd.size(),
        wsd.world_count()
    );
}
