//! Source-to-target integration with conditional inclusion dependencies
//! (Section 2.2) and dependency propagation through views (Section 4.1,
//! Example 4.2).
//!
//! Run with `cargo run --example order_integration`.

use dataquality::prelude::*;
use dq_gen::orders::{generate_orders, paper_cinds, paper_database, OrderConfig};
use dq_relation::algebra::{Predicate, View};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // 1. Fig. 3 / Fig. 4: the paper's instance violates cind3 only.
    // ------------------------------------------------------------------
    let db = paper_database();
    let cinds = paper_cinds();
    let report = detect_cind_violations(&db, &cinds).expect("well-formed CINDs");
    for (i, name) in [
        "cind1 (book orders)",
        "cind2 (CD orders)",
        "cind3 (audio books)",
    ]
    .iter()
    .enumerate()
    {
        println!("{name}: {} violation(s)", report.of(i).len());
    }

    // CIND sets are always consistent (Theorem 4.1) and implication is
    // analysed by a pattern-aware chase.
    let consistent = cind_set_consistent(&cinds).consistent;
    println!("the CIND set is consistent: {consistent}");

    // ------------------------------------------------------------------
    // 2. Scale it up and measure the detection work.
    // ------------------------------------------------------------------
    for &orders in &[1_000usize, 10_000] {
        let workload = generate_orders(&OrderConfig {
            orders,
            violation_rate: 0.05,
            seed: 3,
        });
        let report = detect_cind_violations(&workload.db, &cinds).expect("well-formed CINDs");
        println!(
            "{orders} orders: {} dangling tuples detected ({} injected)",
            report.total(),
            workload.broken_orders.len() + workload.broken_cds.len()
        );
    }

    // ------------------------------------------------------------------
    // 3. Example 4.2: FDs do not propagate to the integration view, their
    //    conditional versions do.
    // ------------------------------------------------------------------
    let mut schema = dq_relation::DatabaseSchema::new();
    let mut sigma: BTreeMap<String, Vec<Cfd>> = BTreeMap::new();
    for name in ["R1", "R2", "R3"] {
        let s = Arc::new(dq_relation::RelationSchema::new(
            name,
            [
                ("CC", dq_relation::Domain::Int),
                ("AC", dq_relation::Domain::Int),
                ("zip", dq_relation::Domain::Text),
                ("street", dq_relation::Domain::Text),
                ("city", dq_relation::Domain::Text),
            ],
        ));
        schema.add((*s).clone());
        let mut cfds = vec![Cfd::from_fd(&Fd::new(&s, &["AC"], &["city"]))];
        if name == "R1" {
            cfds.push(Cfd::from_fd(&Fd::new(&s, &["zip"], &["street"])));
        }
        sigma.insert(name.to_string(), cfds);
    }
    let view = View::base("R1")
        .select(Predicate::EqConst(0, dq_relation::Value::int(44)))
        .union(View::base("R2").select(Predicate::EqConst(0, dq_relation::Value::int(1))))
        .union(View::base("R3").select(Predicate::EqConst(0, dq_relation::Value::int(31))));
    let view_schema = Arc::new(
        view.output_schema(&schema, "R")
            .expect("the view is well-formed over the source schemas"),
    );

    let f3 = Cfd::from_fd(&Fd::new(&view_schema, &["zip"], &["street"]));
    let phi7 = Cfd::new(
        &view_schema,
        &["CC", "zip"],
        &["street"],
        vec![PatternTuple::new(vec![cst(44), wild()], vec![wild()])],
    )
    .expect("ϕ7 is well-formed");
    println!(
        "f3 (zip -> street) propagates to the union view: {:?}",
        propagates(&schema, &sigma, &view, &f3)
            .expect("supported view")
            .holds()
    );
    println!(
        "ϕ7 (CC=44, zip -> street) propagates to the union view: {:?}",
        propagates(&schema, &sigma, &view, &phi7)
            .expect("supported view")
            .holds()
    );
}
