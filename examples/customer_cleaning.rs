//! Cleaning a synthetic customer database at scale: detect CFD violations,
//! repair them, and score the repair against the known ground truth.
//!
//! This is the workload behind the Section 5.1 experiments: data that a
//! traditional FD cannot fault, with 1%–5% injected errors that the
//! conditional dependencies catch.
//!
//! Run with `cargo run --release --example customer_cleaning`.

use dataquality::prelude::*;
use dq_gen::customer::{generate_customers, paper_cfds, CustomerConfig};

fn main() {
    let cfds = paper_cfds();
    println!("error%  tuples   violations  changed  precision  recall   f1");
    for &error_rate in &[0.01, 0.02, 0.05, 0.10] {
        let workload = generate_customers(&CustomerConfig {
            tuples: 5_000,
            error_rate,
            seed: 7,
            ..Default::default()
        });

        let report = detect_cfd_violations(&workload.dirty, &cfds);
        let outcome = repair_cfd_violations(
            &workload.dirty,
            &cfds,
            &RepairCost::uniform(),
            &RepairConfig::default(),
        )
        .expect("consistent rule set");
        let quality = score_repair(&workload.clean, &workload.dirty, &outcome.repaired);
        println!(
            "{:>5.0}%  {:>6}   {:>10}  {:>7}  {:>9.3}  {:>6.3}  {:>5.3}",
            error_rate * 100.0,
            workload.dirty.len(),
            report.total(),
            quality.changes,
            quality.precision,
            quality.recall,
            quality.f1,
        );
        assert!(
            outcome.consistent,
            "the repaired instance must satisfy the CFDs"
        );
    }

    // Incremental detection: append a batch and only re-check the new tuples.
    let workload = generate_customers(&CustomerConfig {
        tuples: 5_000,
        error_rate: 0.05,
        seed: 7,
        ..Default::default()
    });
    let mut instance = workload.dirty.clone();
    let extra = generate_customers(&CustomerConfig {
        tuples: 100,
        error_rate: 0.2,
        seed: 99,
        ..Default::default()
    });
    let mut added = Vec::new();
    for (_, tuple) in extra.dirty.iter() {
        added.push(instance.insert(tuple.clone()).expect("compatible schema"));
    }
    let incremental = detect_cfd_violations_incremental(&instance, &cfds, &added);
    println!(
        "\nincremental check of a 100-tuple append: {} new violations",
        incremental.total()
    );
}
