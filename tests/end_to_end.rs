//! Cross-crate integration: generate a dirty workload, detect, repair,
//! re-detect, and answer queries consistently — the full pipeline the paper
//! advocates, exercised through the facade crate.

use dataquality::prelude::*;
use dq_gen::customer::{generate_customers, paper_cfds, CustomerConfig};
use dq_gen::orders::{generate_orders, paper_cinds, OrderConfig};
use dq_relation::{Atom, ConjunctiveQuery, Term};

#[test]
fn detect_repair_redetect_on_synthetic_customers() {
    let cfds = paper_cfds();
    let workload = generate_customers(&CustomerConfig {
        tuples: 2_000,
        error_rate: 0.05,
        seed: 21,
        ..Default::default()
    });

    // The clean data is clean; the dirty data is not.
    assert!(detect_cfd_violations(&workload.clean, &cfds).is_clean());
    let before = detect_cfd_violations(&workload.dirty, &cfds);
    assert!(!before.is_clean());

    // Repair, then re-detect: nothing left.
    let outcome = repair_cfd_violations(
        &workload.dirty,
        &cfds,
        &RepairCost::uniform(),
        &RepairConfig::default(),
    )
    .expect("consistent rule set");
    assert!(outcome.consistent);
    assert!(detect_cfd_violations(&outcome.repaired, &cfds).is_clean());
    assert!(check_u_repair(&workload.dirty, &outcome.repaired, &cfds));

    // Repair quality against ground truth: the repair touches at least as
    // many cells as were corrupted and restores a sizeable fraction.
    let quality = score_repair(&workload.clean, &workload.dirty, &outcome.repaired);
    assert!(quality.errors > 0);
    assert!(quality.recall > 0.3, "recall {}", quality.recall);
    assert!(quality.precision > 0.3, "precision {}", quality.precision);
}

#[test]
fn minimal_cover_reduces_detection_work_without_changing_the_outcome() {
    let cfds = paper_cfds();
    // Add a redundant dependency implied by ϕ1 (its restriction to zip =
    // constant does not exist; use an augmentation instead).
    let schema = dq_gen::customer::customer_schema();
    let redundant = Cfd::new(
        &schema,
        &["CC", "AC", "zip"],
        &["street"],
        vec![PatternTuple::new(
            vec![cst(44), wild(), wild()],
            vec![wild()],
        )],
    )
    .unwrap();
    let mut extended = cfds.clone();
    extended.push(redundant);
    let cover = cfd_minimal_cover(&extended);
    assert!(cover.len() < extended.iter().map(|c| c.normalize().len()).sum::<usize>());

    let workload = generate_customers(&CustomerConfig {
        tuples: 1_000,
        error_rate: 0.05,
        seed: 3,
        ..Default::default()
    });
    let full = detect_cfd_violations(&workload.dirty, &extended);
    let covered = detect_cfd_violations(&workload.dirty, &cover);
    // Same verdict tuple-wise: a tuple is dirty under the extended set iff
    // it is dirty under the cover.
    assert_eq!(full.is_clean(), covered.is_clean());
}

#[test]
fn cind_detection_and_chase_based_reasoning_on_generated_orders() {
    let cinds = paper_cinds();
    let workload = generate_orders(&OrderConfig {
        orders: 2_000,
        violation_rate: 0.03,
        seed: 4,
    });
    let report = detect_cind_violations(&workload.db, &cinds).unwrap();
    assert_eq!(
        report.total(),
        workload.broken_orders.len() + workload.broken_cds.len()
    );

    // The derived CIND order ⊆ book for audio books (composition of ϕ5-like
    // and ϕ6) is implied by the chase.
    let derived = derive_cinds_once(&cinds);
    for d in &derived {
        assert!(cind_implies_chase(&cinds, d, 10_000));
    }
}

#[test]
fn consistent_answers_survive_repair() {
    // Certain answers computed on the dirty database are answers on the
    // repaired database too (for value-preserving deletion repairs).
    let schema = std::sync::Arc::new(dq_relation::RelationSchema::new(
        "emp",
        [
            ("name", dq_relation::Domain::Text),
            ("dept", dq_relation::Domain::Text),
        ],
    ));
    let mut inst = dq_relation::RelationInstance::new(std::sync::Arc::clone(&schema));
    for (n, d) in [("ann", "cs"), ("ann", "ee"), ("bob", "cs"), ("carol", "me")] {
        inst.insert_values([dq_relation::Value::str(n), dq_relation::Value::str(d)])
            .unwrap();
    }
    let fd = Fd::new(&schema, &["name"], &["dept"]);
    let constraints = DenialConstraint::from_fd(&fd);
    let keys = vec![KeySpec::new("emp", vec![0])];
    let db = single_relation_db(inst.clone());
    let query = ConjunctiveQuery::new(
        vec!["n", "d"],
        vec![Atom::new("emp", vec![Term::var("n"), Term::var("d")])],
        vec![],
    );
    let certain = certain_answers_rewriting(&db, &keys, &query).unwrap();

    let repaired = repair_by_deletion(&inst, &constraints).repaired;
    let repaired_db = single_relation_db(repaired);
    let after = query.evaluate(&repaired_db).unwrap();
    for answer in &certain {
        assert!(after.contains(answer), "{answer:?} lost by the repair");
    }
}
