//! Property suites for the constraint static-analysis engine: the
//! propagation-guided solver must agree with the kept naive procedures on
//! every verdict, at every thread count, and every positive answer must
//! carry a witness the semantic oracles (detection over a materialized
//! instance) accept.

use dataquality::prelude::*;
use dq_core::analysis::lint;
use dq_core::analysis::solver::{solve_cfd_consistency, solve_cfd_implication};
use dq_relation::{Domain, RelationSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// A schema mixing finite and infinite domains: the consistency problem is
/// NP-complete here (Theorem 4.1), so the solver's search actually runs.
fn finite_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "r",
        [
            ("A", Domain::Bool),
            ("B", Domain::Bool),
            ("C", Domain::finite_str(["x", "y", "z"])),
            ("D", Domain::Text),
        ],
    ))
}

/// All-infinite schema: consistency and implication fall to the quadratic
/// fast paths (Theorem 4.3), which the solver must take.
fn infinite_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "r",
        [
            ("A", Domain::Text),
            ("B", Domain::Text),
            ("C", Domain::Text),
            ("D", Domain::Text),
        ],
    ))
}

/// A random in-domain constant for attribute `attr` of `schema`.
fn random_constant(rng: &mut StdRng, schema: &RelationSchema, attr: usize) -> Value {
    match schema.domain(attr) {
        Domain::Bool => Value::from(rng.gen_bool(0.5)),
        Domain::Finite(values) => values[rng.gen_range(0..values.len())].clone(),
        _ => Value::from(if rng.gen_bool(0.5) { "c0" } else { "c1" }),
    }
}

/// A random normalized CFD whose constants are drawn from small pools per
/// attribute, so rule interactions (conflicts, implications) are common.
fn random_cfd(rng: &mut StdRng, schema: &Arc<RelationSchema>) -> Cfd {
    let arity = schema.arity();
    let mut attrs: Vec<usize> = (0..arity).collect();
    for i in 0..arity {
        let j = rng.gen_range(i..arity);
        attrs.swap(i, j);
    }
    let lhs_len = rng.gen_range(1..=2);
    let rhs = vec![attrs[lhs_len]];
    let lhs = attrs[..lhs_len].to_vec();
    let lhs_pattern = lhs
        .iter()
        .map(|&a| {
            if rng.gen_bool(0.5) {
                cst(random_constant(rng, schema, a))
            } else {
                wild()
            }
        })
        .collect();
    let rhs_pattern = vec![if rng.gen_bool(0.5) {
        cst(random_constant(rng, schema, rhs[0]))
    } else {
        wild()
    }];
    Cfd::from_indices(
        schema,
        lhs,
        rhs,
        vec![PatternTuple::new(lhs_pattern, rhs_pattern)],
    )
    .unwrap()
}

fn render(sigma: &[Cfd]) -> Vec<String> {
    sigma.iter().map(|c| c.to_string()).collect()
}

/// The solver's consistency verdict equals the naive full search on random
/// rule sets over finite domains, at every thread count, and every witness
/// it produces passes detection on the singleton instance.
#[test]
fn solver_consistency_matches_naive_on_finite_domains() {
    let schema = finite_schema();
    let mut rng = StdRng::seed_from_u64(41);
    for round in 0..60 {
        let sigma: Vec<Cfd> = (0..rng.gen_range(2..=5))
            .map(|_| random_cfd(&mut rng, &schema))
            .collect();
        let naive = cfd_set_consistent_naive(&sigma);
        for threads in THREAD_COUNTS {
            let solved = solve_cfd_consistency(&sigma, threads);
            assert_eq!(
                solved.consistent,
                naive.consistent,
                "round {round}, {threads} threads, disagreement on {:?}",
                render(&sigma)
            );
            if let Some(witness) = solved.witness_tuple() {
                let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
                inst.insert(witness.clone()).unwrap();
                assert!(
                    detect_cfd_violations(&inst, &sigma).is_clean(),
                    "round {round}: witness violates {:?}",
                    render(&sigma)
                );
            }
        }
    }
}

/// The solver's implication verdict equals the naive two-tuple
/// counterexample search, at every thread count; every counterexample it
/// produces satisfies sigma and violates phi under detection.
#[test]
fn solver_implication_matches_naive_on_finite_domains() {
    let schema = finite_schema();
    let mut rng = StdRng::seed_from_u64(43);
    for round in 0..40 {
        let sigma: Vec<Cfd> = (0..rng.gen_range(1..=3))
            .map(|_| random_cfd(&mut rng, &schema))
            .collect();
        let phi = random_cfd(&mut rng, &schema);
        let naive = cfd_implies_exact_naive(&sigma, &phi);
        for threads in THREAD_COUNTS {
            let solved = solve_cfd_implication(&sigma, &phi, threads);
            assert_eq!(
                solved.implied,
                naive,
                "round {round}, {threads} threads, disagreement on {} vs {:?}",
                phi,
                render(&sigma)
            );
            if let Some((t1, t2)) = &solved.counterexample {
                let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
                inst.insert(t1.clone()).unwrap();
                inst.insert(t2.clone()).unwrap();
                assert!(
                    detect_cfd_violations(&inst, &sigma).is_clean(),
                    "round {round}: counterexample violates sigma {:?}",
                    render(&sigma)
                );
                assert!(
                    !detect_cfd_violations(&inst, std::slice::from_ref(&phi)).is_clean(),
                    "round {round}: counterexample satisfies phi {phi}"
                );
            }
        }
    }
}

/// Verdict AND witness are bit-identical at every thread count: parallel
/// branch fan-out picks the lowest-index success, so scheduling cannot leak
/// into the answer.
#[test]
fn solver_results_are_deterministic_across_thread_counts() {
    let schema = finite_schema();
    let mut rng = StdRng::seed_from_u64(47);
    for _ in 0..30 {
        let sigma: Vec<Cfd> = (0..4).map(|_| random_cfd(&mut rng, &schema)).collect();
        let phi = random_cfd(&mut rng, &schema);
        let base_consistency = solve_cfd_consistency(&sigma, 1);
        let base_implication = solve_cfd_implication(&sigma, &phi, 1);
        for threads in [2, 4, 0] {
            let c = solve_cfd_consistency(&sigma, threads);
            assert_eq!(c.consistent, base_consistency.consistent);
            assert_eq!(
                c.witness_tuple(),
                base_consistency.witness_tuple(),
                "witness depends on thread count for {:?}",
                render(&sigma)
            );
            let i = solve_cfd_implication(&sigma, &phi, threads);
            assert_eq!(i.implied, base_implication.implied);
            assert_eq!(
                i.counterexample,
                base_implication.counterexample,
                "counterexample depends on thread count for {} vs {:?}",
                phi,
                render(&sigma)
            );
        }
    }
}

/// Without finite-domain attributes both analyses complete on their
/// quadratic fast paths (Theorem 4.3) and still agree with the naive
/// procedures.
#[test]
fn fast_paths_cover_infinite_domains_and_agree_with_naive() {
    let schema = infinite_schema();
    let mut rng = StdRng::seed_from_u64(53);
    for _ in 0..40 {
        let sigma: Vec<Cfd> = (0..4).map(|_| random_cfd(&mut rng, &schema)).collect();
        let solved = solve_cfd_consistency(&sigma, 0);
        assert!(
            solved.stats.fast_path,
            "no finite domains, yet search ran on {:?}",
            render(&sigma)
        );
        assert_eq!(
            solved.consistent,
            cfd_set_consistent_naive(&sigma).consistent
        );
        let phi = random_cfd(&mut rng, &schema);
        let implied = solve_cfd_implication(&sigma, &phi, 0);
        assert!(implied.stats.fast_path);
        assert_eq!(implied.implied, cfd_implies_exact_naive(&sigma, &phi));
    }
}

/// The lint core is (a) really inconsistent and (b) minimal: removing any
/// single rule restores consistency, per the naive oracle.
#[test]
fn lint_cores_are_minimal_inconsistent_subsets() {
    let schema = finite_schema();
    let mut rng = StdRng::seed_from_u64(59);
    let mut inconsistent_seen = 0;
    for _ in 0..120 {
        let sigma: Vec<Cfd> = (0..rng.gen_range(3..=6))
            .map(|_| random_cfd(&mut rng, &schema))
            .collect();
        if solve_cfd_consistency(&sigma, 0).consistent {
            continue;
        }
        inconsistent_seen += 1;
        let core_indices = lint::minimal_inconsistent_core(&sigma);
        let core: Vec<Cfd> = core_indices.iter().map(|&i| sigma[i].clone()).collect();
        assert!(
            !cfd_set_consistent_naive(&core).consistent,
            "core {core_indices:?} of {:?} is consistent",
            render(&sigma)
        );
        for drop in 0..core.len() {
            let mut reduced = core.clone();
            reduced.remove(drop);
            assert!(
                cfd_set_consistent_naive(&reduced).consistent,
                "core {core_indices:?} of {:?} is not minimal (rule {drop} removable)",
                render(&sigma)
            );
        }
        let report = lint_cfds(&sigma);
        assert!(!report.is_consistent());
        assert_eq!(report.core(), Some(core_indices.as_slice()));
    }
    assert!(
        inconsistent_seen >= 5,
        "workload generator produced too few inconsistent sets ({inconsistent_seen})"
    );
}

/// The canonical minimal cover is permutation-invariant: any input order
/// produces the identical rule list.
#[test]
fn minimal_cover_is_permutation_invariant() {
    let schema = finite_schema();
    let mut rng = StdRng::seed_from_u64(61);
    for _ in 0..25 {
        let sigma: Vec<Cfd> = (0..5).map(|_| random_cfd(&mut rng, &schema)).collect();
        if !solve_cfd_consistency(&sigma, 0).consistent {
            continue;
        }
        let reference = cfd_minimal_cover(&sigma);
        for _ in 0..4 {
            let mut shuffled = sigma.clone();
            for i in 0..shuffled.len() {
                let j = rng.gen_range(i..shuffled.len());
                shuffled.swap(i, j);
            }
            let cover = cfd_minimal_cover(&shuffled);
            assert_eq!(
                cover,
                reference,
                "cover depends on input order for {:?}",
                render(&sigma)
            );
        }
        // Cover members are implied by the original set and vice versa.
        for c in &reference {
            assert!(cfd_implies_exact(&sigma, c));
        }
        for c in &sigma {
            assert!(cfd_implies_exact(&reference, c));
        }
    }
}

/// `analyze_cfds` refuses inconsistent sets with the minimal core rendered
/// in the error, and vets consistent sets with a valid witness.
#[test]
fn analyze_cfds_refuses_inconsistent_sets_with_core() {
    let schema = finite_schema();
    let mut rng = StdRng::seed_from_u64(67);
    let mut refused = 0;
    for _ in 0..80 {
        let sigma: Vec<Cfd> = (0..rng.gen_range(3..=6))
            .map(|_| random_cfd(&mut rng, &schema))
            .collect();
        match analyze_cfds(&sigma, &AnalysisOptions::default()) {
            Ok(analyzed) => {
                assert!(analyzed.report.is_consistent());
                if let Some(w) = &analyzed.witness {
                    let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
                    inst.insert(w.clone()).unwrap();
                    assert!(detect_cfd_violations(&inst, &sigma).is_clean());
                }
            }
            Err(dq_relation::DqError::InconsistentConstraints { core }) => {
                refused += 1;
                assert!(!core.is_empty());
                assert!(!cfd_set_consistent_naive(&sigma).consistent);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(refused >= 5, "too few inconsistent sets ({refused})");
}
