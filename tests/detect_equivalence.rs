//! Equivalence properties of the detection paths: the shared-index parallel
//! [`DetectionEngine`] must produce reports equal to the naive per-dependency
//! detectors, and batch detection must equal clean-prefix detection plus
//! incremental detection of appended tuples.
//!
//! All cases are generated from seeded strategies (the offline proptest
//! stand-in derives its RNG seed from the test name), so runs are exactly
//! reproducible — no fixed-seed flakiness.

use dataquality::prelude::*;
use dq_gen::customer::{generate_customers, paper_cfds, CustomerConfig};
use dq_gen::orders::{generate_orders, paper_cinds, OrderConfig};
use dq_relation::instance::CellRef;
use dq_relation::{RelationInstance, TupleId, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Workload shapes worth exercising: tiny through few-hundred tuples, clean
/// through heavily corrupted, paper-style (three huge `[CC, AC]` groups)
/// through scaled city pools (many small groups).
fn workload_config() -> impl Strategy<Value = CustomerConfig> {
    (
        1usize..250,
        0usize..4,
        0u64..1_000,
        prop_oneof![3usize..4, 20usize..40],
    )
        .prop_map(
            |(tuples, rate_idx, seed, cities_per_country)| CustomerConfig {
                tuples,
                error_rate: [0.0, 0.01, 0.05, 0.25][rate_idx],
                seed,
                cities_per_country,
            },
        )
}

fn engine_variants() -> Vec<DetectionEngine> {
    vec![
        DetectionEngine::with_threads(1),
        DetectionEngine::with_threads(4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Engine CFD reports are byte-identical to the naive path, sequential
    /// and parallel, cold pool and warm pool.
    #[test]
    fn engine_cfd_detection_equals_naive(config in workload_config()) {
        let workload = generate_customers(&config);
        let cfds = paper_cfds();
        let naive = detect_cfd_violations(&workload.dirty, &cfds);
        for engine in engine_variants() {
            let cold = engine.detect_cfd_violations(&workload.dirty, &cfds);
            prop_assert_eq!(&cold, &naive);
            let warm = engine.detect_cfd_violations(&workload.dirty, &cfds);
            prop_assert_eq!(&warm, &naive);
        }
    }

    /// Engine equivalence also holds for the normalized fragment set, where
    /// many dependencies share a LHS and the pool serves one index to all.
    #[test]
    fn engine_equivalence_on_normalized_fragments(config in workload_config()) {
        let workload = generate_customers(&config);
        let fragments: Vec<Cfd> = paper_cfds().iter().flat_map(|c| c.normalize()).collect();
        let naive = detect_cfd_violations(&workload.dirty, &fragments);
        let engine = DetectionEngine::new();
        prop_assert_eq!(engine.detect_cfd_violations(&workload.dirty, &fragments), naive);
        // One distinct LHS per paper CFD, regardless of fragment count.
        prop_assert_eq!(engine.pool_stats().misses, 3);
    }

    /// Batch detection over the extended instance equals the report on the
    /// prefix plus incremental detection of the appended tuples.
    #[test]
    fn batch_equals_prefix_plus_incremental(
        config in workload_config(),
        split_percent in 0usize..=100,
    ) {
        let workload = generate_customers(&config);
        let cfds = paper_cfds();
        let split = workload.dirty.len() * split_percent / 100;
        let mut prefix = RelationInstance::new(Arc::clone(workload.dirty.schema()));
        let mut extended = RelationInstance::new(Arc::clone(workload.dirty.schema()));
        let mut added = Vec::new();
        for (i, (_, tuple)) in workload.dirty.iter().enumerate() {
            let id = extended.insert(tuple.clone()).expect("compatible tuple");
            if i < split {
                prefix.insert(tuple.clone()).expect("compatible tuple");
            } else {
                added.push(id);
            }
        }
        let full = detect_cfd_violations(&extended, &cfds);
        let prefix_report = detect_cfd_violations(&prefix, &cfds);
        let incremental = detect_cfd_violations_incremental(&extended, &cfds, &added);
        for i in 0..cfds.len() {
            let mut combined: Vec<CfdViolation> = prefix_report
                .of(i)
                .iter()
                .chain(incremental.of(i))
                .copied()
                .collect();
            combined.sort_unstable();
            prop_assert_eq!(
                combined,
                full.of(i).to_vec(),
                "dependency {} disagrees (split {} of {})",
                i,
                split,
                extended.len()
            );
        }
    }

    /// Engine incremental detection equals naive incremental detection.
    #[test]
    fn engine_incremental_equals_naive_incremental(
        config in workload_config(),
        split_percent in 0usize..=100,
    ) {
        let workload = generate_customers(&config);
        let cfds = paper_cfds();
        let split = workload.dirty.len() * split_percent / 100;
        let added: Vec<_> = workload
            .dirty
            .iter()
            .skip(split)
            .map(|(id, _)| id)
            .collect();
        let naive = detect_cfd_violations_incremental(&workload.dirty, &cfds, &added);
        for engine in engine_variants() {
            prop_assert_eq!(
                engine.detect_cfd_violations_incremental(&workload.dirty, &cfds, &added),
                naive.clone()
            );
        }
    }

    /// Engine eCFD reports equal the naive path on generated instances.
    #[test]
    fn engine_ecfd_detection_equals_naive(config in workload_config()) {
        let workload = generate_customers(&config);
        let schema = workload.dirty.schema();
        let ecfds = vec![
            // FD city → AC outside the fixed UK cities.
            Ecfd::new(
                schema,
                &["city"],
                &["AC"],
                vec![EcfdPattern::new(
                    vec![SetPattern::not_in(["EDI", "GLA", "LDN"])],
                    vec![SetPattern::any()],
                )],
            )
            .expect("well-formed eCFD"),
            // EDI tuples must carry one of the Edinburgh-ish area codes.
            Ecfd::new(
                schema,
                &["city"],
                &["AC"],
                vec![EcfdPattern::new(
                    vec![SetPattern::eq("EDI")],
                    vec![SetPattern::in_set([131i64, 132])],
                )],
            )
            .expect("well-formed eCFD"),
        ];
        let naive = detect_ecfd_violations(&workload.dirty, &ecfds);
        for engine in engine_variants() {
            prop_assert_eq!(engine.detect_ecfd_violations(&workload.dirty, &ecfds), naive.clone());
        }
    }

    /// The engine detects over interned columnar snapshots memoized per
    /// instance version; after mutations (cell updates, inserts, removals)
    /// a fresh snapshot must be taken and reports must still equal naive —
    /// this is the property a stale snapshot or index would break.
    #[test]
    fn engine_equivalence_survives_mutation(
        config in workload_config(),
        victim in 0usize..250,
        attr_pick in 0usize..3,
    ) {
        let workload = generate_customers(&config);
        let mut instance = workload.dirty;
        let cfds = paper_cfds();
        let engine = DetectionEngine::new();
        let before = engine.detect_cfd_violations(&instance, &cfds);
        prop_assert_eq!(&before, &detect_cfd_violations(&instance, &cfds));
        // Mutate: update a cell, insert a colliding tuple, remove a tuple.
        let schema = Arc::clone(instance.schema());
        let attr = [schema.attr("city"), schema.attr("street"), schema.attr("zip")][attr_pick];
        let victim = TupleId(victim % instance.len().max(1));
        instance
            .update_cell(CellRef::new(victim, attr), Value::str("MUTATED"))
            .unwrap();
        let donor = instance.tuple(TupleId(0)).expect("live tuple").clone();
        instance.insert(donor).expect("same schema");
        instance.remove(victim);
        let after = engine.detect_cfd_violations(&instance, &cfds);
        prop_assert_eq!(&after, &detect_cfd_violations(&instance, &cfds));
    }

    /// Engine CIND reports over the order/book/CD database equal the naive
    /// cross-relation detector, cold and warm.
    #[test]
    fn engine_cind_detection_equals_naive(
        orders in 1usize..250,
        rate_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let workload = generate_orders(&OrderConfig {
            orders,
            violation_rate: [0.0, 0.01, 0.05, 0.25][rate_idx],
            seed,
        });
        let cinds = paper_cinds();
        let naive = detect_cind_violations(&workload.db, &cinds).unwrap();
        for engine in engine_variants() {
            let cold = engine.detect_cind_violations(&workload.db, &cinds).unwrap();
            prop_assert_eq!(&cold, &naive);
            let warm = engine.detect_cind_violations(&workload.db, &cinds).unwrap();
            prop_assert_eq!(&warm, &naive);
        }
    }

    /// Engine denial-constraint reports equal the naive quadratic scan, for
    /// FD-shaped constraints (index path) and single-variable range
    /// constraints (fallback path) alike.
    #[test]
    fn engine_denial_detection_equals_naive(config in workload_config()) {
        let workload = generate_customers(&config);
        let schema = workload.dirty.schema();
        let mut constraints =
            DenialConstraint::from_fd(&Fd::new(schema, &["CC", "zip"], &["street"]));
        constraints.extend(DenialConstraint::from_fd(&Fd::new(schema, &["CC", "AC"], &["city"])));
        constraints.push(DenialConstraint::new(
            "customer",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, schema.attr("CC")),
                dq_relation::CompOp::Gt,
                DcTerm::val(50i64),
            )],
        ));
        let naive = detect_denial_violations(&workload.dirty, &constraints);
        for engine in engine_variants() {
            prop_assert_eq!(
                engine.detect_denial_violations(&workload.dirty, &constraints),
                naive.clone()
            );
        }
    }
}
