//! Property-based tests (proptest) on the core data structures and the
//! invariants the algorithms rely on.

use dataquality::prelude::*;
use dq_relation::{Domain, RelationInstance, RelationSchema, Tuple, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::int),
        "[a-c]{1,3}".prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
    ]
}

fn text_value() -> impl Strategy<Value = Value> {
    "[a-d]{1,4}".prop_map(Value::str)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The match operator ≍ is reflexive on constants and `_` matches
    /// everything; pattern subsumption is consistent with matching.
    #[test]
    fn pattern_match_operator_laws(v in small_value(), w in small_value()) {
        prop_assert!(wild().matches(&v));
        prop_assert!(cst(v.clone()).matches(&v));
        let p = cst(v.clone());
        let q = cst(w.clone());
        // If p subsumes q (p at least as restrictive as the more general q),
        // then whenever p matches a value, q matches it too ... subsumption
        // here is between pattern entries: constants subsume wildcards.
        prop_assert!(p.subsumes(&wild()));
        if p.subsumes(&q) {
            prop_assert!(q.matches(&v));
        }
    }

    /// Value distance is symmetric, zero on equal values and bounded by 1.
    #[test]
    fn value_distance_is_a_bounded_symmetric_dissimilarity(a in small_value(), b in small_value()) {
        let d_ab = dq_relation::value_distance(&a, &b);
        let d_ba = dq_relation::value_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert_eq!(dq_relation::value_distance(&a, &a), 0.0);
    }

    /// Levenshtein distance satisfies identity, symmetry and the triangle
    /// inequality on short strings.
    #[test]
    fn levenshtein_is_a_metric(a in "[a-c]{0,5}", b in "[a-c]{0,5}", c in "[a-c]{0,5}") {
        let ab = dq_relation::levenshtein(&a, &b);
        let ba = dq_relation::levenshtein(&b, &a);
        let ac = dq_relation::levenshtein(&a, &c);
        let cb = dq_relation::levenshtein(&c, &b);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(dq_relation::levenshtein(&a, &a), 0);
        prop_assert!(ab <= ac + cb);
    }

    /// Similarity operators are reflexive, symmetric and subsume equality.
    #[test]
    fn similarity_operator_axioms(a in "[a-d]{1,6}", b in "[a-d]{1,6}", threshold in 0usize..4) {
        let ops = [
            SimilarityOp::Equality,
            SimilarityOp::edit(threshold),
            SimilarityOp::jaro(0.7),
            SimilarityOp::qgram(2, 0.5),
        ];
        let va = Value::str(a.clone());
        let vb = Value::str(b.clone());
        for op in &ops {
            prop_assert!(op.related(&va, &va));
            prop_assert_eq!(op.related(&va, &vb), op.related(&vb, &va));
            if a == b {
                prop_assert!(op.related(&va, &vb));
            }
        }
    }

    /// FD attribute closure is monotone, idempotent and contains its input.
    #[test]
    fn fd_closure_is_a_closure_operator(seed_attrs in proptest::collection::vec(0usize..4, 1..3)) {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text), ("C", Domain::Text), ("D", Domain::Text)],
        ));
        let fds = vec![
            Fd::new(&schema, &["A"], &["B"]),
            Fd::new(&schema, &["B", "C"], &["D"]),
        ];
        let closure = attribute_closure(&seed_attrs, &fds);
        for a in &seed_attrs {
            prop_assert!(closure.contains(a));
        }
        let twice = attribute_closure(&closure.iter().copied().collect::<Vec<_>>(), &fds);
        prop_assert_eq!(closure.clone(), twice);
        // Monotonicity: extending the seed can only grow the closure.
        let mut bigger = seed_attrs.clone();
        bigger.push(2);
        let bigger_closure = attribute_closure(&bigger, &fds);
        prop_assert!(closure.is_subset(&bigger_closure));
    }

    /// CFD normalization preserves satisfaction on arbitrary small instances.
    #[test]
    fn cfd_normalization_preserves_satisfaction(
        rows in proptest::collection::vec((text_value(), text_value(), text_value()), 0..8),
        use_constant in any::<bool>(),
    ) {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Text), ("B", Domain::Text), ("C", Domain::Text)],
        ));
        let mut instance = RelationInstance::new(Arc::clone(&schema));
        for (a, b, c) in rows {
            instance.insert(Tuple::new(vec![a, b, c])).unwrap();
        }
        let rhs_pattern = if use_constant { cst("a") } else { wild() };
        let cfd = Cfd::new(
            &schema,
            &["A"],
            &["B", "C"],
            vec![
                PatternTuple::new(vec![cst("a")], vec![rhs_pattern.clone(), wild()]),
                PatternTuple::new(vec![wild()], vec![wild(), wild()]),
            ],
        ).unwrap();
        let normalized = cfd.normalize();
        prop_assert_eq!(
            cfd.holds_on(&instance),
            normalized.iter().all(|c| c.holds_on(&instance))
        );
    }

    /// The heuristic U-repair always terminates and, when it reports
    /// consistency, its output really satisfies the CFDs and only differs
    /// from the input in attribute values (same tuple ids).
    #[test]
    fn urepair_outputs_are_real_repairs(
        rows in proptest::collection::vec((0i64..3, text_value()), 1..10),
    ) {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Text)],
        ));
        let mut instance = RelationInstance::new(Arc::clone(&schema));
        for (a, b) in rows {
            instance.insert(Tuple::new(vec![Value::int(a), b])).unwrap();
        }
        let cfds = vec![Cfd::from_fd(&Fd::new(&schema, &["A"], &["B"]))];
        let outcome = repair_cfd_violations(
            &instance,
            &cfds,
            &RepairCost::uniform(),
            &RepairConfig::default(),
        )
        .expect("consistent rule set");
        prop_assert!(outcome.consistent);
        prop_assert!(check_u_repair(&instance, &outcome.repaired, &cfds));
        prop_assert_eq!(instance.len(), outcome.repaired.len());
    }

    /// Deletion-based repair always yields a consistent maximal subset.
    #[test]
    fn deletion_repairs_are_x_repairs(
        rows in proptest::collection::vec((0i64..3, 0i64..3), 1..9),
    ) {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Int)],
        ));
        let mut instance = RelationInstance::new(Arc::clone(&schema));
        for (a, b) in rows {
            instance.insert(Tuple::new(vec![Value::int(a), Value::int(b)])).unwrap();
        }
        let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["A"], &["B"]));
        let outcome = repair_by_deletion(&instance, &constraints);
        prop_assert!(constraints.iter().all(|c| c.holds_on(&outcome.repaired)));
        prop_assert!(check_x_repair(&instance, &outcome.repaired, &constraints));
    }

    /// The nucleus of an instance under a key is homomorphic to every repair
    /// and never larger than the instance.
    #[test]
    fn nucleus_invariants(
        rows in proptest::collection::vec((0i64..3, 0i64..3), 1..7),
    ) {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", Domain::Int), ("B", Domain::Int)],
        ));
        let mut instance = RelationInstance::new(Arc::clone(&schema));
        for (a, b) in rows {
            instance.insert(Tuple::new(vec![Value::int(a), Value::int(b)])).unwrap();
        }
        let key = Fd::new(&schema, &["A"], &["B"]);
        let nucleus = nucleus_for_fd(&instance, &key);
        prop_assert!(nucleus.len() <= instance.len());
        let constraints = DenialConstraint::from_fd(&key);
        for repair in enumerate_repairs(&instance, &constraints) {
            prop_assert!(nucleus.homomorphic_to(&repair));
        }
    }

    /// MD implication is reflexive and monotone in Σ.
    #[test]
    fn md_implication_reflexive_and_monotone(which in 0usize..4) {
        let card = dq_gen::cards::card_schema();
        let billing = dq_gen::cards::billing_schema();
        let sigma = example_3_1_mds(&card, &billing);
        let phi = sigma[which].clone();
        prop_assert!(md_implies(&sigma, &phi));
        prop_assert!(md_implies(std::slice::from_ref(&phi), &phi));
        // Removing unrelated MDs never turns an implication of the single
        // dependency itself into a non-implication.
        prop_assert!(md_implies(&sigma[which..=which], &phi));
    }
}
