//! The dq-obs recorder against the engine it instruments: counters must
//! sum exactly under the workspace's own `parallel_map` fan-out, the
//! disabled recorder must record nothing at all, and — the contract the
//! whole layer rests on — turning instrumentation on must never change a
//! single output byte of detection, discovery or repair.
//!
//! The recorder is process-global, so every test here serializes on one
//! mutex before toggling it (other integration-test binaries run in their
//! own processes and cannot race this one).

use dataquality::prelude::*;
use dq_gen::customer::{generate_customers, paper_cfds, CustomerConfig};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Serializes recorder toggling across tests and guarantees the recorder
/// is left disabled (the workspace default) when the guard drops.
struct RecorderSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl RecorderSession {
    fn begin() -> Self {
        let guard = RECORDER_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        dq_obs::set_enabled(false);
        dq_obs::recorder().reset();
        RecorderSession(guard)
    }
}

impl Drop for RecorderSession {
    fn drop(&mut self) {
        dq_obs::set_enabled(false);
        dq_obs::recorder().reset();
    }
}

/// Counter increments fired from inside the engine's own thread pool sum
/// exactly — no lost updates across the sharded atomics.
#[test]
fn counters_sum_exactly_under_parallel_map() {
    let _session = RecorderSession::begin();
    dq_obs::set_enabled(true);
    let items: Vec<usize> = (0..4_096).collect();
    let counter = dq_obs::recorder().counter("test.parallel_map.increments");
    let doubled = dq_core::engine::parallel_map(&items, 8, |&i| {
        counter.inc();
        dq_obs::add("test.parallel_map.weight", i as u64);
        i * 2
    });
    assert_eq!(doubled.len(), items.len());
    let snap = dq_obs::recorder().snapshot();
    assert_eq!(
        snap.counters.get("test.parallel_map.increments"),
        Some(&(items.len() as u64))
    );
    let expected_weight: u64 = items.iter().map(|&i| i as u64).sum();
    assert_eq!(
        snap.counters.get("test.parallel_map.weight"),
        Some(&expected_weight)
    );
}

/// A disabled recorder is a no-op: nothing fired through the free
/// functions, handles or spans lands in the snapshot.
#[test]
fn disabled_recorder_records_nothing() {
    let _session = RecorderSession::begin();
    dq_obs::inc("test.disabled.counter");
    dq_obs::add("test.disabled.counter", 41);
    dq_obs::gauge_set("test.disabled.gauge", 7);
    dq_obs::record("test.disabled.histogram", 123);
    let counter = dq_obs::recorder().counter("test.disabled.handle");
    counter.inc();
    {
        let span = dq_obs::span!("test.disabled.span", detail = "ignored");
        // The guard still measures real time even while disabled (the
        // bench harness leans on that for `level_ms`), it just must not
        // record anything.
        assert!(span.finish_ms() >= 0.0);
    }
    let value = dq_obs::time("test.disabled.timed", || 6 * 7);
    assert_eq!(value, 42, "time() must run the closure even when disabled");
    assert!(
        dq_obs::recorder().snapshot().is_quiet(),
        "disabled recorder must record nothing"
    );
}

/// A full engine pass under the enabled recorder populates the metric
/// families the profile mode documents.
#[test]
fn engine_pass_populates_detection_metrics() {
    let _session = RecorderSession::begin();
    dq_obs::set_enabled(true);
    let workload = generate_customers(&CustomerConfig {
        tuples: 300,
        error_rate: 0.05,
        seed: 7,
        cities_per_country: 5,
    });
    let cfds = paper_cfds();
    let engine = DetectionEngine::new();
    let _ = engine.detect_cfd_violations(&workload.dirty, &cfds);
    let _ = engine.detect_cfd_violations(&workload.dirty, &cfds);
    let mut snap = dq_obs::recorder().snapshot();
    snap.ingest("engine.pool", &engine.pool_stats());
    assert!(snap.spans.contains_key("detect.cfd"));
    assert_eq!(snap.spans["detect.cfd"].count, 2);
    assert!(
        snap.counters.get("pool.hits").copied().unwrap_or(0) > 0,
        "the warm pass must be served from the pool"
    );
    assert!(
        snap.histograms.contains_key("index.build_ns"),
        "cold index builds must be timed"
    );
    // The engine's pool is the only one alive since the reset, so the
    // live process-wide counters and the polled one-pool stats struct
    // (ingested under `engine.pool`) must tell the same story.
    for family in ["hits", "misses", "appends", "patches", "races"] {
        assert_eq!(
            snap.counters
                .get(&format!("pool.{family}"))
                .copied()
                .unwrap_or(0),
            snap.counters
                .get(&format!("engine.pool.{family}"))
                .copied()
                .unwrap_or(0),
            "live pool.{family} must agree with the polled stats"
        );
    }
}

fn workload_config() -> impl Strategy<Value = CustomerConfig> {
    (1usize..200, 0usize..3, 0u64..1_000).prop_map(|(tuples, rate_idx, seed)| CustomerConfig {
        tuples,
        error_rate: [0.0, 0.05, 0.25][rate_idx],
        seed,
        cities_per_country: 8,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Instrumentation only observes: detection reports, discovered
    /// dependency sets and repair outcomes are byte-identical (same
    /// `Debug` rendering, same values) with the recorder on and off.
    /// Wall-clock fields (`level_ms`) are timings, not outputs, and are
    /// excluded.
    #[test]
    fn outputs_are_byte_identical_with_instrumentation_on_and_off(config in workload_config()) {
        use dq_discovery::prelude::*;
        use dq_repair::prelude::*;

        let _session = RecorderSession::begin();
        let workload = generate_customers(&config);
        let cfds = paper_cfds();
        let fd_cfg = FdDiscoveryConfig {
            max_lhs: 2,
            max_g3: 0.0,
            exclude: vec![],
            use_interned: true,
            threads: 2,
        };
        let cfd_cfg = CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            use_interned: true,
            threads: 2,
            ..CfdDiscoveryConfig::default()
        };

        let mut runs = Vec::new();
        for enabled in [false, true] {
            dq_obs::set_enabled(enabled);
            dq_obs::recorder().reset();
            let report = DetectionEngine::new().detect_cfd_violations(&workload.dirty, &cfds);
            let fds = discover_fds(&workload.dirty, &fd_cfg);
            let mined = discover_cfds(&workload.dirty, &cfd_cfg);
            let outcome = repair_cfd_violations(
                &workload.dirty,
                &cfds,
                &RepairCost::uniform(),
                &RepairConfig::default(),
            )
            .expect("consistent rule set");
            // The repaired instance renders as its row contents: the
            // derived `Debug` includes `instance_id`, a fresh global
            // counter value per clone, which is an identity, not an
            // output.
            let repaired_rows: Vec<_> = outcome
                .repaired
                .ids()
                .iter()
                .map(|&id| outcome.repaired.tuple(id).expect("live").clone())
                .collect();
            runs.push((
                format!("{report:?}"),
                format!("{:?}/{}/{}", fds.fds, fds.candidates_checked, fds.partitions_built),
                format!(
                    "{:?}/{:?}/{}",
                    mined.variable_cfds, mined.constant_cfds, mined.candidates_checked
                ),
                format!(
                    "{repaired_rows:?}/{:?}/{}/{}",
                    outcome.log, outcome.consistent, outcome.rounds
                ),
            ));
        }
        let on = runs.pop().expect("instrumented run");
        let off = runs.pop().expect("uninstrumented run");
        prop_assert_eq!(&off.0, &on.0, "detection report changed under instrumentation");
        prop_assert_eq!(&off.1, &on.1, "FD discovery changed under instrumentation");
        prop_assert_eq!(&off.2, &on.2, "CFD discovery changed under instrumentation");
        prop_assert_eq!(&off.3, &on.3, "repair outcome changed under instrumentation");
    }
}
