//! Cross-validation of the syntactic machinery against semantic oracles:
//! inference rules vs. implication, implication algorithms vs. brute force,
//! detection vs. satisfaction.

use dataquality::prelude::*;
use dq_relation::{Domain, RelationSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "r",
        [
            ("A", Domain::Text),
            ("B", Domain::Text),
            ("C", Domain::Text),
            ("D", Domain::Text),
        ],
    ))
}

/// Generates a random normalized CFD over the 4-attribute text schema, with
/// constants drawn from a 2-element pool so interactions actually happen.
fn random_cfd(rng: &mut StdRng, schema: &Arc<RelationSchema>) -> Cfd {
    let attrs = [0usize, 1, 2, 3];
    let lhs_len = rng.gen_range(1..=2);
    let mut lhs: Vec<usize> = attrs.to_vec();
    // Knuth shuffle prefix.
    for i in 0..attrs.len() {
        let j = rng.gen_range(i..attrs.len());
        lhs.swap(i, j);
    }
    let rhs = vec![lhs[lhs_len]];
    let lhs = lhs[..lhs_len].to_vec();
    let constants = ["c0", "c1"];
    let lhs_pattern = lhs
        .iter()
        .map(|_| {
            if rng.gen_bool(0.5) {
                cst(constants[rng.gen_range(0..2)])
            } else {
                wild()
            }
        })
        .collect();
    let rhs_pattern = vec![if rng.gen_bool(0.5) {
        cst(constants[rng.gen_range(0..2)])
    } else {
        wild()
    }];
    Cfd::from_indices(
        schema,
        lhs,
        rhs,
        vec![PatternTuple::new(lhs_pattern, rhs_pattern)],
    )
    .unwrap()
}

/// Every CFD derived by one round of the inference rules is semantically
/// implied (soundness of the axioms, Theorem 4.6 exercised).
#[test]
fn cfd_inference_rules_are_sound_on_random_sets() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..20 {
        let sigma: Vec<Cfd> = (0..3).map(|_| random_cfd(&mut rng, &schema)).collect();
        let derived = derive_cfds_once(&schema, &sigma);
        for d in &derived {
            assert!(
                cfd_implies_exact(&sigma, &d.cfd),
                "unsound derivation {:?} from {:?}",
                d.cfd.to_string(),
                sigma.iter().map(|c| c.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

/// The quadratic closure-based implication agrees with the exact
/// counterexample search on schemas without finite-domain attributes
/// (Theorem 4.3), and never claims an implication the exact check refutes.
#[test]
fn closure_implication_agrees_with_exact_on_infinite_domains() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(7);
    let mut checked = 0;
    for _ in 0..40 {
        let sigma: Vec<Cfd> = (0..3).map(|_| random_cfd(&mut rng, &schema)).collect();
        let phi = random_cfd(&mut rng, &schema);
        let fast = cfd_implies_closure(&sigma, &phi);
        let exact = cfd_implies_exact(&sigma, &phi);
        assert_eq!(
            fast,
            exact,
            "disagreement on {} vs {:?}",
            phi,
            sigma.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
        checked += 1;
    }
    assert_eq!(checked, 40);
}

/// Consistency: the exact witness search and the propagation fixpoint agree
/// on schemas without finite-domain attributes.
#[test]
fn consistency_checks_agree_without_finite_domains() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..40 {
        let sigma: Vec<Cfd> = (0..4).map(|_| random_cfd(&mut rng, &schema)).collect();
        assert_eq!(
            cfd_set_consistent(&sigma).consistent,
            cfd_set_consistent_propagation(&sigma),
            "disagreement on {:?}",
            sigma.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }
}

/// A consistency witness really satisfies the dependency set, and detection
/// on a singleton instance built from it reports no violations.
#[test]
fn consistency_witnesses_validate_against_detection() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..30 {
        let sigma: Vec<Cfd> = (0..4).map(|_| random_cfd(&mut rng, &schema)).collect();
        let result = cfd_set_consistent(&sigma);
        if let Some(witness) = result.witness_tuple() {
            let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
            inst.insert(witness.clone()).unwrap();
            assert!(detect_cfd_violations(&inst, &sigma).is_clean());
        }
    }
}

/// MD implication is reflexive, monotone under premise strengthening, and
/// closed under the minimal cover.
#[test]
fn md_implication_sanity_on_the_paper_rules() {
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let sigma = example_3_1_mds(&card, &billing);
    for md in &sigma {
        assert!(md_implies(&sigma, md));
    }
    let cover = md_minimal_cover(&sigma);
    for md in &sigma {
        assert!(md_implies(&cover, md));
    }
    assert!(cover.len() <= sigma.len());
}

/// FD implication via closure agrees with CFD implication on the embedded
/// all-wildcard dependencies.
#[test]
fn fd_and_cfd_implication_agree_on_traditional_dependencies() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..30 {
        let fds: Vec<Fd> = (0..3)
            .map(|_| {
                let a = rng.gen_range(0..4usize);
                let mut b = rng.gen_range(0..4usize);
                if b == a {
                    b = (b + 1) % 4;
                }
                Fd::from_indices(&schema, vec![a], vec![b])
            })
            .collect();
        let target = {
            let a = rng.gen_range(0..4usize);
            let mut b = rng.gen_range(0..4usize);
            if b == a {
                b = (b + 1) % 4;
            }
            Fd::from_indices(&schema, vec![a], vec![b])
        };
        let as_cfds: Vec<Cfd> = fds.iter().map(Cfd::from_fd).collect();
        assert_eq!(
            fd_implies(&fds, &target),
            cfd_implies_closure(&as_cfds, &Cfd::from_fd(&target)),
        );
    }
}

/// Detection and satisfaction are two views of the same semantics: an
/// instance satisfies a CFD iff the detector finds nothing.
#[test]
fn detection_agrees_with_satisfaction_on_random_instances() {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(23);
    let values = ["c0", "c1", "c2"];
    for _ in 0..20 {
        let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
        for _ in 0..rng.gen_range(2..10) {
            inst.insert_values([
                Value::str(values[rng.gen_range(0..3)]),
                Value::str(values[rng.gen_range(0..3)]),
                Value::str(values[rng.gen_range(0..3)]),
                Value::str(values[rng.gen_range(0..3)]),
            ])
            .unwrap();
        }
        let cfd = random_cfd(&mut rng, &schema);
        assert_eq!(cfd.holds_on(&inst), cfd.violations(&inst).is_empty());
    }
}
