//! Property-based tests for the discovery, cleaning, aggregate-range and
//! c-table subsystems: invariants that must hold for arbitrary small
//! instances, not just for the curated workloads.

use dataquality::prelude::*;
use dq_relation::{CompOp, Domain, RelationInstance, RelationSchema, Tuple, Value};
use dq_repair::numeric::{repair_numeric_violations, NumericRepairConfig};
use dq_repr::ctable::CTable;
use proptest::prelude::*;
use std::sync::Arc;

fn three_col_schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "r",
        [("A", Domain::Text), ("B", Domain::Text), ("C", Domain::Int)],
    ))
}

fn instance_from_rows(rows: Vec<(String, String, i64)>) -> RelationInstance {
    let mut inst = RelationInstance::new(three_col_schema());
    for (a, b, c) in rows {
        inst.insert(Tuple::new(vec![
            Value::str(a),
            Value::str(b),
            Value::int(c),
        ]))
        .unwrap();
    }
    inst
}

fn small_rows() -> impl Strategy<Value = Vec<(String, String, i64)>> {
    proptest::collection::vec(("[a-c]{1}", "[p-r]{1}", 0i64..4), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partition product equals the directly built partition, and the error
    /// measure is monotone under refinement (adding attributes can only
    /// lower or keep the error).
    #[test]
    fn partition_product_and_monotonicity(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let pa = StrippedPartition::build(&inst, &[0]);
        let pb = StrippedPartition::build(&inst, &[1]);
        let direct = StrippedPartition::build(&inst, &[0, 1]);
        prop_assert_eq!(pa.product(&pb), direct.clone());
        prop_assert_eq!(pb.product(&pa), direct.clone());
        prop_assert!(direct.error() <= pa.error());
        prop_assert!(direct.error() <= pb.error());
    }

    /// `g3 = 0` exactly when the FD holds, and `g1 = 0` exactly when `g3 = 0`.
    #[test]
    fn error_measures_agree_on_satisfaction(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let fd = Fd::new(&three_col_schema(), &["A"], &["B"]);
        let holds = fd.holds_on(&inst);
        prop_assert_eq!(g3_error(&inst, &[0], &[1]) == 0.0, holds);
        prop_assert_eq!(g1_error(&inst, &[0], &[1]) == 0.0, holds);
    }

    /// Every FD reported by discovery holds on the instance, and every
    /// holding single-attribute FD is reported (completeness at level 1).
    #[test]
    fn fd_discovery_sound_and_complete_at_level_one(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let found = discover_fds(&inst, &FdDiscoveryConfig { max_lhs: 2, ..FdDiscoveryConfig::default() });
        for fd in &found.fds {
            prop_assert!(fd.holds_on(&inst), "discovered FD does not hold");
        }
        for lhs in 0..3usize {
            for rhs in 0..3usize {
                if lhs == rhs { continue; }
                let fd = Fd::from_indices(&three_col_schema(), vec![lhs], vec![rhs]);
                if fd.holds_on(&inst) {
                    prop_assert!(
                        found.contains(&[lhs], rhs),
                        "holding FD {lhs} -> {rhs} not discovered"
                    );
                }
            }
        }
    }

    /// Every CFD produced by full discovery holds on the instance it was
    /// mined from (soundness of the mined rule set).
    #[test]
    fn cfd_discovery_is_sound(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let discovered = discover_cfds(&inst, &CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            ..CfdDiscoveryConfig::default()
        });
        let report = detect_cfd_violations(&inst, &discovered.all());
        prop_assert!(report.is_clean(), "{} violations from mined rules", report.total());
    }

    /// Profiling counts are consistent: distinct ≤ tuples, uniqueness ∈ [0,1],
    /// and unary keys really are keys.
    #[test]
    fn profiling_invariants(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let profile = profile_relation(&inst);
        prop_assert_eq!(profile.tuples, inst.len());
        for column in &profile.columns {
            prop_assert!(column.distinct <= profile.tuples.max(1));
            prop_assert!((0.0..=1.0).contains(&column.uniqueness));
        }
        for &key_attr in &profile.unary_keys {
            prop_assert_eq!(inst.active_domain(key_attr).len(), inst.len());
        }
    }

    /// The c-table of the key repairs represents exactly as many worlds as
    /// the WSD, every world satisfies the key, and the certain tuples are
    /// exactly the tuples present in every world.
    #[test]
    fn ctable_represents_key_repairs(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let key = Fd::new(&three_col_schema(), &["A"], &["B", "C"]);
        let ctable = CTable::from_key_repairs(&inst, &key);
        let wsd = WorldSetDecomposition::for_key(&inst, &key);
        prop_assert_eq!(ctable.world_count(), wsd.world_count());
        let worlds = ctable.worlds();
        prop_assert_eq!(worlds.len() as u128, ctable.world_count());
        for world in &worlds {
            prop_assert!(key.holds_on(world));
        }
        let certain = ctable.certain_tuples();
        for t in &certain {
            for world in &worlds {
                prop_assert!(world.iter().any(|(_, wt)| wt.values() == t.as_slice()));
            }
        }
    }

    /// Aggregate ranges bound the aggregate of every repair, and collapse to
    /// a point on key-consistent instances.
    #[test]
    fn aggregate_ranges_are_correct_bounds(rows in small_rows()) {
        let inst = instance_from_rows(rows);
        let key = Fd::new(&three_col_schema(), &["A"], &["B", "C"]);
        let ctable = CTable::from_key_repairs(&inst, &key);
        for agg in [AggregateFn::Count, AggregateFn::Sum, AggregateFn::Min, AggregateFn::Max] {
            let range = range_consistent_aggregate(&inst, &[0], agg, 2);
            for world in ctable.worlds() {
                prop_assert!(range.contains(aggregate_on(&world, agg, 2)));
            }
            if key.holds_on(&inst) && !inst.is_empty() {
                prop_assert!(range.is_certain());
            }
        }
    }

    /// Numeric repair of range constraints terminates, satisfies the
    /// constraints it understands, and never moves a value further than the
    /// worst offender's distance to its bound.
    #[test]
    fn numeric_repair_is_minimal_per_cell(values in proptest::collection::vec(-50i64..250, 1..10)) {
        let schema = Arc::new(RelationSchema::new("m", [("x", Domain::Int)]));
        let mut inst = RelationInstance::new(Arc::clone(&schema));
        for v in &values {
            inst.insert(Tuple::new(vec![Value::int(*v)])).unwrap();
        }
        // ¬(x < 0) ∧ ¬(x > 100): clamp into [0, 100].
        let low = DenialConstraint::new("m", 1, vec![DcPredicate::new(DcTerm::attr(0, 0), CompOp::Lt, DcTerm::val(0i64))]);
        let high = DenialConstraint::new("m", 1, vec![DcPredicate::new(DcTerm::attr(0, 0), CompOp::Gt, DcTerm::val(100i64))]);
        let outcome = repair_numeric_violations(&inst, &[low, high], &NumericRepairConfig::default());
        prop_assert!(outcome.consistent);
        let expected_shift: f64 = values
            .iter()
            .map(|&v| if v < 0 { -v as f64 } else if v > 100 { (v - 100) as f64 } else { 0.0 })
            .sum();
        prop_assert!((outcome.total_shift - expected_shift).abs() < 1e-9);
        for (_, t) in outcome.repaired.iter() {
            let x = t.get(0).as_int().unwrap();
            prop_assert!((0..=100).contains(&x));
        }
    }

    /// Fusion from a master with the identity match restores exactly the
    /// differing cells of the fused attributes and nothing else.
    #[test]
    fn fusion_is_idempotent_and_targeted(rows in small_rows(), corrupt in proptest::collection::vec(("[a-c]{1}", 0usize..12), 0..4)) {
        let master_inst = instance_from_rows(rows);
        if master_inst.is_empty() {
            return Ok(());
        }
        let mut dirty = master_inst.clone();
        for (wrong, pos) in corrupt {
            let ids = dirty.ids();
            let id = ids[pos % ids.len()];
            dirty
                .update_cell(dq_relation::instance::CellRef::new(id, 1), Value::str(wrong))
                .unwrap();
        }
        let master = MasterData::new(master_inst.clone());
        let matches: Vec<MasterMatch> = dirty
            .ids()
            .into_iter()
            .map(|id| MasterMatch { dirty: id, master: id })
            .collect();
        let (fused, log) = fuse_from_master(&dirty, &master, &matches, &[1]);
        // Fusing the B attribute restores the master exactly (A and C were
        // never corrupted), and fusing again changes nothing.
        prop_assert!(fused.same_tuples_as(&master_inst));
        let (fused_again, log_again) = fuse_from_master(&fused, &master, &matches, &[1]);
        prop_assert!(fused_again.same_tuples_as(&fused));
        prop_assert_eq!(log_again.change_count(), 0);
        prop_assert!(log.change_count() <= dirty.len());
    }
}
