//! End-to-end reproduction of every worked example of the paper, exercised
//! through the public facade crate.

use dataquality::prelude::*;
use dq_relation::{Domain, RelationSchema, TupleId, Value};
use std::sync::Arc;

/// Fig. 1 + Fig. 2 + Section 2.1: D0 satisfies f1, f2 but every tuple
/// violates one of ϕ1–ϕ3, with exactly the violations described in the text.
#[test]
fn figures_1_and_2_customer_scenario() {
    let d0 = dq_gen::customer::paper_instance();
    let fds = dq_gen::customer::paper_fds();
    let cfds = dq_gen::customer::paper_cfds();

    for fd in &fds {
        assert!(fd.holds_on(&d0), "D0 must satisfy {fd}");
    }
    // ϕ3 (= f2) is satisfied; ϕ1 and ϕ2 are violated.
    assert!(cfds[2].holds_on(&d0));
    assert!(!cfds[0].holds_on(&d0));
    assert!(!cfds[1].holds_on(&d0));

    // t1, t2 violate ϕ1 as a pair (same UK zip, different street).
    let v1 = cfds[0].violations(&d0);
    assert_eq!(v1.len(), 1);
    assert_eq!(v1[0].tuples(), vec![TupleId(0), TupleId(1)]);

    // Each of t1, t2 violates the (44, 131, _ ‖ _, EDI, _) pattern of ϕ2 and
    // t3 violates the (01, 908, _ ‖ _, MH, _) pattern — single-tuple
    // violations, three in total.
    let v2 = cfds[1].violations(&d0);
    assert_eq!(v2.len(), 3);
    assert!(v2
        .iter()
        .all(|v| matches!(v, CfdViolation::SingleTuple { .. })));

    // Overall: every tuple of D0 is dirty.
    let report = detect_cfd_violations(&d0, &cfds);
    assert_eq!(
        report.violating_tuples(),
        vec![TupleId(0), TupleId(1), TupleId(2)]
    );
}

/// Fig. 3 + Fig. 4 + Section 2.2: D1 satisfies cind1, cind2 and violates
/// cind3 through the audio-book tuple t9.
#[test]
fn figures_3_and_4_order_scenario() {
    let db = dq_gen::orders::paper_database();
    let cinds = dq_gen::orders::paper_cinds();
    assert!(cinds[0].holds_on(&db).unwrap());
    assert!(cinds[1].holds_on(&db).unwrap());
    let violations = cinds[2].violations(&db).unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].tuple, TupleId(1)); // t9, the second CD tuple

    // The plain INDs of Section 2.2 "do not make sense": the unconditional
    // version of cind1 is violated by the CD order.
    let order = dq_gen::orders::order_schema();
    let book = dq_gen::orders::book_schema();
    let plain = Ind::new(&order, &["asin"], &book, &["isbn"]).unwrap();
    assert!(!plain.holds_on(&db).unwrap());
}

/// Section 2.3: the eCFDs over New York customers.
#[test]
fn section_2_3_ecfds() {
    let schema = Arc::new(RelationSchema::new(
        "nycust",
        [("CT", Domain::Text), ("AC", Domain::Int)],
    ));
    let ecfd1 = Ecfd::new(
        &schema,
        &["CT"],
        &["AC"],
        vec![EcfdPattern::new(
            vec![SetPattern::not_in(["NYC", "LI"])],
            vec![SetPattern::any()],
        )],
    )
    .unwrap();
    let ecfd2 = Ecfd::new(
        &schema,
        &["CT"],
        &["AC"],
        vec![EcfdPattern::new(
            vec![SetPattern::in_set(["NYC"])],
            vec![SetPattern::in_set([212i64, 718, 646, 347, 917])],
        )],
    )
    .unwrap();
    let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
    for (ct, ac) in [
        ("NYC", 212),
        ("NYC", 718),
        ("Albany", 518),
        ("Buffalo", 716),
    ] {
        inst.insert_values([Value::str(ct), Value::int(ac)])
            .unwrap();
    }
    assert!(ecfd1.holds_on(&inst));
    assert!(ecfd2.holds_on(&inst));
    // A sixth NYC area code violates ecfd2; a second Albany code violates ecfd1.
    inst.insert_values([Value::str("NYC"), Value::int(518)])
        .unwrap();
    inst.insert_values([Value::str("Albany"), Value::int(212)])
        .unwrap();
    assert!(!ecfd2.holds_on(&inst));
    assert!(!ecfd1.holds_on(&inst));
    // The eCFD set itself is consistent.
    assert!(ecfd_set_consistent(&[ecfd1, ecfd2]).consistent);
}

/// Examples 3.1, 3.2 and 4.3: the fraud-detection MDs imply the three
/// relative keys, which in turn drive object identification.
#[test]
fn examples_3_1_3_2_and_4_3_matching() {
    let card = dq_gen::cards::card_schema();
    let billing = dq_gen::cards::billing_schema();
    let sigma = example_3_1_mds(&card, &billing);
    let yc = dq_match::paper::YC;
    let yb = dq_match::paper::YB;

    let rcks: Vec<RelativeKey> = [
        vec![
            ("email", "email", SimilarityOp::Equality),
            ("addr", "post", SimilarityOp::Equality),
        ],
        vec![
            ("LN", "SN", SimilarityOp::Equality),
            ("tel", "phn", SimilarityOp::Equality),
            ("FN", "FN", SimilarityOp::edit(3)),
        ],
        vec![
            ("LN", "SN", SimilarityOp::Equality),
            ("addr", "post", SimilarityOp::Equality),
            ("FN", "FN", SimilarityOp::edit(3)),
        ],
    ]
    .into_iter()
    .map(|cmp| RelativeKey::new(&card, &billing, cmp, &yc, &yb).unwrap())
    .collect();

    for (i, rck) in rcks.iter().enumerate() {
        assert!(md_implies(&sigma, rck.md()), "rck{} must be implied", i + 1);
        assert!(rck.md().is_relative_key());
    }

    // Using the derived keys as matching rules identifies every true pair
    // even though first names are abbreviated and phone numbers differ: the
    // email/address key (rck1) covers the pairs the edit-distance rule
    // cannot, and vice versa.
    let workload = dq_gen::cards::generate_cards(&dq_gen::cards::CardConfig {
        holders: 300,
        billing_rate: 1.0,
        abbreviate_rate: 1.0,
        phone_change_rate: 1.0,
        email_change_rate: 0.0,
        distractors: 30,
        seed: 5,
    });
    let matcher = Matcher::new(rcks.clone());
    let (_, quality) = matcher.evaluate(&workload.card, &workload.billing, &workload.truth);
    assert_eq!(quality.recall, 1.0);
    assert_eq!(quality.precision, 1.0);

    // Without rck1 (i.e. without the rule derived from φ2), the same rules
    // miss the pairs whose first names were abbreviated beyond the edit
    // threshold — derived rules genuinely add recall.
    let weaker = Matcher::new(rcks[1..].to_vec());
    let (_, weaker_quality) = weaker.evaluate(&workload.card, &workload.billing, &workload.truth);
    assert!(weaker_quality.recall < quality.recall);
}

/// Example 4.1: the boolean-domain CFD pair is unsatisfiable.
#[test]
fn example_4_1_inconsistent_cfds() {
    let schema = Arc::new(RelationSchema::new(
        "r",
        [("A", Domain::Bool), ("B", Domain::Text)],
    ));
    let psi1 = Cfd::new(
        &schema,
        &["A"],
        &["B"],
        vec![
            PatternTuple::new(vec![cst(true)], vec![cst("b1")]),
            PatternTuple::new(vec![cst(false)], vec![cst("b2")]),
        ],
    )
    .unwrap();
    let psi2 = Cfd::new(
        &schema,
        &["B"],
        &["A"],
        vec![
            PatternTuple::new(vec![cst("b1")], vec![cst(false)]),
            PatternTuple::new(vec![cst("b2")], vec![cst(true)]),
        ],
    )
    .unwrap();
    assert!(!cfd_set_consistent(&[psi1.clone(), psi2.clone()]).consistent);
    // Dropping either CFD restores consistency.
    assert!(cfd_set_consistent(&[psi1]).consistent);
    assert!(cfd_set_consistent(&[psi2]).consistent);
}

/// Example 5.1: D_n has 2^n repairs under a single key.
#[test]
fn example_5_1_exponential_repairs() {
    for n in [1usize, 3, 5, 8] {
        let (instance, constraints) = example_5_1_instance(n);
        assert_eq!(instance.len(), 2 * n);
        assert_eq!(count_repairs(&instance, &constraints), 1 << n);
    }
}

/// Section 5.2: certain answers computed by rewriting coincide with the
/// repair-enumeration oracle on the paper-style key-violation scenario.
#[test]
fn section_5_2_certain_answers() {
    let schema = Arc::new(RelationSchema::new(
        "emp",
        [("name", Domain::Text), ("dept", Domain::Text)],
    ));
    let mut inst = dq_relation::RelationInstance::new(Arc::clone(&schema));
    for (n, d) in [("ann", "cs"), ("ann", "ee"), ("bob", "cs")] {
        inst.insert_values([Value::str(n), Value::str(d)]).unwrap();
    }
    let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["name"], &["dept"]));
    let db = single_relation_db(inst.clone());
    let keys = vec![KeySpec::new("emp", vec![0])];
    let query = dq_relation::ConjunctiveQuery::new(
        vec!["n", "d"],
        vec![dq_relation::Atom::new(
            "emp",
            vec![dq_relation::Term::var("n"), dq_relation::Term::var("d")],
        )],
        vec![],
    );
    let slow = certain_answers_oracle(&db, "emp", &constraints, &query).unwrap();
    let fast = certain_answers_rewriting(&db, &keys, &query).unwrap();
    assert_eq!(slow, fast);
    assert_eq!(fast.len(), 1);

    // Section 5.3: the nucleus returns the same certain answers.
    let nucleus = nucleus_for_fd(&inst, &Fd::new(&schema, &["name"], &["dept"]));
    assert_eq!(evaluate_on_nucleus(&nucleus, "emp", &query), fast);
}
