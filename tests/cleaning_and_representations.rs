//! Cross-crate integration of the unified cleaning pipeline (repair + object
//! identification with master data, Sections 5.1/6) and of the condensed
//! representations and aggregate-range machinery (Sections 5.2/5.3).

use dataquality::prelude::*;
use dq_gen::customer::{customer_schema, paper_cfds};
use dq_gen::master::{generate_master_workload, MasterConfig};
use dq_relation::{Domain, RelationInstance, RelationSchema, TupleId, Value};
use dq_repair::numeric::{repair_numeric_violations, NumericRepairConfig};
use dq_repr::ctable::CTable;
use std::sync::Arc;

fn master_rules() -> Vec<RelativeKey> {
    let schema = customer_schema();
    vec![RelativeKey::new(
        &schema,
        &schema,
        vec![
            ("phn", "phn", SimilarityOp::Equality),
            ("name", "name", SimilarityOp::edit(12)),
        ],
        &["street", "city", "zip"],
        &["street", "city", "zip"],
    )
    .expect("well-formed relative key")]
}

fn fusion_attrs() -> Vec<usize> {
    let s = customer_schema();
    vec![s.attr("street"), s.attr("city"), s.attr("zip")]
}

#[test]
fn unified_cleaning_beats_blind_repair_across_error_rates() {
    for &error_rate in &[0.1, 0.3] {
        let w = generate_master_workload(&MasterConfig {
            entities: 400,
            error_rate,
            name_variation_rate: 0.5,
            seed: 17,
        });
        let unified = CleaningPipeline::with_master(
            paper_cfds(),
            MasterData::new(w.master.clone()),
            master_rules(),
            fusion_attrs(),
        )
        .run(&w.dirty)
        .expect("consistent rule set");
        let blind = CleaningPipeline::repair_only(paper_cfds())
            .run(&w.dirty)
            .expect("consistent rule set");
        let q_unified = score_repair(&w.clean, &w.dirty, &unified.cleaned);
        let q_blind = score_repair(&w.clean, &w.dirty, &blind.cleaned);
        assert!(unified.consistent);
        assert!(
            q_unified.f1 > q_blind.f1,
            "error rate {error_rate}: unified {q_unified:?} must beat blind {q_blind:?}"
        );
        assert!(
            q_unified.recall > 0.95,
            "master data covers the corrupted attributes"
        );
    }
}

#[test]
fn pipeline_without_matching_rules_degenerates_to_blind_repair() {
    let w = generate_master_workload(&MasterConfig {
        entities: 200,
        error_rate: 0.2,
        name_variation_rate: 0.4,
        seed: 23,
    });
    let no_rules = CleaningPipeline::with_master(
        paper_cfds(),
        MasterData::new(w.master.clone()),
        Vec::new(),
        fusion_attrs(),
    )
    .run(&w.dirty)
    .expect("consistent rule set");
    let blind = CleaningPipeline::repair_only(paper_cfds())
        .run(&w.dirty)
        .expect("consistent rule set");
    assert_eq!(no_rules.master_matches, 0);
    assert_eq!(no_rules.fusion_changes, 0);
    assert!(no_rules.cleaned.same_tuples_as(&blind.cleaned));
}

#[test]
fn ctable_worlds_agree_with_wsd_and_enumeration() {
    // A small key-violating instance; the c-table, the WSD and the explicit
    // repair enumeration must represent the same set of repairs.
    let schema = Arc::new(RelationSchema::new(
        "r",
        [("a", Domain::Text), ("b", Domain::Int)],
    ));
    let mut inst = RelationInstance::new(Arc::clone(&schema));
    for (a, b) in [("x", 1), ("x", 2), ("y", 7), ("z", 3), ("z", 4), ("z", 5)] {
        inst.insert_values([Value::str(a), Value::int(b)]).unwrap();
    }
    let key = Fd::new(&schema, &["a"], &["b"]);
    let ctable = CTable::from_key_repairs(&inst, &key);
    let wsd = WorldSetDecomposition::for_key(&inst, &key);
    assert_eq!(ctable.world_count(), wsd.world_count());
    assert_eq!(ctable.world_count(), 6);

    let constraints = DenialConstraint::from_fd(&key);
    let repairs = enumerate_repairs(&inst, &constraints);
    assert_eq!(repairs.len() as u128, ctable.world_count());
    // Every c-table world is one of the enumerated repairs.
    for world in ctable.worlds() {
        assert!(
            repairs.iter().any(|r| r.same_tuples_as(&world)),
            "c-table world not found among the enumerated repairs"
        );
    }
}

#[test]
fn aggregate_ranges_bound_every_repair_of_the_ctable() {
    let schema = Arc::new(RelationSchema::new(
        "salary",
        [("emp", Domain::Text), ("amount", Domain::Int)],
    ));
    let mut inst = RelationInstance::new(Arc::clone(&schema));
    for (e, a) in [
        ("ann", 10),
        ("ann", 25),
        ("bob", 5),
        ("eve", 3),
        ("eve", 30),
    ] {
        inst.insert_values([Value::str(e), Value::int(a)]).unwrap();
    }
    let key = Fd::new(&schema, &["emp"], &["amount"]);
    let ctable = CTable::from_key_repairs(&inst, &key);
    for agg in [
        AggregateFn::Sum,
        AggregateFn::Min,
        AggregateFn::Max,
        AggregateFn::Count,
    ] {
        let range = range_consistent_aggregate(&inst, &[0], agg, 1);
        for world in ctable.worlds() {
            let value = aggregate_on(&world, agg, 1);
            assert!(
                range.contains(value),
                "{agg:?} = {value} outside [{}, {}]",
                range.lower,
                range.upper
            );
        }
    }
}

#[test]
fn numeric_repair_composes_with_cfd_repair() {
    // A relation with both a CFD-style error (wrong city constant) and a
    // numeric range error; the two repair algorithms fix their own classes
    // and compose to a fully consistent instance.
    let schema = Arc::new(RelationSchema::new(
        "emp",
        [
            ("dept", Domain::Text),
            ("site", Domain::Text),
            ("age", Domain::Int),
        ],
    ));
    let mut inst = RelationInstance::new(Arc::clone(&schema));
    inst.insert_values([Value::str("db"), Value::str("EDI"), Value::int(44)])
        .unwrap();
    inst.insert_values([Value::str("db"), Value::str("NYC"), Value::int(220)])
        .unwrap();
    inst.insert_values([Value::str("ml"), Value::str("SF"), Value::int(31)])
        .unwrap();

    // dept = db → site = EDI.
    let cfd = Cfd::new(
        &schema,
        &["dept"],
        &["site"],
        vec![PatternTuple::new(vec![cst("db")], vec![cst("EDI")])],
    )
    .unwrap();
    // ¬(age > 150).
    let dc = DenialConstraint::new(
        "emp",
        1,
        vec![DcPredicate::new(
            DcTerm::attr(0, 2),
            dq_relation::CompOp::Gt,
            DcTerm::val(150i64),
        )],
    );

    let after_cfd = repair_cfd_violations(
        &inst,
        std::slice::from_ref(&cfd),
        &RepairCost::uniform(),
        &RepairConfig::default(),
    )
    .expect("consistent rule set");
    assert!(after_cfd.consistent);
    let after_numeric = repair_numeric_violations(
        &after_cfd.repaired,
        std::slice::from_ref(&dc),
        &NumericRepairConfig::default(),
    );
    assert!(after_numeric.consistent);
    assert!(cfd.holds_on(&after_numeric.repaired));
    assert!(dc.holds_on(&after_numeric.repaired));
    assert_eq!(
        after_numeric
            .repaired
            .tuple(TupleId(1))
            .unwrap()
            .get(2)
            .as_int(),
        Some(150)
    );
}
