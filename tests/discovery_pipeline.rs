//! Cross-crate integration of dependency discovery with the rest of the
//! stack: profile a trusted sample, mine CFDs/CINDs from it, and use the
//! mined rules to detect and repair errors in a dirty instance of the same
//! source — the "profiling methods … for deducing and discovering rules for
//! cleaning the data" claim of Section 1, end to end.

use dataquality::prelude::*;
use dq_core::ind::Ind;
use dq_gen::customer::{customer_schema, generate_customers, CustomerConfig, CustomerWorkload};
use dq_gen::orders::{generate_orders, OrderConfig};

/// Configuration shared by the tests: a clean sample and a dirty instance
/// drawn from the same generator (same seed), so the mined rules are exactly
/// the regularities the dirty instance ought to satisfy.
fn sample_and_dirty(tuples: usize, seed: u64) -> (CustomerWorkload, CustomerWorkload) {
    let clean = generate_customers(&CustomerConfig {
        tuples,
        error_rate: 0.0,
        seed,
        ..Default::default()
    });
    let dirty = generate_customers(&CustomerConfig {
        tuples,
        error_rate: 0.05,
        seed,
        ..Default::default()
    });
    (clean, dirty)
}

fn discovery_config() -> CfdDiscoveryConfig {
    let schema = customer_schema();
    CfdDiscoveryConfig {
        min_support: 4,
        max_lhs: 2,
        exclude: vec![schema.attr("phn"), schema.attr("name")],
        ..CfdDiscoveryConfig::default()
    }
}

#[test]
fn profiling_identifies_keys_and_categories_of_the_customer_schema() {
    let (clean, _) = sample_and_dirty(1_500, 5);
    let profile = profile_relation(&clean.clean);
    let schema = customer_schema();
    // Phone numbers are generated unique: a key column.
    assert!(profile.unary_keys.contains(&schema.attr("phn")));
    // Country codes and cities are categorical.
    let categorical = profile.categorical_attributes(16);
    assert!(categorical.contains(&schema.attr("CC")));
    assert!(categorical.contains(&schema.attr("city")));
    // Street/zip are neither keys nor categorical at this size.
    assert!(!profile.unary_keys.contains(&schema.attr("street")));
}

#[test]
fn mined_cfds_hold_on_the_sample_and_flag_injected_errors() {
    let (clean, dirty) = sample_and_dirty(2_000, 5);
    let discovered = discover_cfds(&clean.clean, &discovery_config());
    assert!(
        discovered.len() >= 5,
        "the customer generator has rich structure; expected a handful of rules, got {}",
        discovered.len()
    );
    // Soundness on the training sample.
    assert!(detect_cfd_violations(&clean.clean, &discovered.all()).is_clean());
    // The mined rules flag the dirty instance.
    let report = detect_cfd_violations(&dirty.dirty, &discovered.all());
    assert!(!report.is_clean());
    // Every corrupted tuple that broke a city/street regularity is among the
    // flagged tuples (the converse need not hold: an FD violation flags both
    // tuples of the pair).
    let flagged = report.violating_tuples();
    let corrupted_city_tuples: Vec<_> = dirty
        .corrupted_cells
        .iter()
        .filter(|(_, attr)| *attr == customer_schema().attr("city"))
        .map(|(i, _)| dq_relation::TupleId(*i))
        .collect();
    let caught = corrupted_city_tuples
        .iter()
        .filter(|id| flagged.contains(id))
        .count();
    assert!(
        caught * 2 >= corrupted_city_tuples.len(),
        "mined rules should catch most corrupted cities: {caught}/{}",
        corrupted_city_tuples.len()
    );
}

#[test]
fn mined_rules_feed_the_repair_algorithm() {
    let (clean, dirty) = sample_and_dirty(1_200, 9);
    let discovered = discover_cfds(&clean.clean, &discovery_config());
    // Constant CFDs alone are already repairable rules: run the heuristic
    // U-repair with the mined constants and verify it terminates consistent.
    let outcome = repair_cfd_violations(
        &dirty.dirty,
        &discovered.constant_cfds,
        &RepairCost::uniform(),
        &RepairConfig::default(),
    )
    .expect("consistent rule set");
    assert!(outcome.consistent);
    assert!(detect_cfd_violations(&outcome.repaired, &discovered.constant_cfds).is_clean());
}

#[test]
fn discovered_paper_constants_match_the_known_semantics() {
    let (clean, _) = sample_and_dirty(2_000, 5);
    let schema = customer_schema();
    let discovered = discover_constant_cfds(&clean.clean, &discovery_config());
    // The generator enforces (CC=44, AC=131) → city=EDI; with AC → city being
    // functional, discovery reports the minimal single-attribute condition
    // AC=131 → city=EDI.
    let ac = schema.attr("AC");
    let city = schema.attr("city");
    let found = discovered.iter().any(|cfd| {
        cfd.lhs() == [ac]
            && cfd.rhs() == [city]
            && cfd.tableau().iter().any(|tp| {
                tp.lhs == [PatternValue::Const(Value::int(131))]
                    && tp.rhs == [PatternValue::Const(Value::str("EDI"))]
            })
    });
    assert!(
        found,
        "expected AC=131 → city=EDI among {} constant CFDs",
        discovered.len()
    );
}

#[test]
fn fd_discovery_recovers_the_generators_functional_structure() {
    let (clean, _) = sample_and_dirty(1_500, 13);
    let schema = customer_schema();
    let found = discover_fds(
        &clean.clean,
        &FdDiscoveryConfig {
            max_lhs: 2,
            exclude: vec![schema.attr("phn"), schema.attr("name")],
            ..FdDiscoveryConfig::default()
        },
    );
    // zip → street holds by construction (street is a function of the zip id
    // and the country prefix makes zips unique across countries).
    assert!(found.contains(&[schema.attr("zip")], schema.attr("street")));
    // AC → city holds by construction.
    assert!(found.contains(&[schema.attr("AC")], schema.attr("city")));
    // Every discovered FD really holds.
    for fd in &found.fds {
        assert!(fd.holds_on(&clean.clean));
    }
}

#[test]
fn cind_condition_discovery_on_the_order_database() {
    let workload = generate_orders(&OrderConfig {
        orders: 400,
        violation_rate: 0.0,
        seed: 3,
    });
    let db = workload.db;
    let order = db.relation("order").unwrap().schema().clone();
    let book = db.relation("book").unwrap().schema().clone();
    let embedded = Ind::new(&order, &["title", "price"], &book, &["title", "price"]).unwrap();
    let config = IndDiscoveryConfig::default();
    let cinds = discover_cind_conditions(&db, &embedded, &config).unwrap();
    // The order table mixes books, CDs and DVDs, so the inclusion into book
    // can only hold under the `type` condition.
    assert!(
        !cinds.is_empty(),
        "expected at least the type = 'book' condition to be discovered"
    );
    let report = detect_cind_violations(&db, &cinds).unwrap();
    assert!(
        report.is_clean(),
        "discovered CINDs must hold on the database"
    );
}

/// The opt-in minimal-cover post-pass prunes implied fragments without
/// changing what the rules say: the covered set and the full set imply each
/// other, the drop count matches the normalized-fragment arithmetic, and
/// detection (through the vetting entry points) reaches the same clean
/// verdict on the instance the rules were mined from.
#[test]
fn minimal_cover_post_pass_preserves_discovered_semantics() {
    let (clean, dirty) = sample_and_dirty(600, 11);
    let full = discover_cfds(&clean.clean, &discovery_config());
    let covered = discover_cfds(
        &clean.clean,
        &CfdDiscoveryConfig {
            minimal_cover: true,
            ..discovery_config()
        },
    );
    let normalized: usize = full.all().iter().map(|c| c.normalize().len()).sum();
    assert_eq!(covered.cover_dropped, normalized - covered.len());
    for rule in covered.all() {
        assert!(
            cfd_implies(&full.all(), &rule),
            "covered rule {rule} not implied by the full mined set"
        );
    }
    for rule in full.all() {
        assert!(
            cfd_implies(&covered.all(), &rule),
            "full rule {rule} not implied by the cover"
        );
    }
    // Vet the cover and detect through the engine's analyzed entry point:
    // mined rules hold on the sample and flag the dirty instance exactly
    // like the full set does.
    let analyzed = analyze_cfds(&covered.all(), &AnalysisOptions::default())
        .expect("mined rules are consistent");
    let engine = DetectionEngine::new();
    assert!(engine
        .detect_analyzed_cfd_violations(&clean.clean, &analyzed)
        .is_clean());
    assert_eq!(
        engine
            .detect_analyzed_cfd_violations(&dirty.dirty, &analyzed)
            .is_clean(),
        engine
            .detect_cfd_violations(&dirty.dirty, &full.all())
            .is_clean()
    );
}
