//! Equivalence properties of the interned fast paths added for discovery,
//! repair and CQA: partitions derived from CSR postings, pooled-index FD/CFD
//! mining, the engine-carried repair loop and the interned CQA rewriting
//! must all produce results identical to the legacy `Vec<Value>`-keyed
//! implementations — and the append-only `IndexPool` fast path must be
//! invisible except in the pool counters.
//!
//! All cases are generated from seeded strategies (the offline proptest
//! stand-in derives its RNG seed from the test name), so runs are exactly
//! reproducible.

use dataquality::prelude::*;
use dq_cqa::rewrite::certain_answers_rewriting_naive;
use dq_discovery::source::PartitionSource;
use dq_gen::customer::{generate_customers, paper_cfds, CustomerConfig};
use dq_gen::orders::{generate_orders, OrderConfig};
use dq_relation::{CellRef, IndexPool, InternedIndex, RelationInstance, Value};
use dq_repair::urepair::{repair_cfd_violations_naive, repair_cfd_violations_with_engine};
use dq_repair::{RepairConfig, RepairCost};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Workload shapes worth exercising: tiny through few-hundred tuples, clean
/// through heavily corrupted, paper-style through scaled city pools.
fn workload_config() -> impl Strategy<Value = CustomerConfig> {
    (
        1usize..200,
        0usize..4,
        0u64..1_000,
        prop_oneof![3usize..4, 20usize..40],
    )
        .prop_map(
            |(tuples, rate_idx, seed, cities_per_country)| CustomerConfig {
                tuples,
                error_rate: [0.0, 0.01, 0.05, 0.25][rate_idx],
                seed,
                cities_per_country,
            },
        )
}

fn fd_config(use_interned: bool, max_g3: f64) -> FdDiscoveryConfig {
    FdDiscoveryConfig {
        max_lhs: 3,
        max_g3,
        exclude: Vec::new(),
        use_interned,
        threads: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Stripped partitions derived from interned CSR postings — directly,
    /// via products over the reusable probe table, and through the pooled
    /// `PartitionSource` — equal the legacy builds on every attribute set.
    #[test]
    fn interned_partitions_equal_naive_builds(config in workload_config()) {
        let workload = generate_customers(&config);
        let instance = &workload.dirty;
        let pool = Arc::new(IndexPool::new());
        let source = PartitionSource::interned(instance, Arc::clone(&pool), 2);
        let arity = instance.schema().arity();
        let attr_sets: Vec<Vec<usize>> = (0..arity)
            .map(|a| vec![a])
            .chain((0..arity).flat_map(|a| ((a + 1)..arity).map(move |b| vec![a, b])))
            .chain([vec![], vec![0, 1, 2]])
            .collect();
        for attrs in &attr_sets {
            let naive = StrippedPartition::build(instance, attrs);
            let store = instance.columnar();
            let index = InternedIndex::build(instance, &store, attrs, 2);
            prop_assert_eq!(&StrippedPartition::from_interned(&index), &naive, "from_interned {:?}", attrs);
            prop_assert_eq!(&*source.partition(attrs), &naive, "source {:?}", attrs);
        }
        // Products agree with direct builds (π_X · π_Y = π_{X ∪ Y}).
        let pa = source.partition(&[0]);
        let pb = source.partition(&[4]);
        let mut prober = PartitionProber::new();
        prop_assert_eq!(
            pa.product_with(&pb, &mut prober),
            StrippedPartition::build(instance, &[0, 4])
        );
    }

    /// `g3` over pooled interned indexes is bit-identical to the naive
    /// measure for every (LHS, RHS) candidate shape discovery generates.
    #[test]
    fn g3_interned_equals_naive(config in workload_config()) {
        let workload = generate_customers(&config);
        let instance = &workload.dirty;
        let store = instance.columnar();
        let arity = instance.schema().arity();
        for lhs_attr in 0..arity {
            for rhs_attr in 0..arity {
                if lhs_attr == rhs_attr {
                    continue;
                }
                let index = InternedIndex::build(instance, &store, &[lhs_attr], 1);
                prop_assert_eq!(
                    g3_error_interned(&index, instance, &[rhs_attr]),
                    g3_error(instance, &[lhs_attr], &[rhs_attr]),
                    "{} -> {}", lhs_attr, rhs_attr
                );
            }
        }
    }

    /// FD discovery over interned partitions reports exactly the FDs (and
    /// candidate counts) of the naive partition path, exact and approximate.
    #[test]
    fn fd_discovery_interned_equals_naive(config in workload_config()) {
        let workload = generate_customers(&config);
        for max_g3 in [0.0, 0.15] {
            let fast = discover_fds(&workload.dirty, &fd_config(true, max_g3));
            let slow = discover_fds(&workload.dirty, &fd_config(false, max_g3));
            prop_assert_eq!(&fast.fds, &slow.fds, "max_g3 {}", max_g3);
            prop_assert_eq!(fast.candidates_checked, slow.candidates_checked);
        }
    }

    /// Full CFD discovery — exact FDs, mined tableaux and constant patterns
    /// — is identical between the interned and naive mining paths.
    #[test]
    fn cfd_discovery_interned_equals_naive(config in workload_config()) {
        let workload = generate_customers(&config);
        let mk = |use_interned| CfdDiscoveryConfig {
            min_support: 2,
            max_lhs: 2,
            use_interned,
            ..CfdDiscoveryConfig::default()
        };
        let fast = discover_cfds(&workload.dirty, &mk(true));
        let slow = discover_cfds(&workload.dirty, &mk(false));
        prop_assert_eq!(&fast.variable_cfds, &slow.variable_cfds);
        prop_assert_eq!(&fast.constant_cfds, &slow.constant_cfds);
        prop_assert_eq!(fast.candidates_checked, slow.candidates_checked);
    }

    /// The pooled profile equals a from-scratch reference computation.
    #[test]
    fn pooled_profile_equals_reference(config in workload_config()) {
        let workload = generate_customers(&config);
        let instance = &workload.dirty;
        let profile = profile_relation(instance);
        prop_assert_eq!(profile.tuples, instance.len());
        for column in &profile.columns {
            let mut distinct: BTreeSet<Value> = BTreeSet::new();
            let mut nulls = 0usize;
            for (_, tuple) in instance.iter() {
                let v = tuple.get(column.attr);
                if v.is_null() {
                    nulls += 1;
                } else {
                    distinct.insert(v.clone());
                }
            }
            prop_assert_eq!(column.distinct, distinct.len(), "attr {}", column.attr);
            prop_assert_eq!(column.nulls, nulls, "attr {}", column.attr);
            if let Some(inline) = &column.inline_values {
                prop_assert_eq!(inline, &distinct, "attr {}", column.attr);
            }
            let reference_uniqueness = if instance.is_empty() {
                0.0
            } else {
                distinct.len() as f64 / instance.len() as f64
            };
            prop_assert_eq!(column.uniqueness, reference_uniqueness);
        }
        // Binary keys agree with the projection-set definition.
        for &(a, b) in &profile.binary_keys {
            prop_assert_eq!(instance.project_distinct(&[a, b]).len(), instance.len());
        }
    }

    /// The engine-carried repair loop produces a byte-identical outcome to
    /// the legacy loop: same repaired cells, same log (order included),
    /// same cost, rounds and verdict.
    #[test]
    fn engine_repair_equals_naive_repair(config in workload_config()) {
        let workload = generate_customers(&config);
        let cfds = paper_cfds();
        let cost = RepairCost::uniform();
        let repair_config = RepairConfig::default();
        let engine = DetectionEngine::new();
        let fast =
            repair_cfd_violations_with_engine(&workload.dirty, &cfds, &cost, &repair_config, &engine)
                .expect("mined rule sets hold on the instance, hence consistent");
        let slow = repair_cfd_violations_naive(&workload.dirty, &cfds, &cost, &repair_config);
        prop_assert_eq!(fast.consistent, slow.consistent);
        prop_assert_eq!(fast.rounds, slow.rounds);
        prop_assert_eq!(&fast.log.modified, &slow.log.modified);
        prop_assert_eq!(&fast.log.deleted, &slow.log.deleted);
        prop_assert_eq!(fast.log.cost, slow.log.cost);
        for (id, tuple) in slow.repaired.iter() {
            prop_assert_eq!(fast.repaired.tuple(id), Some(tuple));
        }
        prop_assert_eq!(fast.repaired.len(), slow.repaired.len());
    }

    /// Engine detection stays equivalent when the pool serves append-only
    /// extensions: growing an instance between detections must change
    /// nothing but the `appends` counter.
    #[test]
    fn engine_equivalence_survives_append_only_growth(
        config in workload_config(),
        extra in 1usize..20,
    ) {
        let workload = generate_customers(&config);
        let mut instance = workload.dirty;
        let cfds = paper_cfds();
        let engine = DetectionEngine::new();
        let before = engine.detect_cfd_violations(&instance, &cfds);
        prop_assert_eq!(&before, &detect_cfd_violations(&instance, &cfds));
        // Append copies of existing tuples (no new dictionary entries, so
        // the u64 radix codecs stay extendable) plus the growth is real.
        let pool: Vec<_> = instance.iter().map(|(_, t)| t.clone()).collect();
        let donors: Vec<_> = pool.iter().cloned().cycle().take(extra).collect();
        for donor in donors {
            instance.insert(donor).expect("same schema");
        }
        let after = engine.detect_cfd_violations(&instance, &cfds);
        prop_assert_eq!(&after, &detect_cfd_violations(&instance, &cfds));
        prop_assert!(
            engine.pool_stats().appends > 0,
            "append-only growth must take the extension fast path"
        );
    }

    /// The engine's incrementally-maintained CFD violation report tracks
    /// full detection exactly while the instance absorbs random in-domain
    /// cell edits, and the pooled indexes absorb real writes as *patches*
    /// (moved rows), never full rebuilds.
    #[test]
    fn maintained_violations_track_full_detection_under_edits(
        config in workload_config(),
        edits in proptest::collection::vec(
            (0usize..1_000_000, 0usize..1_000_000, 0usize..1_000_000),
            1..10,
        ),
    ) {
        let workload = generate_customers(&config);
        let mut instance = workload.dirty;
        let cfds = paper_cfds();
        let engine = DetectionEngine::new();
        let mut maintained = engine.maintain_cfd_violations(&instance, &cfds, None);
        prop_assert_eq!(maintained.report(), &detect_cfd_violations(&instance, &cfds));
        let ids = instance.ids();
        let arity = instance.schema().arity();
        let mut changed_any = false;
        // Copy a donor tuple's value into a target cell: always in-domain,
        // and often moves the target between LHS groups of some CFD.
        for &(t, a, d) in &edits {
            let target = ids[t % ids.len()];
            let attr = a % arity;
            let value = instance.tuple(ids[d % ids.len()]).expect("live").get(attr).clone();
            changed_any |= instance.tuple(target).expect("live").get(attr) != &value;
            instance
                .update_cell(CellRef::new(target, attr), value)
                .expect("donor values are in-domain");
            maintained = engine.maintain_cfd_violations(&instance, &cfds, Some(&maintained));
            prop_assert_eq!(maintained.report(), &detect_cfd_violations(&instance, &cfds));
        }
        if changed_any {
            prop_assert!(
                engine.pool_stats().patches > 0,
                "cell edits must be served by patching pooled indexes"
            );
        }
    }

    /// Re-running the engine repair loop against a *shared* pool: the
    /// second run reproduces the first byte-for-byte (verdict, rounds, log
    /// order, cost, repaired tuples) and the pool served the fixpoint's
    /// cell writes as patches rather than full rebuilds.
    #[test]
    fn repair_rerun_over_shared_pool_patches_and_agrees(config in workload_config()) {
        let workload = generate_customers(&config);
        let cfds = paper_cfds();
        let cost = RepairCost::uniform();
        let repair_config = RepairConfig::default();
        let engine = DetectionEngine::new();
        let first =
            repair_cfd_violations_with_engine(&workload.dirty, &cfds, &cost, &repair_config, &engine)
                .expect("mined rule sets hold on the instance, hence consistent");
        let second =
            repair_cfd_violations_with_engine(&workload.dirty, &cfds, &cost, &repair_config, &engine)
                .expect("mined rule sets hold on the instance, hence consistent");
        prop_assert_eq!(first.consistent, second.consistent);
        prop_assert_eq!(first.rounds, second.rounds);
        prop_assert_eq!(&first.log.modified, &second.log.modified);
        prop_assert_eq!(&first.log.deleted, &second.log.deleted);
        prop_assert_eq!(first.log.cost, second.log.cost);
        for (id, tuple) in first.repaired.iter() {
            prop_assert_eq!(second.repaired.tuple(id), Some(tuple));
        }
        prop_assert_eq!(first.repaired.len(), second.repaired.len());
        // Value modifications keep the working copy delta-covered, so the
        // re-detection after each round must have been patch-served.
        // (Deletions poison the journal, so only assert on pure-edit runs.)
        if !first.log.modified.is_empty() && first.log.deleted.is_empty() {
            prop_assert!(
                engine.pool_stats().patches > 0,
                "repair-round writes must be served by patching pooled indexes"
            );
        }
    }
}

/// Thread counts the parallel-≡-sequential suites sweep: sequential, a
/// modest fan-out and an oversubscribed one (more workers than this
/// container has cores, so preemption shuffles completion order).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The fanned-out level-wise FD sweep is byte-identical to the
    /// sequential sweep at every thread count, on both partition backends,
    /// exact and approximate — dependencies, candidate counts and
    /// partition tallies included.
    #[test]
    fn parallel_fd_discovery_equals_sequential(config in workload_config()) {
        let workload = generate_customers(&config);
        for use_interned in [false, true] {
            for max_g3 in [0.0, 0.15] {
                let mk = |threads| FdDiscoveryConfig {
                    threads,
                    ..fd_config(use_interned, max_g3)
                };
                let sequential = discover_fds(&workload.dirty, &mk(1));
                for threads in THREAD_COUNTS {
                    let parallel = discover_fds(&workload.dirty, &mk(threads));
                    prop_assert_eq!(
                        &parallel.fds, &sequential.fds,
                        "threads {}, interned {}, max_g3 {}", threads, use_interned, max_g3
                    );
                    prop_assert_eq!(parallel.candidates_checked, sequential.candidates_checked);
                    prop_assert_eq!(parallel.partitions_built, sequential.partitions_built);
                }
            }
        }
    }

    /// Full CFD discovery — exact FDs, mined tableaux and constant
    /// patterns — is byte-identical between the sequential sweep and the
    /// per-level fan-out at every thread count, on both backends.
    #[test]
    fn parallel_cfd_discovery_equals_sequential(config in workload_config()) {
        let workload = generate_customers(&config);
        for use_interned in [false, true] {
            let mk = |threads| CfdDiscoveryConfig {
                min_support: 2,
                max_lhs: 2,
                use_interned,
                threads,
                ..CfdDiscoveryConfig::default()
            };
            let sequential = discover_cfds(&workload.dirty, &mk(1));
            for threads in THREAD_COUNTS {
                let parallel = discover_cfds(&workload.dirty, &mk(threads));
                prop_assert_eq!(
                    &parallel.variable_cfds, &sequential.variable_cfds,
                    "threads {}, interned {}", threads, use_interned
                );
                prop_assert_eq!(&parallel.constant_cfds, &sequential.constant_cfds);
                prop_assert_eq!(parallel.candidates_checked, sequential.candidates_checked);
            }
        }
    }

    /// Tableau mining for one embedded FD — the `(CC, zip) → street` shape
    /// of ϕ1 — accepts the same patterns in the same order at every thread
    /// count (the per-condition-set fan-out merges candidates canonically,
    /// including the `max_tableau` cap).
    #[test]
    fn parallel_tableau_mining_equals_sequential(
        config in workload_config(),
        max_tableau in 1usize..6,
    ) {
        let workload = generate_customers(&config);
        let schema = workload.dirty.schema().clone();
        let fd = Fd::new(&schema, &["CC", "zip"], &["street"]);
        for use_interned in [false, true] {
            let mk = |threads| CfdDiscoveryConfig {
                min_support: 2,
                max_tableau,
                use_interned,
                threads,
                ..CfdDiscoveryConfig::default()
            };
            let sequential = discover_tableau_for_fd(&workload.dirty, &fd, &mk(1));
            for threads in THREAD_COUNTS {
                let parallel = discover_tableau_for_fd(&workload.dirty, &fd, &mk(threads));
                match (&parallel, &sequential) {
                    (Some(p), Some(s)) => {
                        prop_assert_eq!(
                            p.tableau(), s.tableau(),
                            "threads {}, interned {}, cap {}", threads, use_interned, max_tableau
                        );
                    }
                    (None, None) => {}
                    _ => prop_assert!(
                        false,
                        "threads {} disagrees on tableau existence", threads
                    ),
                }
            }
        }
    }

    /// The fanned-out profile (per-column stats and binary-key pairs)
    /// equals the sequential profile at every thread count.
    #[test]
    fn parallel_profile_equals_sequential(config in workload_config()) {
        let workload = generate_customers(&config);
        let pool = Arc::new(IndexPool::new());
        let sequential = profile_relation_with(&workload.dirty, &pool, 1);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(
                &profile_relation_with(&workload.dirty, &pool, threads),
                &sequential,
                "threads {}", threads
            );
        }
    }

    /// A parallel sweep over a *shared* pool stays byte-identical after an
    /// append-only growth round: the pooled indexes extend in place (the
    /// `appends` counter rises) and the concurrent sweep over the extended
    /// indexes reports exactly what a fresh naive sweep reports.
    #[test]
    fn parallel_discovery_survives_append_only_growth(
        config in workload_config(),
        extra in 1usize..20,
    ) {
        let workload = generate_customers(&config);
        let mut instance = workload.dirty;
        let pool = Arc::new(IndexPool::new());
        let parallel_config = FdDiscoveryConfig { threads: 4, ..fd_config(true, 0.0) };
        let before = discover_fds_with_pool(&instance, &parallel_config, &pool);
        prop_assert_eq!(
            &before.fds,
            &discover_fds(&instance, &fd_config(false, 0.0)).fds
        );
        // Append copies of existing tuples (no new dictionary entries, so
        // the u64 radix codecs stay extendable) plus the growth is real.
        let donors: Vec<_> = instance.iter().map(|(_, t)| t.clone()).collect();
        for donor in donors.iter().cloned().cycle().take(extra) {
            instance.insert(donor.clone()).expect("same schema");
        }
        let after = discover_fds_with_pool(&instance, &parallel_config, &pool);
        prop_assert_eq!(
            &after.fds,
            &discover_fds(&instance, &fd_config(false, 0.0)).fds
        );
        prop_assert!(
            pool.stats().appends > 0,
            "append-only growth must take the extension fast path"
        );
    }
}

/// Workload shapes for the IND/CIND suites: the order/book/CD database at
/// various sizes, violation rates and seeds, optionally with null LHS cells
/// injected into `order.title`.
fn order_config() -> impl Strategy<Value = OrderConfig> {
    (1usize..120, 0usize..3, 0u64..1_000).prop_map(|(orders, rate_idx, seed)| OrderConfig {
        orders,
        violation_rate: [0.0, 0.05, 0.3][rate_idx],
        seed,
    })
}

fn order_db(config: &OrderConfig, null_titles: usize) -> Database {
    let mut db = generate_orders(config).db;
    let order = db.relation_mut("order").expect("order relation");
    for i in 0..null_titles {
        order
            .insert_values([
                Value::str(format!("null{i}")),
                Value::Null,
                Value::str(if i % 2 == 0 { "book" } else { "CD" }),
                Value::real(1.0),
            ])
            .expect("order tuple fits the schema");
    }
    db
}

fn ind_config(use_interned: bool, ignore_nulls: bool) -> IndDiscoveryConfig {
    IndDiscoveryConfig {
        use_interned,
        ignore_nulls,
        ..IndDiscoveryConfig::default()
    }
}

/// The embedded IND of Section 2.2: `order(title, price) ⊆ book(title, price)`.
fn embedded_ind(db: &Database) -> dq_core::ind::Ind {
    let order = db.relation("order").unwrap().schema().clone();
    let book = db.relation("book").unwrap().schema().clone();
    dq_core::ind::Ind::from_indices(
        "order",
        vec![order.attr("title"), order.attr("price")],
        "book",
        vec![book.attr("title"), book.attr("price")],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// IND discovery over pooled distinct-projection sets reports exactly
    /// the INDs (and candidate counts) of the naive row-oriented sweep —
    /// with and without SQL-style null semantics.
    #[test]
    fn ind_discovery_interned_equals_naive(
        config in order_config(),
        null_titles in 0usize..3,
    ) {
        let db = order_db(&config, null_titles);
        for ignore_nulls in [false, true] {
            let fast = discover_inds(&db, &ind_config(true, ignore_nulls)).unwrap();
            let slow = discover_inds(&db, &ind_config(false, ignore_nulls)).unwrap();
            prop_assert_eq!(&fast.inds, &slow.inds, "ignore_nulls {}", ignore_nulls);
            prop_assert_eq!(fast.candidates_checked, slow.candidates_checked);
            // Every reported IND genuinely holds under the configured
            // semantics.
            for ind in &fast.inds {
                prop_assert!(ind.holds_on_with(&db, ignore_nulls).unwrap(), "{}", ind);
            }
        }
    }

    /// CIND condition mining over CSR postings reports exactly the CINDs of
    /// the naive per-value re-scan, across support thresholds — including
    /// the vacuous-condition guard when the embedded IND already holds.
    #[test]
    fn cind_condition_mining_interned_equals_naive(
        config in order_config(),
        null_titles in 0usize..2,
        min_support in 1usize..4,
    ) {
        let db = order_db(&config, null_titles);
        let embedded = embedded_ind(&db);
        for ignore_nulls in [false, true] {
            let cfg = IndDiscoveryConfig {
                min_support,
                ..ind_config(true, ignore_nulls)
            };
            let found = discover_cind_conditions(&db, &embedded, &cfg).unwrap();
            let slow = discover_cind_conditions(
                &db,
                &embedded,
                &IndDiscoveryConfig { use_interned: false, ..cfg },
            )
            .unwrap();
            prop_assert_eq!(
                &found, &slow,
                "min_support {}, ignore_nulls {}", min_support, ignore_nulls
            );
            // The vacuous-CIND guard: an IND held under the configured
            // null semantics never yields conditions.
            if embedded.holds_on_with(&db, ignore_nulls).unwrap() {
                prop_assert!(found.is_empty(), "vacuous CIND for a held IND");
            }
        }
    }

    /// IND equivalence survives append-only growth over a shared pool: the
    /// distinct sets extend in place (the `appends` counter rises, even
    /// when new values grow the dictionaries) and discovery output stays
    /// byte-identical to the naive sweep.
    #[test]
    fn ind_discovery_equivalence_survives_append_only_growth(
        config in order_config(),
        extra in 1usize..12,
    ) {
        let mut db = order_db(&config, 0);
        let pool = IndexPool::new();
        let before = dq_discovery::ind_discovery::discover_inds_with_pool(
            &db, &ind_config(true, false), &pool, 2,
        ).unwrap();
        prop_assert_eq!(
            &before.inds,
            &discover_inds(&db, &ind_config(false, false)).unwrap().inds
        );
        // Grow the order relation: copies of existing tuples plus one
        // brand-new title (a dictionary-growing append, exercising the
        // repack-aware extension).
        let order = db.relation_mut("order").expect("order relation");
        let donors: Vec<_> = order.iter().map(|(_, t)| t.clone()).collect();
        for donor in donors.iter().cloned().cycle().take(extra) {
            order.insert(donor).expect("same schema");
        }
        order
            .insert_values([
                Value::str("a-new"),
                Value::str("A Brand-New Title"),
                Value::str("book"),
                Value::real(3.21),
            ])
            .expect("order tuple fits the schema");
        let after = dq_discovery::ind_discovery::discover_inds_with_pool(
            &db, &ind_config(true, false), &pool, 2,
        ).unwrap();
        prop_assert_eq!(
            &after.inds,
            &discover_inds(&db, &ind_config(false, false)).unwrap().inds
        );
        prop_assert!(
            pool.stats().appends > 0,
            "append-only growth must take the distinct-set extension fast path"
        );
        // The engine's IND detector agrees with the naive checker on the
        // grown database, for every discovered IND and both null semantics.
        let engine = DetectionEngine::new();
        for ignore_nulls in [false, true] {
            let reports = engine
                .detect_ind_violations(&db, &after.inds, ignore_nulls)
                .unwrap();
            for (ind, report) in after.inds.iter().zip(&reports) {
                prop_assert_eq!(
                    report,
                    &ind.violations_with(&db, ignore_nulls).unwrap(),
                    "{} (ignore_nulls {})", ind, ignore_nulls
                );
            }
        }
    }
}

/// A small inconsistent database with key conflicts, shaped by a seed.
fn cqa_database(groups: usize, seed: u64) -> (Database, Vec<KeySpec>, Vec<DenialConstraint>) {
    let schema = Arc::new(dq_relation::RelationSchema::new(
        "emp",
        [
            ("name", dq_relation::Domain::Text),
            ("dept", dq_relation::Domain::Text),
            ("grade", dq_relation::Domain::Int),
        ],
    ));
    let mut inst = RelationInstance::new(Arc::clone(&schema));
    for i in 0..groups {
        let name = format!("e{i}");
        let dept = format!("d{}", (i as u64 + seed) % 5);
        inst.insert_values([
            Value::str(name.clone()),
            Value::str(dept.clone()),
            Value::int((i % 4) as i64),
        ])
        .unwrap();
        // Every third employee gets a conflicting second tuple.
        if (i as u64 + seed).is_multiple_of(3) {
            inst.insert_values([
                Value::str(name),
                Value::str(format!("d{}", (i as u64 + seed + 1) % 5)),
                Value::int((i % 4) as i64),
            ])
            .unwrap();
        }
    }
    let constraints = DenialConstraint::from_fd(&Fd::new(&schema, &["name"], &["dept", "grade"]));
    let mut db = Database::new();
    db.add_relation(inst);
    (db, vec![KeySpec::new("emp", vec![0])], constraints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The interned CQA rewriting returns exactly the naive rewriting's
    /// answers, and (on oracle-sized instances) exactly the certain answers
    /// of exhaustive repair enumeration.
    #[test]
    fn cqa_rewriting_interned_equals_naive_and_oracle(
        groups in 1usize..12,
        seed in 0u64..500,
    ) {
        let (db, keys, constraints) = cqa_database(groups, seed);
        let query = ConjunctiveQuery::new(
            vec!["n", "d"],
            vec![Atom::new(
                "emp",
                vec![Term::var("n"), Term::var("d"), Term::var("g")],
            )],
            vec![],
        );
        let fast = certain_answers_rewriting(&db, &keys, &query).unwrap();
        let slow = certain_answers_rewriting_naive(&db, &keys, &query).unwrap();
        prop_assert_eq!(&fast, &slow);
        let oracle = certain_answers_oracle(&db, "emp", &constraints, &query).unwrap();
        prop_assert_eq!(&fast, &oracle);
    }

    /// Engine-routed repair enumeration lists exactly the repairs of the
    /// naive enumeration (compared as kept-tuple-id sets).
    #[test]
    fn engine_enumeration_equals_naive(groups in 1usize..10, seed in 0u64..500) {
        let (db, _, constraints) = cqa_database(groups, seed);
        let dirty = db.relation("emp").unwrap();
        let engine = DetectionEngine::new();
        let canonical = |repairs: Vec<RelationInstance>| -> BTreeSet<Vec<dq_relation::TupleId>> {
            repairs
                .iter()
                .map(|r| r.iter().map(|(id, _)| id).collect())
                .collect()
        };
        let fast = canonical(dq_repair::enumerate_repairs_with_engine(
            dirty,
            &constraints,
            &engine,
        ));
        let slow = canonical(dq_repair::enumerate_repairs(dirty, &constraints));
        prop_assert_eq!(fast, slow);
    }
}
