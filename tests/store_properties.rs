//! Property tests of the storage subsystem (`dq_relation::store`): the
//! dictionary encoding must preserve `Value`'s `Eq`/`Ord`/`Hash` semantics —
//! including `Null`, NaN and signed-zero `Real`s, and empty strings — and
//! the columnar/interned-index layers must reproduce the row-oriented
//! representation exactly.

use dataquality::prelude::*;
use dq_relation::store::FxBuildHasher;
use dq_relation::{InternedIndex, RelationInstance, TupleId, ValueInterner};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::Arc;

/// A strategy over all `Value` variants, biased toward the edge cases the
/// interner must get right: `Null`, `NaN`, `±0.0`, infinities, empty and
/// colliding strings, boundary integers.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0usize..1).prop_map(|_| Value::Null),
        any::<bool>().prop_map(Value::bool),
        (-5i64..6).prop_map(Value::int),
        (0usize..1).prop_map(|_| Value::int(i64::MIN)),
        (0usize..1).prop_map(|_| Value::int(i64::MAX)),
        (-4i64..5).prop_map(|i| Value::real(i as f64 / 2.0)),
        (0usize..1).prop_map(|_| Value::real(f64::NAN)),
        (0usize..1).prop_map(|_| Value::real(0.0)),
        (0usize..1).prop_map(|_| Value::real(-0.0)),
        (0usize..1).prop_map(|_| Value::real(f64::INFINITY)),
        (0usize..1).prop_map(|_| Value::real(f64::NEG_INFINITY)),
        (0usize..1).prop_map(|_| Value::str("")),
        "[a-c]{1,3}".prop_map(Value::str),
    ]
}

/// Every value [`value_strategy`] can produce, as an explicit finite domain
/// so generated cells pass instance validation.
fn universe_domain() -> Domain {
    let mut out = vec![
        Value::Null,
        Value::bool(true),
        Value::bool(false),
        Value::int(i64::MIN),
        Value::int(i64::MAX),
        Value::real(f64::NAN),
        Value::real(0.0),
        Value::real(-0.0),
        Value::real(f64::INFINITY),
        Value::real(f64::NEG_INFINITY),
        Value::str(""),
    ];
    out.extend((-5i64..6).map(Value::int));
    out.extend((-4i64..5).map(|i| Value::real(i as f64 / 2.0)));
    for a in ["a", "b", "c"] {
        out.push(Value::str(a));
        for b in ["a", "b", "c"] {
            out.push(Value::str(format!("{a}{b}")));
            for c in ["a", "b", "c"] {
                out.push(Value::str(format!("{a}{b}{c}")));
            }
        }
    }
    Domain::Finite(out.into())
}

fn std_hash_of(v: &impl Hash) -> u64 {
    // The std SipHash builder with fixed keys would need unstable API; use a
    // deterministic hasher seeded identically for both operands instead.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut hasher);
    hasher.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// `resolve(intern(v))` gives back a value equal to `v` under `Eq`,
    /// `Ord` and `Hash` — for every variant, including `Null`, NaN, `-0.0`
    /// and the empty string.
    #[test]
    fn intern_resolve_round_trips(values in proptest::collection::vec(value_strategy(), 1..40)) {
        let mut interner = ValueInterner::new();
        let ids: Vec<_> = values.iter().map(|v| interner.intern(v)).collect();
        for (v, &id) in values.iter().zip(&ids) {
            let resolved = interner.resolve(id);
            prop_assert!(resolved == v, "Eq broken for {v:?}");
            prop_assert_eq!(resolved.cmp(v), std::cmp::Ordering::Equal, "Ord broken for {:?}", v);
            prop_assert_eq!(std_hash_of(resolved), std_hash_of(v), "Hash broken for {:?}", v);
            prop_assert_eq!(
                FxBuildHasher::default().hash_one(resolved),
                FxBuildHasher::default().hash_one(v),
                "Fx hash broken for {:?}", v
            );
            prop_assert_eq!(interner.lookup(v), Some(id));
        }
    }

    /// Ids agree exactly when values are equal, and `cmp_ids` reproduces the
    /// value order — so sorting by interned comparison equals sorting values.
    #[test]
    fn ids_preserve_equality_and_order(values in proptest::collection::vec(value_strategy(), 2..40)) {
        let mut interner = ValueInterner::new();
        let ids: Vec<_> = values.iter().map(|v| interner.intern(v)).collect();
        for (a, &ia) in values.iter().zip(&ids) {
            for (b, &ib) in values.iter().zip(&ids) {
                prop_assert_eq!((a == b), (ia == ib), "{:?} vs {:?}", a, b);
                prop_assert_eq!(interner.cmp_ids(ia, ib), a.cmp(b), "{:?} vs {:?}", a, b);
            }
        }
    }

    /// The columnar snapshot reproduces every cell of the instance, and the
    /// interned index over any attribute list groups exactly like the
    /// value-keyed `HashIndex` — the foundation of report byte-identity.
    #[test]
    fn columnar_and_interned_index_match_rows(
        cells in proptest::collection::vec((value_strategy(), value_strategy()), 1..60),
        threads in 1usize..5,
    ) {
        let schema =
            RelationSchema::new("r", [("A", universe_domain()), ("B", universe_domain())]);
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b) in &cells {
            inst.insert_values([a.clone(), b.clone()])
                .expect("universe domain admits all generated values");
        }
        let store = inst.columnar();
        // Cell round-trip through the columns.
        for attr in 0..2 {
            let col = store.column(&inst, attr);
            for (row, &id) in store.rows().iter().enumerate() {
                prop_assert!(
                    col.interner().resolve(col.id_at(row)) == inst.tuple(id).unwrap().get(attr)
                );
            }
        }
        // Grouping equivalence on every attribute list, with a shard size
        // small enough to force the multi-shard merge path.  Canonical maps
        // are keyed by the debug rendering: `Value`'s mixed-numeric `Ord`
        // deliberately compares `Int(0)` and `Real(0.0)` as equal (denial
        // constraints order across numeric types) while `Eq` distinguishes
        // them, so `Vec<Value>` is not a usable `BTreeMap` key here.
        for attrs in [&[0usize][..], &[1], &[0, 1]] {
            let interned = InternedIndex::build_with_shard_rows(&inst, &store, attrs, threads, 7);
            let baseline = dq_relation::HashIndex::build(&inst, attrs);
            let from_interned: BTreeMap<String, Vec<TupleId>> = interned
                .groups()
                .map(|(ids, rows)| {
                    let key: Vec<&Value> = ids
                        .iter()
                        .zip(interned.columns())
                        .map(|(&id, col)| col.interner().resolve(id))
                        .collect();
                    (
                        format!("{key:?}"),
                        rows.iter().map(|&r| interned.tuple_id(r)).collect(),
                    )
                })
                .collect();
            let from_baseline: BTreeMap<String, Vec<TupleId>> = baseline
                .groups()
                .map(|(k, g)| (format!("{:?}", k.iter().collect::<Vec<_>>()), g.clone()))
                .collect();
            prop_assert_eq!(&from_interned, &from_baseline, "attrs {:?}", attrs);
            prop_assert_eq!(from_interned.len(), interned.group_count(), "debug keys must be distinct");
        }
    }

    /// Append-only growth extends snapshots, pooled interned indexes and
    /// pooled distinct-projection sets in place; the extended structures
    /// must be indistinguishable from from-scratch builds on every cell,
    /// group and probe — arbitrary mixed-type appends included (which may
    /// grow the column dictionaries past their mixed-radix u64 packing,
    /// exercising the repack-aware extension).
    #[test]
    fn append_extension_matches_fresh_builds(
        cells in proptest::collection::vec((value_strategy(), value_strategy()), 1..40),
        appended in proptest::collection::vec((value_strategy(), value_strategy()), 1..25),
    ) {
        let schema =
            RelationSchema::new("r", [("A", universe_domain()), ("B", universe_domain())]);
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b) in &cells {
            inst.insert_values([a.clone(), b.clone()]).expect("universe domain");
        }
        let pool = IndexPool::new();
        let prev_store = inst.columnar();
        prev_store.column(&inst, 0);
        for attrs in [&[0usize][..], &[1], &[0, 1]] {
            pool.interned_for(&inst, attrs, 1);
        }
        for (a, b) in &appended {
            inst.insert_values([a.clone(), b.clone()]).expect("universe domain");
        }
        prop_assert!(inst.append_only_since(prev_store.version()));
        // The memoized snapshot takes the extension path (same data as new).
        let extended = inst.columnar();
        let fresh = dq_relation::ColumnarStore::new(&inst);
        prop_assert_eq!(extended.rows(), fresh.rows());
        for attr in 0..2 {
            let e = extended.column(&inst, attr);
            for (row, &id) in extended.rows().iter().enumerate() {
                prop_assert!(
                    e.interner().resolve(e.id_at(row)) == inst.tuple(id).unwrap().get(attr),
                    "attr {} row {}", attr, row
                );
            }
        }
        // Pool misses re-key only the appended rows (re-packing the key
        // space when a dictionary outgrew its radix); either way the groups
        // equal the value-keyed baseline.
        for attrs in [&[0usize][..], &[1], &[0, 1]] {
            let idx = pool.interned_for(&inst, attrs, 1);
            let baseline = dq_relation::HashIndex::build(&inst, attrs);
            prop_assert_eq!(idx.group_count(), baseline.len(), "attrs {:?}", attrs);
            for (key, group) in baseline.groups() {
                let ids: Vec<TupleId> =
                    idx.rows_for_values(key).iter().map(|&r| idx.tuple_id(r)).collect();
                prop_assert_eq!(&ids, group, "attrs {:?}", attrs);
            }
            // The distinct-projection artifact answers exactly like the
            // Eq-keyed index after the same growth.  (`project_distinct`'s
            // `BTreeSet` dedups by `Value`'s mixed-numeric `Ord`, which
            // diverges from `Eq` on NaN and `Int`-vs-`Real` ties — the
            // documented profile subtlety — so the hash index is the
            // correct reference here.)
            let set = pool.distinct_for(&inst, attrs, 1);
            prop_assert_eq!(set.len(), baseline.len(), "attrs {:?}", attrs);
            for (key, _) in baseline.groups() {
                prop_assert!(set.contains_values(key), "attrs {:?}", attrs);
            }
        }
    }

    /// Journaled cell edits patch snapshots, pooled interned indexes and
    /// pooled distinct-projection sets in place; under arbitrary mixed
    /// append + edit + delete streams the upgraded structures must stay
    /// indistinguishable from cold rebuilds on every cell, group and probe.
    /// (Edits patch, appends extend, deletes poison the journal and fall
    /// back to a full rebuild — all three paths interleave freely here.)
    #[test]
    fn mixed_mutation_streams_match_fresh_builds(
        cells in proptest::collection::vec((value_strategy(), value_strategy()), 2..30),
        ops in proptest::collection::vec(
            (0usize..4, 0usize..1_000_000, value_strategy(), value_strategy()),
            1..20,
        ),
    ) {
        let schema =
            RelationSchema::new("r", [("A", universe_domain()), ("B", universe_domain())]);
        let mut inst = RelationInstance::from_schema(schema);
        for (a, b) in &cells {
            inst.insert_values([a.clone(), b.clone()]).expect("universe domain");
        }
        let pool = IndexPool::new();
        let attr_sets: [&[usize]; 3] = [&[0], &[1], &[0, 1]];
        for attrs in attr_sets {
            pool.interned_for(&inst, attrs, 1);
            pool.distinct_for(&inst, attrs, 1);
        }
        for &(kind, pick, ref va, ref vb) in &ops {
            match kind {
                0 | 1 => {
                    let ids = inst.ids();
                    let id = ids[pick % ids.len()];
                    inst.update_cell(dq_relation::instance::CellRef::new(id, kind), va.clone())
                        .expect("universe domain");
                }
                2 => {
                    inst.insert_values([va.clone(), vb.clone()]).expect("universe domain");
                }
                _ => {
                    let ids = inst.ids();
                    if ids.len() <= 1 {
                        continue;
                    }
                    inst.remove(ids[pick % ids.len()]);
                }
            }
            // After every mutation: the memoized snapshot (which may have
            // taken the patch arm) reproduces each cell, and the pooled
            // artifacts answer exactly like value-keyed cold builds.
            let store = inst.columnar();
            for attr in 0..2 {
                let col = store.column(&inst, attr);
                for (row, &id) in store.rows().iter().enumerate() {
                    prop_assert!(
                        col.interner().resolve(col.id_at(row)) == inst.tuple(id).unwrap().get(attr),
                        "attr {} row {}", attr, row
                    );
                }
            }
            for attrs in attr_sets {
                let idx = pool.interned_for(&inst, attrs, 1);
                let baseline = dq_relation::HashIndex::build(&inst, attrs);
                prop_assert_eq!(idx.group_count(), baseline.len(), "attrs {:?}", attrs);
                for (key, group) in baseline.groups() {
                    let ids: Vec<TupleId> =
                        idx.rows_for_values(key).iter().map(|&r| idx.tuple_id(r)).collect();
                    prop_assert_eq!(&ids, group, "attrs {:?}", attrs);
                }
                let set = pool.distinct_for(&inst, attrs, 1);
                prop_assert_eq!(set.len(), baseline.len(), "attrs {:?}", attrs);
                for (key, _) in baseline.groups() {
                    prop_assert!(set.contains_values(key), "attrs {:?}", attrs);
                }
            }
        }
    }

    /// Canonicalized instances detect identically to plainly built ones: the
    /// dictionary compression of `dq-gen` cannot change any report.
    #[test]
    fn canonicalized_instances_detect_identically(
        cells in proptest::collection::vec((value_strategy(), value_strategy()), 1..50),
    ) {
        let schema = Arc::new(RelationSchema::new(
            "r",
            [("A", universe_domain()), ("B", universe_domain())],
        ));
        let mut plain = RelationInstance::new(Arc::clone(&schema));
        let mut canonical = RelationInstance::new(Arc::clone(&schema));
        let mut pool = ValueInterner::new();
        for (a, b) in &cells {
            plain.insert_values([a.clone(), b.clone()]).unwrap();
            canonical
                .insert_values([pool.canonical(a.clone()), pool.canonical(b.clone())])
                .unwrap();
        }
        prop_assert!(plain.same_tuples_as(&canonical));
        let fd = Fd::from_indices(&schema, vec![0], vec![1]);
        let cfd = Cfd::from_fd(&fd);
        let engine = DetectionEngine::new();
        prop_assert_eq!(
            engine.detect_cfd_violations(&canonical, std::slice::from_ref(&cfd)),
            detect_cfd_violations(&plain, std::slice::from_ref(&cfd))
        );
    }
}

/// A dictionary-growing append must still take the pool's extension fast
/// path: the mixed-radix u64 packing is re-packed under the widened radices
/// instead of falling back to a full rebuild.  Regression test for the
/// `appends` counter staying flat when an appended row carries brand-new
/// values on the key columns.
#[test]
fn dictionary_growing_append_still_extends_pooled_structures() {
    let schema = RelationSchema::new("r", [("A", Domain::Int), ("B", Domain::Text)]);
    let mut inst = RelationInstance::from_schema(schema);
    for i in 0..30i64 {
        inst.insert_values([Value::int(i % 5), Value::str(format!("s{}", i % 4))])
            .unwrap();
    }
    let pool = IndexPool::new();
    pool.interned_for(&inst, &[0, 1], 1);
    pool.distinct_for(&inst, &[0, 1], 1);
    assert_eq!(pool.stats().appends, 0);
    // Brand-new values on both key columns grow both dictionaries, which
    // used to force a full rebuild of the u64 radix-packed structures.
    let unseen = [Value::int(999), Value::str("unseen")];
    inst.insert_values(unseen.clone()).unwrap();
    let idx = pool.interned_for(&inst, &[0, 1], 1);
    let set = pool.distinct_for(&inst, &[0, 1], 1);
    assert_eq!(
        pool.stats().appends,
        2,
        "a dictionary-growing append must re-pack and extend, not rebuild"
    );
    // Correctness after the repack: groups equal the value-keyed baseline
    // and the new key is probeable in both structures.
    let baseline = dq_relation::HashIndex::build(&inst, &[0, 1]);
    assert_eq!(idx.group_count(), baseline.len());
    for (key, group) in baseline.groups() {
        let ids: Vec<TupleId> = idx
            .rows_for_values(key)
            .iter()
            .map(|&r| idx.tuple_id(r))
            .collect();
        assert_eq!(&ids, group);
    }
    assert!(set.contains_values(&unseen));
    assert_eq!(set.len(), inst.project_distinct(&[0, 1]).len());
}
