//! Property tests of the on-disk columnar shard format
//! (`dq_relation::store::persist`) and of shard-cursor execution over it.
//!
//! The contract under test: a relation saved with `save_to` and re-opened
//! with `open_mmap` is *indistinguishable* from the in-RAM columnar
//! snapshot — cell by cell, tuple id by tuple id — under arbitrary mixed
//! append/edit/delete histories (appends re-save incrementally, edits force
//! a full rewrite; both must land on the same bytes-on-disk semantics).
//! Detection and discovery driven through a `ShardSource` over the mapped
//! relation must produce byte-identical reports to the in-RAM engine at
//! any thread count, and damaged or future-versioned segments must surface
//! as typed `DqError`s, never panics.

use dataquality::prelude::*;
use dq_relation::store::persist;
use dq_relation::store::FORMAT_VERSION;
use dq_relation::{MappedRelation, RelationInstance, StoreShardSource};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Rows per shard in these tests: tiny, so even small generated instances
/// exercise multi-shard layouts and partial tail shards.
const TEST_SHARD_ROWS: usize = 8;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dq_persistence_it_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Arc<RelationSchema> {
    Arc::new(RelationSchema::new(
        "cust",
        [
            ("cc", Domain::Int),
            ("ac", Domain::Int),
            ("city", Domain::Text),
            ("zip", Domain::Text),
        ],
    ))
}

/// One step of a relation's life.
#[derive(Clone, Debug)]
enum Op {
    Append {
        cc: i64,
        ac: i64,
        city: u8,
        zip: u8,
    },
    Edit {
        slot: usize,
        attr: u8,
        val: u8,
    },
    Delete {
        slot: usize,
    },
    /// Save the current state and re-open it, asserting equivalence.
    Checkpoint,
}

fn append_strategy() -> impl Strategy<Value = Op> {
    (40i64..44, 0i64..5, 0u32..4, 0u32..6).prop_map(|(cc, ac, city, zip)| Op::Append {
        cc,
        ac,
        city: city as u8,
        zip: zip as u8,
    })
}

fn edit_strategy() -> impl Strategy<Value = Op> {
    (0usize..64, 0u32..4, 0u32..6).prop_map(|(slot, attr, val)| Op::Edit {
        slot,
        attr: attr as u8,
        val: val as u8,
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The offline proptest shim's `prop_oneof!` is unweighted; appends are
    // listed several times so histories grow instead of emptying out.
    prop_oneof![
        append_strategy(),
        append_strategy(),
        append_strategy(),
        append_strategy(),
        edit_strategy(),
        edit_strategy(),
        (0usize..64).prop_map(|slot| Op::Delete { slot }),
        (0usize..1).prop_map(|_| Op::Checkpoint),
    ]
}

fn city_value(i: u8) -> Value {
    Value::str(format!("city{i}"))
}

fn zip_value(i: u8) -> Value {
    Value::str(format!("zip{i}"))
}

/// Asserts a mapped relation is cell-for-cell identical to the live
/// instance's in-RAM columnar snapshot.
fn assert_mapped_matches(instance: &RelationInstance, mapped: &MappedRelation) {
    let reference = StoreShardSource::new(instance);
    assert_eq!(mapped.len(), reference.len());
    assert_eq!(mapped.schema().arity(), reference.schema().arity());
    for attr in 0..reference.schema().arity() {
        let mcol = mapped.column(attr);
        let rcol = reference.column(attr);
        for row in 0..reference.len() {
            assert_eq!(
                mcol.interner().resolve(mcol.id_at(row)),
                rcol.interner().resolve(rcol.id_at(row)),
                "cell ({row}, {attr})"
            );
        }
    }
    for row in 0..reference.len() {
        let id = reference.tuple_id(row);
        assert_eq!(mapped.tuple_id(row), id, "tuple id at row {row}");
        assert_eq!(mapped.row_of(id), Some(row), "row_of({id:?})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed append/edit/delete histories with interleaved save/open
    /// checkpoints: every checkpoint (incremental after pure appends, full
    /// rewrite otherwise) must round-trip to an equivalent mapped relation.
    #[test]
    fn save_open_round_trip_under_mixed_histories(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let dir = tmp_dir("mixed");
        let mut instance = RelationInstance::new(schema());
        let mut live: Vec<TupleId> = Vec::new();
        for op in ops {
            match op {
                Op::Append { cc, ac, city, zip } => {
                    let id = instance
                        .insert_values([
                            Value::int(cc),
                            Value::int(ac),
                            city_value(city),
                            zip_value(zip),
                        ])
                        .unwrap();
                    live.push(id);
                }
                Op::Edit { slot, attr, val } => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live[slot % live.len()];
                    let value = match attr % 4 {
                        0 => Value::int(40 + (val % 4) as i64),
                        1 => Value::int((val % 5) as i64),
                        2 => city_value(val % 4),
                        _ => zip_value(val % 6),
                    };
                    instance
                        .update_cell(CellRef::new(id, (attr % 4) as usize), value)
                        .unwrap();
                }
                Op::Delete { slot } => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = slot % live.len();
                    let id = live.remove(idx);
                    instance.remove(id);
                }
                Op::Checkpoint => {
                    let store = instance.columnar();
                    store
                        .save_to_with_shard_rows(&instance, &dir, TEST_SHARD_ROWS)
                        .unwrap();
                    let mapped = persist::open_mmap(&dir).unwrap();
                    assert_mapped_matches(&instance, &mapped);
                    let verified = persist::open_mmap_verified(&dir).unwrap();
                    assert_mapped_matches(&instance, &verified);
                }
            }
        }
        // Final checkpoint regardless of the generated history.
        let store = instance.columnar();
        store
            .save_to_with_shard_rows(&instance, &dir, TEST_SHARD_ROWS)
            .unwrap();
        let mapped = persist::open_mmap(&dir).unwrap();
        assert_mapped_matches(&instance, &mapped);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSV round-trip under adversarial text cells — separators, quotes,
    /// newlines, commas, empties — through both the in-memory parser and
    /// the streaming shard-store ingest: `to_text` → `from_text` must
    /// reproduce every tuple, and `to_text` → `stream_into_store` →
    /// `open_mmap` must land on the same cells the instance holds.
    #[test]
    fn csv_round_trip_including_streamed_ingest(
        cells in proptest::collection::vec(
            ("[ab|\"\n, ]{0,6}", "[xy|\"\n, ]{0,6}"),
            1..30,
        ),
    ) {
        let schema = Arc::new(RelationSchema::new(
            "csvrel",
            [("left", Domain::Text), ("right", Domain::Text)],
        ));
        let mut instance = RelationInstance::new(Arc::clone(&schema));
        for (left, right) in &cells {
            instance
                .insert_values([Value::str(left), Value::str(right)])
                .unwrap();
        }
        let text = dq_relation::csv::to_text(&instance).unwrap();
        let parsed = dq_relation::csv::from_text(Arc::clone(&schema), &text).unwrap();
        assert_eq!(parsed.len(), instance.len());
        for (id, tuple) in instance.iter() {
            assert_eq!(parsed.tuple(id), Some(tuple), "tuple {id:?}");
        }
        let dir = tmp_dir("csv");
        let stats = dq_relation::csv::stream_into_store(
            Arc::clone(&schema),
            std::io::Cursor::new(text.as_bytes()),
            &dir,
            4,
        )
        .unwrap();
        assert_eq!(stats.rows, cells.len());
        let mapped = persist::open_mmap(&dir).unwrap();
        assert_mapped_matches(&instance, &mapped);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A deterministic instance big enough for several tiny shards, with enough
/// value collisions that the detection fixtures below actually fire.
fn detection_instance(rows: usize) -> RelationInstance {
    let mut instance = RelationInstance::new(schema());
    for i in 0..rows {
        instance
            .insert_values([
                Value::int(40 + (i % 3) as i64),
                Value::int((i % 5) as i64),
                city_value((i % 4) as u8),
                zip_value((i % 6) as u8),
            ])
            .unwrap();
    }
    instance
}

fn detection_cfds(schema: &Arc<RelationSchema>) -> Vec<Cfd> {
    vec![
        // cc, ac -> city with a wildcard pattern and a constant pattern.
        Cfd::new(
            schema,
            &["cc", "ac"],
            &["city"],
            vec![
                PatternTuple::new(vec![cst(40i64), wild()], vec![wild()]),
                PatternTuple::new(vec![cst(41i64), cst(2i64)], vec![cst("city1")]),
            ],
        )
        .unwrap(),
        // zip -> city as a pure variable CFD.
        Cfd::new(
            schema,
            &["zip"],
            &["city"],
            vec![PatternTuple::new(vec![wild()], vec![wild()])],
        )
        .unwrap(),
    ]
}

fn detection_denials() -> Vec<DenialConstraint> {
    vec![
        // FD-shaped, pair-partitionable on ac.
        DenialConstraint::new(
            "cust",
            2,
            vec![
                DcPredicate::new(DcTerm::attr(0, 1), CompOp::Eq, DcTerm::attr(1, 1)),
                DcPredicate::new(DcTerm::attr(0, 2), CompOp::Ne, DcTerm::attr(1, 2)),
            ],
        ),
        // Single-variable constant constraint.
        DenialConstraint::new(
            "cust",
            1,
            vec![DcPredicate::new(
                DcTerm::attr(0, 0),
                CompOp::Eq,
                DcTerm::val(41i64),
            )],
        ),
    ]
}

/// CFD and denial detection over the mmap-backed shard source must be
/// byte-identical to the pooled in-RAM engine, at every thread count.
#[test]
fn mapped_detection_matches_in_ram_engine() {
    let dir = tmp_dir("detect");
    let instance = detection_instance(100);
    let cfds = detection_cfds(instance.schema());
    let denials = detection_denials();
    instance
        .columnar()
        .save_to_with_shard_rows(&instance, &dir, TEST_SHARD_ROWS)
        .unwrap();
    let mapped = persist::open_mmap(&dir).unwrap();
    assert!(mapped.len() > TEST_SHARD_ROWS, "must span several shards");

    let reference_engine = DetectionEngine::with_threads(1);
    let expected_cfd = reference_engine.detect_cfd_violations(&instance, &cfds);
    let expected_dc = reference_engine.detect_denial_violations(&instance, &denials);
    assert!(
        expected_cfd.total() > 0,
        "fixture should produce violations"
    );

    for threads in [1, 2, 8] {
        let engine = DetectionEngine::with_threads(threads);
        // Over the mapped relation.
        let got_cfd = engine.detect_cfd_violations_from_shards(&mapped, &cfds);
        assert_eq!(
            got_cfd.per_dependency(),
            expected_cfd.per_dependency(),
            "mapped CFD threads {threads}"
        );
        let got_dc = engine.detect_denial_violations_from_shards(&mapped, &denials);
        assert_eq!(got_dc, expected_dc, "mapped denial threads {threads}");
        // And over the in-RAM shard source: same algorithm, other backing.
        let in_ram = StoreShardSource::new(&instance);
        let got_cfd = engine.detect_cfd_violations_from_shards(&in_ram, &cfds);
        assert_eq!(
            got_cfd.per_dependency(),
            expected_cfd.per_dependency(),
            "in-RAM CFD threads {threads}"
        );
        let got_dc = engine.detect_denial_violations_from_shards(&in_ram, &denials);
        assert_eq!(got_dc, expected_dc, "in-RAM denial threads {threads}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// FD discovery over the mapped shard source must reproduce the in-RAM
/// discovery run — FDs, candidate counts — at every thread count.
#[test]
fn mapped_fd_discovery_matches_in_ram() {
    let dir = tmp_dir("discover");
    let instance = detection_instance(80);
    instance
        .columnar()
        .save_to_with_shard_rows(&instance, &dir, TEST_SHARD_ROWS)
        .unwrap();
    let mapped = persist::open_mmap(&dir).unwrap();
    for max_g3 in [0.0, 0.1] {
        let config = |threads| FdDiscoveryConfig {
            threads,
            max_g3,
            max_lhs: 2,
            ..FdDiscoveryConfig::default()
        };
        let expected = discover_fds(&instance, &config(1));
        for threads in [1, 2, 8] {
            let got = discover_fds_from_shards(&mapped, &config(threads));
            assert_eq!(got.fds, expected.fds, "threads {threads} max_g3 {max_g3}");
            assert_eq!(got.candidates_checked, expected.candidates_checked);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damaged segments must come back as typed `DqError`s — never a panic,
/// never a silent wrong answer.
#[test]
fn corruption_and_version_mismatch_are_typed_errors() {
    let dir = tmp_dir("corrupt");
    let instance = detection_instance(40);
    instance
        .columnar()
        .save_to_with_shard_rows(&instance, &dir, TEST_SHARD_ROWS)
        .unwrap();

    // Flip a payload byte in every segment file in turn: full verification
    // must reject each one with CorruptSegment (or an I/O error), never a
    // panic and never success.
    let mut segment_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segment_files.sort();
    assert!(
        segment_files.len() > 3,
        "expect manifest + several segments"
    );
    for file in &segment_files {
        let original = std::fs::read(file).unwrap();
        let mut damaged = original.clone();
        let idx = damaged.len() / 2;
        damaged[idx] ^= 0x5a;
        std::fs::write(file, &damaged).unwrap();
        match persist::open_mmap_verified(&dir) {
            Err(DqError::CorruptSegment { .. }) | Err(DqError::Io { .. }) => {}
            Err(other) => panic!("unexpected error for {file:?}: {other:?}"),
            Ok(_) => panic!("damaged {file:?} but open_mmap_verified succeeded"),
        }
        std::fs::write(file, &original).unwrap();
    }
    // Restored: opens cleanly again.
    persist::open_mmap_verified(&dir).unwrap();

    // A future format version in the manifest is a VersionMismatch.
    let manifest = dir.join("MANIFEST");
    let bytes = std::fs::read(&manifest).unwrap();
    let mut future = bytes.clone();
    future[4] = 0xff; // little-endian version low byte
    future[5] = 0x00;
    // Re-checksum the tampered manifest so the version check, not the
    // checksum, is what fires.
    let payload_end = future.len() - 8;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in &future[..payload_end] {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    future[payload_end..].copy_from_slice(&hash.to_le_bytes());
    std::fs::write(&manifest, &future).unwrap();
    match persist::open_mmap(&dir) {
        Err(DqError::VersionMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, 0xff);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Release hints must not change anything observable: detection after
/// releasing every shard still reads the same cells.
#[test]
fn release_shard_is_transparent() {
    let dir = tmp_dir("release");
    let instance = detection_instance(64);
    instance
        .columnar()
        .save_to_with_shard_rows(&instance, &dir, TEST_SHARD_ROWS)
        .unwrap();
    let mapped = persist::open_mmap(&dir).unwrap();
    for shard in 0..mapped.shard_count() {
        mapped.release_shard(shard);
    }
    assert_mapped_matches(&instance, &mapped);
    let _ = std::fs::remove_dir_all(&dir);
}
