//! Byte-identity of the interned matching engine against the naive paths.
//!
//! The engine (`dq_match::engine::MatchingEngine`) promises *exactly* the
//! results of the naive matcher and MD checker — same `matches`, same
//! `rule_hits`, same violation vectors (contents and order) — for every
//! rule shape, backend configuration and thread count, with the single
//! opt-in exception of the sorted-neighborhood approximate mode.  This
//! suite pins that promise on generated card/billing workloads.

use dq_gen::cards::{generate_cards, CardConfig, CardWorkload};
use dq_match::engine::MatchingEngine;
use dq_match::matcher::{score, Matcher};
use dq_match::md::{MatchOp, MatchingDependency};
use dq_match::rck::RelativeKey;
use dq_match::similarity::SimilarityOp;
use dq_relation::IndexPool;
use std::sync::Arc;

const YC: [&str; 5] = ["FN", "LN", "addr", "tel", "email"];
const YB: [&str; 5] = ["FN", "SN", "post", "phn", "email"];

fn workload(holders: usize, seed: u64) -> CardWorkload {
    generate_cards(&CardConfig {
        holders,
        billing_rate: 0.8,
        abbreviate_rate: 0.4,
        phone_change_rate: 0.3,
        email_change_rate: 0.3,
        distractors: holders / 5,
        seed,
    })
}

fn engine(threads: usize) -> MatchingEngine {
    MatchingEngine::new(Arc::new(IndexPool::new())).with_threads(threads)
}

/// Rule sets covering every premise shape the engine specializes:
/// eq-joined, length-blocked, q-gram-blocked, exhaustive (Jaro), and mixed.
fn rule_sets(w: &CardWorkload) -> Vec<(&'static str, Vec<RelativeKey>)> {
    let key = |comparisons: Vec<(&str, &str, SimilarityOp)>| {
        RelativeKey::new(w.card.schema(), w.billing.schema(), comparisons, &YC, &YB).unwrap()
    };
    vec![
        (
            "equality-join",
            vec![key(vec![
                ("email", "email", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
            ])],
        ),
        (
            "eq-plus-edit",
            vec![key(vec![
                ("LN", "SN", SimilarityOp::Equality),
                ("addr", "post", SimilarityOp::Equality),
                ("FN", "FN", SimilarityOp::edit(3)),
            ])],
        ),
        (
            "edit-only",
            vec![key(vec![("FN", "FN", SimilarityOp::edit(2))])],
        ),
        (
            "normalized-edit-only",
            vec![key(vec![(
                "FN",
                "FN",
                SimilarityOp::NormalizedEdit {
                    min_similarity: 0.6,
                },
            )])],
        ),
        (
            "qgram-only",
            vec![key(vec![(
                "LN",
                "SN",
                SimilarityOp::QGram {
                    q: 2,
                    min_similarity: 0.5,
                },
            )])],
        ),
        (
            "jaro-exhaustive",
            vec![key(vec![(
                "FN",
                "FN",
                SimilarityOp::Jaro {
                    min_similarity: 0.85,
                },
            )])],
        ),
        (
            "multi-rule",
            vec![
                key(vec![
                    ("email", "email", SimilarityOp::Equality),
                    ("addr", "post", SimilarityOp::Equality),
                ]),
                key(vec![
                    ("LN", "SN", SimilarityOp::Equality),
                    ("addr", "post", SimilarityOp::Equality),
                    ("FN", "FN", SimilarityOp::edit(3)),
                ]),
                key(vec![(
                    "FN",
                    "FN",
                    SimilarityOp::JaroWinkler {
                        min_similarity: 0.9,
                    },
                )]),
            ],
        ),
    ]
}

#[test]
fn match_results_are_byte_identical_across_backends_and_thread_counts() {
    for seed in [7, 19] {
        let w = workload(120, seed);
        for (label, rules) in rule_sets(&w) {
            let matcher = Matcher::new(rules);
            let naive = matcher.run(&w.card, &w.billing);
            for threads in [1, 2, 3] {
                let eng = engine(threads);
                let interned = matcher.run_with(&eng, &w.card, &w.billing);
                assert_eq!(
                    naive.matches, interned.matches,
                    "matches diverged: {label}, seed {seed}, threads {threads}"
                );
                assert_eq!(
                    naive.rule_hits, interned.rule_hits,
                    "rule_hits diverged: {label}, seed {seed}, threads {threads}"
                );
                // Quality against the ground truth follows from the match
                // set, so it is identical too — assert it anyway, since it
                // is the headline number of `md_matching_quality`.
                assert_eq!(
                    score(&naive.matches, &w.truth),
                    score(&interned.matches, &w.truth),
                    "quality diverged: {label}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn disabling_blocking_changes_neither_backend_result() {
    let w = workload(60, 11);
    for (label, rules) in rule_sets(&w) {
        let matcher = Matcher::new(rules).without_blocking();
        let naive = matcher.run(&w.card, &w.billing);
        let interned = matcher.run_with(&engine(2), &w.card, &w.billing);
        assert_eq!(naive.matches, interned.matches, "unblocked: {label}");
        assert_eq!(naive.rule_hits, interned.rule_hits, "unblocked: {label}");
    }
}

#[test]
fn blocking_never_loses_a_match_the_exhaustive_engine_finds() {
    // Blocking recall: the lossless generators (eq-join, q-gram, length
    // windows) must generate every pair the premise relates, so blocked
    // and unblocked engine runs agree exactly.
    let w = workload(100, 23);
    for (label, rules) in rule_sets(&w) {
        let blocked = Matcher::new(rules.clone());
        let unblocked = Matcher::new(rules).without_blocking();
        let eng = engine(2);
        let with = blocked.run_with(&eng, &w.card, &w.billing);
        let without = unblocked.run_with(&eng, &w.card, &w.billing);
        assert_eq!(
            with.matches, without.matches,
            "blocking lost or invented matches: {label}"
        );
    }
}

#[test]
fn md_violations_agree_in_contents_and_order() {
    let w = workload(60, 31);
    let md_eq_premise = MatchingDependency::new(
        w.card.schema(),
        w.billing.schema(),
        vec![
            ("tel", "phn", MatchOp::eq()),
            ("FN", "FN", MatchOp::edit(3)),
        ],
        &["addr"],
        &["post"],
        MatchOp::Matching,
    )
    .unwrap();
    let md_metric_premise = MatchingDependency::new(
        w.card.schema(),
        w.billing.schema(),
        vec![(
            "LN",
            "SN",
            MatchOp::Similarity(SimilarityOp::QGram {
                q: 2,
                min_similarity: 0.6,
            }),
        )],
        &["email"],
        &["email"],
        MatchOp::Similarity(SimilarityOp::edit(5)),
    )
    .unwrap();
    let md_matching_premise = MatchingDependency::new(
        w.card.schema(),
        w.billing.schema(),
        vec![("email", "email", MatchOp::matching())],
        &["FN", "LN"],
        &["FN", "SN"],
        MatchOp::Matching,
    )
    .unwrap();
    let truth = w.truth.clone();
    let oracle = move |a, b| truth.contains(&(a, b));
    for (label, md) in [
        ("eq-premise", &md_eq_premise),
        ("metric-premise", &md_metric_premise),
        ("matching-premise", &md_matching_premise),
    ] {
        let naive = md.violations_with(&w.card, &w.billing, &oracle);
        for threads in [1, 3] {
            let eng = engine(threads);
            let interned = md.violations_with_pool(&w.card, &w.billing, &oracle, &eng);
            assert_eq!(
                naive, interned,
                "violations diverged: {label}, threads {threads}"
            );
            assert_eq!(
                md.holds_with(&w.card, &w.billing, &oracle),
                md.holds_with_pool(&w.card, &w.billing, &oracle, &eng),
                "holds diverged: {label}"
            );
        }
    }
}

#[test]
fn engine_artifacts_are_reused_across_repeated_runs() {
    let w = workload(80, 41);
    let rules = vec![RelativeKey::new(
        w.card.schema(),
        w.billing.schema(),
        vec![("FN", "FN", SimilarityOp::edit(3))],
        &YC,
        &YB,
    )
    .unwrap()];
    let eng = engine(2);
    let matcher = Matcher::new(rules);
    let first = matcher.run_with(&eng, &w.card, &w.billing);
    let misses_after_first = eng.stats().cache.misses;
    let second = matcher.run_with(&eng, &w.card, &w.billing);
    assert_eq!(first.matches, second.matches);
    assert_eq!(
        eng.stats().cache.misses,
        misses_after_first,
        "a repeated run must be answered from the memo cache"
    );
    assert!(eng.stats().cache.hits > 0);
}

#[test]
fn sorted_neighborhood_is_approximate_but_sound() {
    // The opt-in window pass may miss matches (recall <= 1) but must never
    // invent one: every reported match also appears in the exact result.
    let w = workload(80, 53);
    let rules = vec![RelativeKey::new(
        w.card.schema(),
        w.billing.schema(),
        vec![(
            "FN",
            "FN",
            SimilarityOp::Jaro {
                min_similarity: 0.8,
            },
        )],
        &YC,
        &YB,
    )
    .unwrap()];
    let matcher = Matcher::new(rules);
    let exact = matcher.run_with(&engine(2), &w.card, &w.billing);
    for window in [1, 4, 16] {
        let eng = MatchingEngine::new(Arc::new(IndexPool::new()))
            .with_threads(2)
            .with_sorted_neighborhood(window);
        let approx = matcher.run_with(&eng, &w.card, &w.billing);
        assert!(
            approx.matches.is_subset(&exact.matches),
            "window {window} invented matches"
        );
    }
    // A generous window recovers the exact result on this workload.
    let eng = MatchingEngine::new(Arc::new(IndexPool::new()))
        .with_threads(2)
        .with_sorted_neighborhood(10_000);
    let wide = matcher.run_with(&eng, &w.card, &w.billing);
    assert_eq!(wide.matches, exact.matches);
}

#[test]
fn pooled_rule_learning_is_byte_identical() {
    use dq_discovery::md_discovery::{
        learn_relative_keys, learn_relative_keys_with_pool, RuleLearningConfig,
    };
    use dq_match::rck::ComparisonSpace;
    let w = workload(100, 61);
    let space = vec![
        ComparisonSpace::new("LN", "SN", vec![SimilarityOp::Equality]),
        ComparisonSpace::new(
            "FN",
            "FN",
            vec![SimilarityOp::Equality, SimilarityOp::edit(3)],
        ),
        ComparisonSpace::new("email", "email", vec![SimilarityOp::Equality]),
        ComparisonSpace::new("addr", "post", vec![SimilarityOp::Equality]),
    ];
    let config = RuleLearningConfig::default();
    let naive = learn_relative_keys(&w.card, &w.billing, &w.truth, &space, &YC, &YB, &config);
    let eng = engine(2);
    let pooled = learn_relative_keys_with_pool(
        &w.card, &w.billing, &w.truth, &space, &YC, &YB, &config, &eng,
    );
    assert_eq!(naive.candidates_evaluated, pooled.candidates_evaluated);
    assert_eq!(naive.rules.len(), pooled.rules.len());
    for (a, b) in naive.rules.iter().zip(&pooled.rules) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.quality, b.quality);
    }
    assert_eq!(naive.combined, pooled.combined);
}
